"""Chaos engine — composable fault injection for the shared-memory model.

The paper's robustness claims quantify over *all* legal adversaries:
crashes of up to ``n - 1`` threads at arbitrary points and arbitrary
delays.  A handful of hand-picked :class:`~repro.sched.crash.CrashPlan`
wrappers cannot sweep that space.  This package provides the machinery a
systematic robustness study needs:

* :mod:`repro.faults.spec` — a small declarative plan DSL
  (:class:`FaultSpec` composing probabilistic/adaptive crash policies,
  stall windows and torn-update injection) that builds a seeded
  :class:`~repro.faults.injectors.FaultInjectionScheduler` around any
  inner scheduler;
* :mod:`repro.faults.recovery` — :func:`run_with_recovery`, which
  respawns crashed SGD threads so they re-read shared state and rejoin
  (legal in the model: a recovered thread is simply a new thread), a
  constructive demonstration of the lock-free progress guarantee;
* :mod:`repro.faults.monitors` — cheap invariant monitors (counter
  monotonicity, model-norm finiteness, crash-budget accounting,
  Lemma 6.1 iteration-order consistency) run every ``check_interval``
  steps so ``run_fast`` stays fast when they are off;
* :mod:`repro.faults.campaign` — a campaign runner gridding fault specs
  over seeds on the process-pool ensemble and emitting a robustness
  report (survival rate, convergence vs fault intensity, recovered
  threads), exposed on the CLI as ``python -m repro chaos``.
"""

from repro.faults.spec import (
    AdaptiveCrashSpec,
    FaultSpec,
    ProbabilisticCrashSpec,
    StallSpec,
    TornUpdateSpec,
)
from repro.faults.injectors import (
    AdaptiveCrashInjector,
    FaultInjectionScheduler,
    FaultInjector,
    ProbabilisticCrashInjector,
    StallInjector,
    TornUpdateInjector,
)
from repro.faults.monitors import (
    CounterMonotonicityMonitor,
    CrashBudgetMonitor,
    InvariantMonitor,
    IterationOrderMonitor,
    ModelFiniteMonitor,
    MonitorSuite,
    Violation,
    default_monitors,
)
from repro.faults.recovery import RecoveryReport, run_with_recovery
from repro.faults.campaign import (
    CampaignConfig,
    CampaignReport,
    ChaosWorkload,
    FaultRunOutcome,
    campaign_fingerprint,
    outcome_from_payload,
    outcome_to_payload,
    partial_report,
    preset_specs,
    report_from_outcomes,
    run_campaign,
)

__all__ = [
    "FaultSpec",
    "ProbabilisticCrashSpec",
    "AdaptiveCrashSpec",
    "StallSpec",
    "TornUpdateSpec",
    "FaultInjector",
    "FaultInjectionScheduler",
    "ProbabilisticCrashInjector",
    "AdaptiveCrashInjector",
    "StallInjector",
    "TornUpdateInjector",
    "InvariantMonitor",
    "MonitorSuite",
    "Violation",
    "CounterMonotonicityMonitor",
    "ModelFiniteMonitor",
    "CrashBudgetMonitor",
    "IterationOrderMonitor",
    "default_monitors",
    "run_with_recovery",
    "RecoveryReport",
    "ChaosWorkload",
    "CampaignConfig",
    "CampaignReport",
    "FaultRunOutcome",
    "campaign_fingerprint",
    "outcome_from_payload",
    "outcome_to_payload",
    "partial_report",
    "preset_specs",
    "report_from_outcomes",
    "run_campaign",
]
