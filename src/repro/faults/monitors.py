"""Invariant monitors — cheap runtime checks for chaos runs.

A fault campaign is only evidence if someone watches the invariants
while the faults fire.  Monitors come in two granularities:

* **periodic** (:meth:`InvariantMonitor.on_check`) — O(d) peeks at
  shared memory, driven every ``check_interval`` steps by
  :func:`repro.faults.recovery.run_with_recovery`.  No scheduler hook is
  involved, so when monitors are off the engine's elided ``run_fast``
  loop is completely untouched (the ``TraceConfig`` cost model: pay only
  for what you asked to observe);
* **final** (:meth:`InvariantMonitor.on_finish`) — run once at
  quiescence over the collected trace (e.g. Lemma 6.1's total order
  needs every iteration record).

A :class:`MonitorSuite` aggregates violations; in ``fail_fast`` mode the
first violation raises :class:`~repro.errors.InvariantViolationError`,
otherwise a campaign collects them all into its robustness report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.analysis.lemmas import iteration_order_findings
from repro.analysis.report import Finding
from repro.errors import InvariantViolationError, UnknownAddressError
from repro.runtime.events import CrashEvent, IterationRecord


@dataclass(frozen=True)
class Violation(Finding):
    """One detected invariant violation — a :class:`Finding` whose
    ``source`` is the monitor name.

    The chaos engine and the sanitizer share the report model (one
    dataclass, one serializer); ``monitor`` is kept as an alias of
    ``source`` for the campaign/report code that predates the merge.
    """

    @property
    def monitor(self) -> str:
        return self.source


class InvariantMonitor:
    """Base class: override either hook; return ``None`` when clean."""

    name = "invariant"

    def on_check(self, sim) -> Optional[str]:
        """Periodic check; return a violation message or ``None``."""
        return None

    def on_finish(self, sim) -> Iterable[str]:
        """Final check at quiescence; return violation messages."""
        return ()


class CounterMonotonicityMonitor(InvariantMonitor):
    """The shared iteration counter only moves forward, in integer
    amounts, and never faster than one claim per executed step."""

    name = "counter-monotonic"

    def __init__(self, segment: str = "iteration_counter") -> None:
        self.segment = segment
        self._address: Optional[int] = None
        self._missing = False
        self._last_value: Optional[float] = None
        self._last_time = 0

    def _resolve(self, sim) -> Optional[int]:
        if self._address is None and not self._missing:
            try:
                self._address = sim.memory.segment(self.segment).base
            except UnknownAddressError:
                self._missing = True  # workload has no counter; stay quiet
        return self._address

    def on_check(self, sim) -> Optional[str]:
        address = self._resolve(sim)
        if address is None:
            return None
        value = sim.memory.peek(address)
        now = sim.now
        try:
            if not math.isfinite(value) or value != int(value):
                return f"counter holds non-integral value {value!r}"
            if self._last_value is not None:
                if value < self._last_value:
                    return (
                        f"counter decreased: {self._last_value} -> {value}"
                    )
                if value - self._last_value > now - self._last_time:
                    return (
                        f"counter advanced by {value - self._last_value} in "
                        f"{now - self._last_time} steps (more than one claim "
                        f"per step)"
                    )
            return None
        finally:
            self._last_value = value
            self._last_time = now


class ModelFiniteMonitor(InvariantMonitor):
    """Every model entry stays finite (no NaN/inf blow-up) — the cheap
    proxy for "the survivors are still doing SGD, not diverging"."""

    name = "model-finite"

    def __init__(self, segment: str = "model") -> None:
        self.segment = segment
        self._range: Optional[tuple] = None
        self._missing = False

    def on_check(self, sim) -> Optional[str]:
        if self._range is None:
            if self._missing:
                return None
            try:
                seg = sim.memory.segment(self.segment)
            except UnknownAddressError:
                self._missing = True
                return None
            self._range = (seg.base, seg.length)
        base, length = self._range
        for offset, value in enumerate(sim.memory.peek_range(base, length)):
            if not math.isfinite(value):
                return f"model[{offset}] is {value!r}"
        return None


class CrashBudgetMonitor(InvariantMonitor):
    """The adversary never exceeds ``n - 1`` crashes, and the simulator's
    O(1) crash counter agrees with the trace's CrashEvents."""

    name = "crash-budget"

    def on_check(self, sim) -> Optional[str]:
        n = len(sim.threads)
        if n and sim.crashed_count > n - 1:
            return (
                f"{sim.crashed_count} crashes exceed the n-1 budget "
                f"(n={n})"
            )
        return None

    def on_finish(self, sim) -> Iterable[str]:
        events = sum(1 for e in sim.trace if isinstance(e, CrashEvent))
        if events != sim.crashed_count:
            yield (
                f"crash accounting mismatch: {events} CrashEvents vs "
                f"crashed_count={sim.crashed_count}"
            )


class IterationOrderMonitor(InvariantMonitor):
    """Lemma 6.1's total order: iteration records are totally ordered by
    their first model update, claimed indices are unique, and each
    record's internal timestamps are consistent."""

    name = "iteration-order"

    def on_finish(self, sim) -> Iterable[str]:
        # Shared with the analysis layer: the sanitizer's final pass runs
        # the same checker, so both flag identical conditions with
        # identical messages (see repro.analysis.lemmas).
        records = [e for e in sim.trace if isinstance(e, IterationRecord)]
        for finding in iteration_order_findings(records, source=self.name):
            yield finding.message


def default_monitors(
    model_segment: str = "model",
    counter_segment: str = "iteration_counter",
) -> List[InvariantMonitor]:
    """The standard chaos-run monitor set."""
    return [
        CounterMonotonicityMonitor(counter_segment),
        ModelFiniteMonitor(model_segment),
        CrashBudgetMonitor(),
        IterationOrderMonitor(),
    ]


class MonitorSuite:
    """Drives a set of monitors and aggregates their violations.

    Args:
        monitors: The monitors to run (default: :func:`default_monitors`).
        fail_fast: Raise :class:`InvariantViolationError` on the first
            violation instead of collecting (campaigns collect; CI-style
            assertions fail fast).
    """

    def __init__(
        self,
        monitors: Optional[Sequence[InvariantMonitor]] = None,
        fail_fast: bool = False,
    ) -> None:
        self.monitors = list(default_monitors() if monitors is None else monitors)
        self.fail_fast = fail_fast
        self.violations: List[Violation] = []
        self.checks_run = 0

    @property
    def clean(self) -> bool:
        """Whether no monitor has fired."""
        return not self.violations

    def _record(self, monitor: InvariantMonitor, time: int, message: str) -> None:
        violation = Violation(
            source=monitor.name,
            rule=f"monitor:{monitor.name}",
            message=message,
            time=time,
        )
        self.violations.append(violation)
        if self.fail_fast:
            raise InvariantViolationError(str(violation))

    def check(self, sim) -> None:
        """Run every monitor's periodic check once."""
        self.checks_run += 1
        now = sim.now
        for monitor in self.monitors:
            message = monitor.on_check(sim)
            if message is not None:
                self._record(monitor, now, message)

    def finish(self, sim) -> None:
        """Run a last periodic check plus every final check."""
        self.check(sim)
        now = sim.now
        for monitor in self.monitors:
            for message in monitor.on_finish(sim):
                self._record(monitor, now, message)
