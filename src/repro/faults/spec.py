"""The fault-plan DSL: declarative, seeded, composable.

A :class:`FaultSpec` is a *plan* — a frozen, picklable description of
which faults an execution is subjected to.  Plans compose: one spec holds
any number of injector specs, and :meth:`FaultSpec.build` wraps any inner
scheduler in a :class:`~repro.faults.injectors.FaultInjectionScheduler`
that fires all of them at selection points.  Because the spec (not the
runtime injector) is what campaigns grid over and ship to worker
processes, every field here is a plain value type.

Two fault families live here:

* **scheduling faults** — legal adversary behaviour in the asynchronous
  shared-memory model: crashing a thread (up to the ``n - 1`` budget),
  probabilistically, adaptively, or conditioned on the operation just
  executed (torn updates); and delaying a thread arbitrarily (stall
  windows).  The adversary schedules and kills, it does not write.
* **value-corruption faults** — *silent data corruption*, outside the
  paper's model but exactly what a production stack must survive (the
  perturbed-iterate regime of "Taming the Wild"): flipping a bit of a
  stored model component (:class:`BitFlipSpec`), poisoning a component
  to NaN/Inf (:class:`PoisonSpec`), and echoing or revoking a landed
  ``fetch&add`` (:class:`DuplicateWriteSpec` /
  :class:`DroppedWriteSpec`).  Corruption fires through the unlogged
  ``poke`` path at selection points, so it is deterministic under the
  plan seed and identical under ``run()``/``run_fast()`` — and it is
  what the :mod:`repro.heal` layer detects and rolls back.

Both families compose freely inside one :class:`FaultSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.runtime.rng import RngStream


@dataclass(frozen=True)
class ProbabilisticCrashSpec:
    """Crash each victim with probability ``rate`` per selection point.

    Attributes:
        rate: Per-victim, per-select crash probability in [0, 1].
        victims: Thread ids eligible to crash; ``None`` means every
            thread (including ones respawned by recovery).
        max_crashes: Cap on crashes this injector fires; ``None`` leaves
            only the model's ``n - 1`` budget.
        after_time: No crashes before this logical time (lets the run
            warm up so crashes hit mid-flight state).
    """

    rate: float
    victims: Optional[Tuple[int, ...]] = None
    max_crashes: Optional[int] = None
    after_time: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {self.rate}")


@dataclass(frozen=True)
class AdaptiveCrashSpec:
    """Crash a victim exactly when its published phase matches.

    The strong adaptive adversary reads thread annotations; this injector
    uses that window to kill threads at the nastiest instants (e.g.
    ``phase="update"`` crashes a thread between its component
    fetch&adds, guaranteeing torn multi-component updates).

    Attributes:
        phase: Annotation value of ``"phase"`` that triggers the crash.
        max_crashes: Cap on crashes this injector fires.
        victims: Eligible thread ids; ``None`` means all.
        after_time: No crashes before this logical time.
    """

    phase: str = "update"
    max_crashes: int = 1
    victims: Optional[Tuple[int, ...]] = None
    after_time: int = 0


@dataclass(frozen=True)
class StallSpec:
    """Delay windows: victims take no steps while a window is open.

    A stalled thread is merely delayed (legal for any duration in the
    asynchronous model); if every runnable thread is stalled at once the
    injector lets the inner scheduler's choice through rather than
    deadlocking — the model's adversary must keep *some* thread moving
    for time to advance.

    Attributes:
        victims: Thread ids stalled during open windows.
        start: Logical time the first window opens.
        duration: Window length in steps.
        period: Distance between window starts; ``None`` means a single
            window ``[start, start + duration)``.
    """

    victims: Tuple[int, ...]
    start: int = 0
    duration: int = 1
    period: Optional[int] = None

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise ConfigurationError(
                f"duration must be >= 1, got {self.duration}"
            )
        if self.period is not None and self.period < self.duration:
            raise ConfigurationError(
                f"period ({self.period}) must be >= duration ({self.duration})"
            )

    def open_at(self, now: int) -> bool:
        """Whether a stall window is open at logical time ``now``."""
        if now < self.start:
            return False
        if self.period is None:
            return now < self.start + self.duration
        return (now - self.start) % self.period < self.duration


@dataclass(frozen=True)
class TornUpdateSpec:
    """Tear multi-component updates at shared-memory op granularity.

    When a victim is about to execute an update op (fetch&add, guarded
    fetch&add or write) on the watched segment, with probability ``rate``
    the injector lets exactly that op land and crashes the thread before
    its next step — leaving a partially applied gradient in the model.
    This is precisely the legal "crash between component fetch&adds"
    fault, but steerable and seeded instead of hand-planned.

    Attributes:
        rate: Probability of tearing per eligible update op.
        segment: Named shared-memory segment to watch (the model array).
        max_crashes: Cap on crashes this injector fires.
        victims: Eligible thread ids; ``None`` means all.
        after_time: No tearing before this logical time.
    """

    rate: float
    segment: str = "model"
    max_crashes: Optional[int] = 1
    victims: Optional[Tuple[int, ...]] = None
    after_time: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {self.rate}")


@dataclass(frozen=True)
class BitFlipSpec:
    """Flip one random bit of a stored model component.

    With probability ``rate`` per selection point, one component of the
    watched segment has a uniformly chosen bit of its float64 image
    flipped in place.  Mantissa flips are small perturbations (the
    perturbed-iterate regime); exponent/sign flips can send a component
    to 1e300 or NaN — exactly the silent-data-corruption spectrum the
    heal layer must catch.

    Attributes:
        rate: Per-select corruption probability in [0, 1].
        segment: Named shared-memory segment whose components may flip.
        max_corruptions: Cap on corruption events; ``None`` is unbounded.
        after_time: No corruption before this logical time.
    """

    rate: float
    segment: str = "model"
    max_corruptions: Optional[int] = None
    after_time: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {self.rate}")


@dataclass(frozen=True)
class PoisonSpec:
    """Poison a stored model component to NaN or ±Inf.

    With probability ``rate`` per selection point, one component of the
    watched segment is overwritten with NaN (``mode="nan"``) or an
    infinity of random sign (``mode="inf"``).  Poison persists under
    ``fetch&add`` (NaN + x = NaN), so the streaming NaN/Inf guard is
    guaranteed to see it at the next chunk boundary.

    Attributes:
        rate: Per-select corruption probability in [0, 1].
        segment: Named shared-memory segment whose components may be
            poisoned.
        mode: ``"nan"`` or ``"inf"``.
        max_corruptions: Cap on corruption events; ``None`` is unbounded.
        after_time: No corruption before this logical time.
    """

    rate: float
    segment: str = "model"
    mode: str = "nan"
    max_corruptions: Optional[int] = None
    after_time: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {self.rate}")
        if self.mode not in ("nan", "inf"):
            raise ConfigurationError(
                f'mode must be "nan" or "inf", got {self.mode!r}'
            )


@dataclass(frozen=True)
class DuplicateWriteSpec:
    """Silently apply a landed ``fetch&add`` twice.

    When a victim's plain ``fetch&add`` into the watched segment lands,
    with probability ``rate`` its delta is applied *again* one step
    later through the unlogged poke path — the classic at-least-once
    delivery bug, invisible to the op log.

    Attributes:
        rate: Per-eligible-op duplication probability in [0, 1].
        segment: Named shared-memory segment to watch.
        victims: Thread ids whose writes may duplicate; ``None`` = all.
        max_corruptions: Cap on corruption events; ``None`` is unbounded.
        after_time: No corruption before this logical time.
    """

    rate: float
    segment: str = "model"
    victims: Optional[Tuple[int, ...]] = None
    max_corruptions: Optional[int] = None
    after_time: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {self.rate}")


@dataclass(frozen=True)
class DroppedWriteSpec:
    """Silently revoke a landed ``fetch&add``.

    When a victim's plain ``fetch&add`` into the watched segment lands,
    with probability ``rate`` its delta is subtracted back out one step
    later through the unlogged poke path — a lost update the victim
    believes succeeded.

    Attributes:
        rate: Per-eligible-op drop probability in [0, 1].
        segment: Named shared-memory segment to watch.
        victims: Thread ids whose writes may drop; ``None`` = all.
        max_corruptions: Cap on corruption events; ``None`` is unbounded.
        after_time: No corruption before this logical time.
    """

    rate: float
    segment: str = "model"
    victims: Optional[Tuple[int, ...]] = None
    max_corruptions: Optional[int] = None
    after_time: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {self.rate}")


#: Any single-fault description the DSL accepts.
InjectorSpec = Union[
    ProbabilisticCrashSpec,
    AdaptiveCrashSpec,
    StallSpec,
    TornUpdateSpec,
    BitFlipSpec,
    PoisonSpec,
    DuplicateWriteSpec,
    DroppedWriteSpec,
]

#: Spec types that corrupt stored values (the silent-data-corruption
#: family) — the ones the heal layer suppresses during a rollback retry.
CORRUPTION_SPECS = (BitFlipSpec, PoisonSpec, DuplicateWriteSpec, DroppedWriteSpec)


@dataclass(frozen=True)
class FaultSpec:
    """A composable fault plan: a named set of injector specs.

    Attributes:
        name: Label used in campaign reports and CLI flags.
        injectors: The injector specs, fired in order at every selection
            point.
        crash_budget: Optional cap on *total* crashes across all
            injectors (on top of each injector's own ``max_crashes`` and
            the model's hard ``n - 1`` rule).
    """

    name: str
    injectors: Tuple[InjectorSpec, ...] = field(default_factory=tuple)
    crash_budget: Optional[int] = None

    def validate(self, num_threads: int) -> None:
        """Check the plan against a concrete thread count.

        Raises :class:`~repro.errors.ConfigurationError` when any
        injector targets a thread id outside ``[0, num_threads)`` —
        caught at spec-build time instead of silently never firing (or
        exploding) mid-run.  Respawned lineages get ids ``>= n``, so
        only *original* ids are plannable victims.
        """
        if num_threads < 1:
            raise ConfigurationError(
                f"num_threads must be >= 1, got {num_threads}"
            )
        for spec in self.injectors:
            victims = getattr(spec, "victims", None)
            if victims is None:
                continue
            bad = sorted(tid for tid in victims if not 0 <= tid < num_threads)
            if bad:
                raise ConfigurationError(
                    f"fault plan {self.name!r}: {type(spec).__name__} targets "
                    f"non-existent thread id(s) {bad} (run has "
                    f"{num_threads} threads, ids 0..{num_threads - 1})"
                )

    def build(self, inner, seed: int = 0, num_threads: Optional[int] = None):
        """Wrap ``inner`` in a seeded fault-injection scheduler.

        Each injector receives an independent child stream of ``seed``,
        so adding or removing one injector never perturbs the draws of
        the others (campaign sweeps stay comparable across specs).

        When ``num_threads`` is given the plan is validated against it
        first (see :meth:`validate`).
        """
        from repro.faults.injectors import FaultInjectionScheduler, build_injector

        if num_threads is not None:
            self.validate(num_threads)
        root = RngStream.root(seed)
        streams = root.spawn(len(self.injectors)) if self.injectors else []
        runtime = tuple(
            build_injector(spec, stream)
            for spec, stream in zip(self.injectors, streams)
        )
        return FaultInjectionScheduler(
            inner, runtime, crash_budget=self.crash_budget, name=self.name
        )
