"""The fault-plan DSL: declarative, seeded, composable.

A :class:`FaultSpec` is a *plan* — a frozen, picklable description of
which faults an execution is subjected to.  Plans compose: one spec holds
any number of injector specs, and :meth:`FaultSpec.build` wraps any inner
scheduler in a :class:`~repro.faults.injectors.FaultInjectionScheduler`
that fires all of them at selection points.  Because the spec (not the
runtime injector) is what campaigns grid over and ship to worker
processes, every field here is a plain value type.

All the faults expressible here are *legal* adversary behaviour in the
asynchronous shared-memory model:

* crashing a thread (up to the ``n - 1`` budget) — probabilistic,
  adaptive, or conditioned on the operation just executed (torn updates);
* delaying a thread arbitrarily (stall windows).

Nothing here can corrupt memory or forge operations — the adversary
schedules and kills, it does not write.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.runtime.rng import RngStream


@dataclass(frozen=True)
class ProbabilisticCrashSpec:
    """Crash each victim with probability ``rate`` per selection point.

    Attributes:
        rate: Per-victim, per-select crash probability in [0, 1].
        victims: Thread ids eligible to crash; ``None`` means every
            thread (including ones respawned by recovery).
        max_crashes: Cap on crashes this injector fires; ``None`` leaves
            only the model's ``n - 1`` budget.
        after_time: No crashes before this logical time (lets the run
            warm up so crashes hit mid-flight state).
    """

    rate: float
    victims: Optional[Tuple[int, ...]] = None
    max_crashes: Optional[int] = None
    after_time: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {self.rate}")


@dataclass(frozen=True)
class AdaptiveCrashSpec:
    """Crash a victim exactly when its published phase matches.

    The strong adaptive adversary reads thread annotations; this injector
    uses that window to kill threads at the nastiest instants (e.g.
    ``phase="update"`` crashes a thread between its component
    fetch&adds, guaranteeing torn multi-component updates).

    Attributes:
        phase: Annotation value of ``"phase"`` that triggers the crash.
        max_crashes: Cap on crashes this injector fires.
        victims: Eligible thread ids; ``None`` means all.
        after_time: No crashes before this logical time.
    """

    phase: str = "update"
    max_crashes: int = 1
    victims: Optional[Tuple[int, ...]] = None
    after_time: int = 0


@dataclass(frozen=True)
class StallSpec:
    """Delay windows: victims take no steps while a window is open.

    A stalled thread is merely delayed (legal for any duration in the
    asynchronous model); if every runnable thread is stalled at once the
    injector lets the inner scheduler's choice through rather than
    deadlocking — the model's adversary must keep *some* thread moving
    for time to advance.

    Attributes:
        victims: Thread ids stalled during open windows.
        start: Logical time the first window opens.
        duration: Window length in steps.
        period: Distance between window starts; ``None`` means a single
            window ``[start, start + duration)``.
    """

    victims: Tuple[int, ...]
    start: int = 0
    duration: int = 1
    period: Optional[int] = None

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise ConfigurationError(
                f"duration must be >= 1, got {self.duration}"
            )
        if self.period is not None and self.period < self.duration:
            raise ConfigurationError(
                f"period ({self.period}) must be >= duration ({self.duration})"
            )

    def open_at(self, now: int) -> bool:
        """Whether a stall window is open at logical time ``now``."""
        if now < self.start:
            return False
        if self.period is None:
            return now < self.start + self.duration
        return (now - self.start) % self.period < self.duration


@dataclass(frozen=True)
class TornUpdateSpec:
    """Tear multi-component updates at shared-memory op granularity.

    When a victim is about to execute an update op (fetch&add, guarded
    fetch&add or write) on the watched segment, with probability ``rate``
    the injector lets exactly that op land and crashes the thread before
    its next step — leaving a partially applied gradient in the model.
    This is precisely the legal "crash between component fetch&adds"
    fault, but steerable and seeded instead of hand-planned.

    Attributes:
        rate: Probability of tearing per eligible update op.
        segment: Named shared-memory segment to watch (the model array).
        max_crashes: Cap on crashes this injector fires.
        victims: Eligible thread ids; ``None`` means all.
        after_time: No tearing before this logical time.
    """

    rate: float
    segment: str = "model"
    max_crashes: Optional[int] = 1
    victims: Optional[Tuple[int, ...]] = None
    after_time: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {self.rate}")


#: Any single-fault description the DSL accepts.
InjectorSpec = Union[
    ProbabilisticCrashSpec, AdaptiveCrashSpec, StallSpec, TornUpdateSpec
]


@dataclass(frozen=True)
class FaultSpec:
    """A composable fault plan: a named set of injector specs.

    Attributes:
        name: Label used in campaign reports and CLI flags.
        injectors: The injector specs, fired in order at every selection
            point.
        crash_budget: Optional cap on *total* crashes across all
            injectors (on top of each injector's own ``max_crashes`` and
            the model's hard ``n - 1`` rule).
    """

    name: str
    injectors: Tuple[InjectorSpec, ...] = field(default_factory=tuple)
    crash_budget: Optional[int] = None

    def build(self, inner, seed: int = 0):
        """Wrap ``inner`` in a seeded fault-injection scheduler.

        Each injector receives an independent child stream of ``seed``,
        so adding or removing one injector never perturbs the draws of
        the others (campaign sweeps stay comparable across specs).
        """
        from repro.faults.injectors import FaultInjectionScheduler, build_injector

        root = RngStream.root(seed)
        streams = root.spawn(len(self.injectors)) if self.injectors else []
        runtime = tuple(
            build_injector(spec, stream)
            for spec, stream in zip(self.injectors, streams)
        )
        return FaultInjectionScheduler(
            inner, runtime, crash_budget=self.crash_budget, name=self.name
        )
