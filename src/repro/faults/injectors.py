"""Runtime fault injectors and the scheduler that hosts them.

Injectors act *below* the scheduling decision: the
:class:`FaultInjectionScheduler` consults every injector at each
selection point — exactly where the model's adversary acts — then
delegates the actual pick to the inner scheduler.  An injector may:

* crash threads before the pick (:meth:`FaultInjector.before_select`),
* veto threads for this pick via stall windows
  (:meth:`FaultInjector.stalled`),
* inspect the chosen thread's *pending* operation and arrange a crash
  right after it executes (:meth:`FaultInjector.after_choice` — how torn
  updates are injected at op granularity without any per-step hook).

Besides the scheduling faults, *value-corruption* injectors (silent data
corruption: bit flips, NaN/Inf poisoning, duplicated and dropped writes)
also act at selection points, mutating stored values through the
unlogged ``poke`` path.  A poke costs no logical time, appends nothing
to the op log, and is invisible to every scheduler — so corrupting never
perturbs the schedule, only the values, which is exactly what "silent"
means.  Corruption injectors honor *suppression windows* (half-open
``[start, end)`` logical-time intervals) inside which they neither draw
nor fire; the heal layer uses these to retry a rolled-back chunk
fault-free while keeping checkpoint replay certification sound (windows
are part of the rebuildable engine configuration, not mutable state).

Because everything happens at ``select`` time, injection behaves
identically under :meth:`~repro.runtime.simulator.Simulator.run` and the
elided :meth:`~repro.runtime.simulator.Simulator.run_fast` batch loop —
the engine never needs step records to inject faults.
"""

from __future__ import annotations

import math
import struct
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.faults.spec import (
    AdaptiveCrashSpec,
    BitFlipSpec,
    DroppedWriteSpec,
    DuplicateWriteSpec,
    InjectorSpec,
    PoisonSpec,
    ProbabilisticCrashSpec,
    StallSpec,
    TornUpdateSpec,
)
from repro.errors import ConfigurationError, UnknownAddressError
from repro.runtime.policy import live_hook
from repro.runtime.rng import RngStream
from repro.sched.base import Scheduler
from repro.shm.ops import OP_FETCH_ADD, OP_GUARDED_FETCH_ADD, OP_WRITE

#: Opcodes that mutate a model entry — the ops a torn-update fault tears.
_UPDATE_OPCODES = frozenset({OP_FETCH_ADD, OP_GUARDED_FETCH_ADD, OP_WRITE})


class FaultInjector:
    """Base class: a fault policy consulted at every selection point."""

    #: Crashes this injector has fired.
    fired: int = 0

    def before_select(self, sim, engine: "FaultInjectionScheduler") -> None:
        """Fire any crash due *now* (before the scheduler picks)."""

    def stalled(self, sim, engine: "FaultInjectionScheduler") -> Iterable[int]:
        """Thread ids this injector forbids from being picked right now."""
        return ()

    def after_choice(self, sim, engine: "FaultInjectionScheduler", thread) -> None:
        """Observe the chosen thread (and its pending op) before it runs."""


class ProbabilisticCrashInjector(FaultInjector):
    """Seeded memoryless crashes: each victim dies with probability
    ``rate`` at every selection point (budget-aware)."""

    def __init__(self, spec: ProbabilisticCrashSpec, rng: RngStream) -> None:
        self.spec = spec
        self.rng = rng
        self.fired = 0

    def before_select(self, sim, engine) -> None:
        spec = self.spec
        if sim.now < spec.after_time:
            return
        if spec.max_crashes is not None and self.fired >= spec.max_crashes:
            return
        victims = (
            spec.victims if spec.victims is not None else range(len(sim.threads))
        )
        for tid in victims:
            if tid >= len(sim.threads) or not sim.threads[tid].is_runnable:
                continue
            # One draw per runnable victim per select keeps the stream
            # aligned between run() and run_fast() (same select sequence).
            if self.rng.uniform() < spec.rate and engine.try_crash(sim, tid):
                self.fired += 1
                if (
                    spec.max_crashes is not None
                    and self.fired >= spec.max_crashes
                ):
                    return


class AdaptiveCrashInjector(FaultInjector):
    """Crash a victim the moment its published ``phase`` annotation
    matches — the adaptive adversary aiming for the worst instant."""

    def __init__(self, spec: AdaptiveCrashSpec, rng: RngStream) -> None:
        self.spec = spec
        self.fired = 0

    def before_select(self, sim, engine) -> None:
        spec = self.spec
        if sim.now < spec.after_time or self.fired >= spec.max_crashes:
            return
        victims = (
            spec.victims if spec.victims is not None else range(len(sim.threads))
        )
        for tid in victims:
            if tid >= len(sim.threads):
                continue
            thread = sim.threads[tid]
            if not thread.is_runnable:
                continue
            if thread.context.annotations.get("phase") != spec.phase:
                continue
            if engine.try_crash(sim, tid):
                self.fired += 1
                return  # at most one adaptive kill per selection point


class StallInjector(FaultInjector):
    """Deterministic delay windows during which victims take no steps."""

    def __init__(self, spec: StallSpec, rng: RngStream) -> None:
        self.spec = spec
        self.stall_steps = 0  # selection points at which a victim was vetoed

    def stalled(self, sim, engine) -> Iterable[int]:
        if not self.spec.open_at(sim.now):
            return ()
        self.stall_steps += 1
        return self.spec.victims


class TornUpdateInjector(FaultInjector):
    """Crash a thread immediately *after* an update op on the watched
    segment lands — a steerable torn-update fault.

    The injector inspects the chosen thread's pending op at select time;
    if the op is an update into the watched segment and the (seeded) coin
    fires, the thread is doomed: it executes exactly that op and is
    crashed at the next selection point, before it can take another step.
    """

    def __init__(self, spec: TornUpdateSpec, rng: RngStream) -> None:
        self.spec = spec
        self.rng = rng
        self.fired = 0
        self.torn = 0
        self._doomed: Set[int] = set()
        self._segment: Optional[Tuple[int, int]] = None  # (base, end)

    def _watch_range(self, sim) -> Optional[Tuple[int, int]]:
        if self._segment is None:
            try:
                seg = sim.memory.segment(self.spec.segment)
            except UnknownAddressError:
                return None
            self._segment = (seg.base, seg.base + seg.length)
        return self._segment

    def before_select(self, sim, engine) -> None:
        if not self._doomed:
            return
        for tid in sorted(self._doomed):
            if engine.try_crash(sim, tid):
                self.fired += 1
                self.torn += 1
        self._doomed.clear()

    def after_choice(self, sim, engine, thread) -> None:
        spec = self.spec
        if sim.now < spec.after_time:
            return
        if spec.max_crashes is not None and (
            self.fired + len(self._doomed) >= spec.max_crashes
        ):
            return
        if spec.victims is not None and thread.thread_id not in spec.victims:
            return
        op = thread.pending_op
        if op is None or op.opcode not in _UPDATE_OPCODES:
            return
        watch = self._watch_range(sim)
        if watch is None or not watch[0] <= op.address < watch[1]:
            return
        if self.rng.uniform() < spec.rate:
            self._doomed.add(thread.thread_id)


def _flip_bit(value: float, bit: int) -> float:
    """Flip one bit of a float64's IEEE-754 image."""
    (bits,) = struct.unpack("<Q", struct.pack("<d", value))
    (flipped,) = struct.unpack("<d", struct.pack("<Q", bits ^ (1 << bit)))
    return flipped


class ValueCorruptionInjector(FaultInjector):
    """Base for silent-data-corruption injectors.

    Corruption mutates stored values via ``memory.poke`` — unlogged,
    free of logical time, invisible to schedulers — so it never perturbs
    the select sequence, only the numbers.  Suppression windows
    (:attr:`suppress_windows`, half-open ``[start, end)`` logical-time
    intervals) gate both the RNG draws and the effects: because they are
    indexed by logical time, a freshly built engine carrying the same
    windows reproduces the exact corruption pattern during checkpoint
    replay — the property the heal layer's rollback certification
    relies on.
    """

    def __init__(self, spec, rng: RngStream) -> None:
        self.spec = spec
        self.rng = rng
        self.corrupted = 0  # corruption events applied to memory
        self.suppress_windows: Tuple[Tuple[int, int], ...] = ()
        self._segment: Optional[Tuple[int, int]] = None  # (base, end)

    def _charged(self) -> int:
        """Corruption events counted against ``max_corruptions``."""
        return self.corrupted

    def _active(self, sim) -> bool:
        spec = self.spec
        now = sim.now
        if now < spec.after_time:
            return False
        if (
            spec.max_corruptions is not None
            and self._charged() >= spec.max_corruptions
        ):
            return False
        for start, end in self.suppress_windows:
            if start <= now < end:
                return False
        return True

    def _watch_range(self, sim) -> Optional[Tuple[int, int]]:
        if self._segment is None:
            try:
                seg = sim.memory.segment(self.spec.segment)
            except UnknownAddressError:
                return None
            self._segment = (seg.base, seg.base + seg.length)
        return self._segment


class BitFlipInjector(ValueCorruptionInjector):
    """Flip a random bit of a random watched component (seeded)."""

    def before_select(self, sim, engine) -> None:
        if not self._active(sim):
            return
        watch = self._watch_range(sim)
        if watch is None:
            return
        # Coin first, cell/bit only on a hit: a miss costs one draw
        # regardless of segment size, keeping streams cheap and aligned.
        if self.rng.uniform() >= self.spec.rate:
            return
        base, end = watch
        address = base + int(self.rng.integers(0, end - base))
        bit = int(self.rng.integers(0, 64))
        sim.memory.poke(address, _flip_bit(sim.memory.peek(address), bit))
        self.corrupted += 1
        engine.note_corruption()


class PoisonInjector(ValueCorruptionInjector):
    """Overwrite a random watched component with NaN or ±Inf (seeded)."""

    def before_select(self, sim, engine) -> None:
        if not self._active(sim):
            return
        watch = self._watch_range(sim)
        if watch is None:
            return
        if self.rng.uniform() >= self.spec.rate:
            return
        base, end = watch
        address = base + int(self.rng.integers(0, end - base))
        if self.spec.mode == "nan":
            value = math.nan
        else:
            value = math.inf if self.rng.uniform() < 0.5 else -math.inf
        sim.memory.poke(address, value)
        self.corrupted += 1
        engine.note_corruption()


class _WriteEchoInjector(ValueCorruptionInjector):
    """Shared machinery for duplicated / dropped ``fetch&add`` faults.

    The decision is taken at select time by inspecting the chosen
    thread's pending op (the op then provably lands this very step); the
    echo — re-applying or revoking its delta — is poked in at the next
    selection point, mirroring :class:`TornUpdateInjector`'s
    decide-then-fire structure.  Only plain ``fetch&add`` is watched:
    a guarded fetch&add may legally not land, so echoing it would not
    be *silent* corruption but a semantics change.
    """

    #: +1 re-applies the delta (duplicate); -1 revokes it (drop).
    echo_sign = 1.0

    def __init__(self, spec, rng: RngStream) -> None:
        super().__init__(spec, rng)
        self._pending: List[Tuple[int, float]] = []

    def _charged(self) -> int:
        return self.corrupted + len(self._pending)

    def before_select(self, sim, engine) -> None:
        if not self._pending:
            return
        for address, delta in self._pending:
            sim.memory.poke(
                address, sim.memory.peek(address) + self.echo_sign * delta
            )
            self.corrupted += 1
            engine.note_corruption()
        self._pending.clear()

    def after_choice(self, sim, engine, thread) -> None:
        spec = self.spec
        if not self._active(sim):
            return
        if spec.victims is not None and thread.thread_id not in spec.victims:
            return
        op = thread.pending_op
        if op is None or op.opcode != OP_FETCH_ADD:
            return
        watch = self._watch_range(sim)
        if watch is None or not watch[0] <= op.address < watch[1]:
            return
        if self.rng.uniform() < spec.rate:
            self._pending.append((op.address, op.delta))


class DuplicateWriteInjector(_WriteEchoInjector):
    """Apply a landed ``fetch&add`` delta a second time (at-least-once)."""

    echo_sign = 1.0


class DroppedWriteInjector(_WriteEchoInjector):
    """Revoke a landed ``fetch&add`` delta (lost update)."""

    echo_sign = -1.0


def build_injector(spec: InjectorSpec, rng: RngStream) -> FaultInjector:
    """Instantiate the runtime injector for one spec."""
    if isinstance(spec, ProbabilisticCrashSpec):
        return ProbabilisticCrashInjector(spec, rng)
    if isinstance(spec, AdaptiveCrashSpec):
        return AdaptiveCrashInjector(spec, rng)
    if isinstance(spec, StallSpec):
        return StallInjector(spec, rng)
    if isinstance(spec, TornUpdateSpec):
        return TornUpdateInjector(spec, rng)
    if isinstance(spec, BitFlipSpec):
        return BitFlipInjector(spec, rng)
    if isinstance(spec, PoisonSpec):
        return PoisonInjector(spec, rng)
    if isinstance(spec, DuplicateWriteSpec):
        return DuplicateWriteInjector(spec, rng)
    if isinstance(spec, DroppedWriteSpec):
        return DroppedWriteInjector(spec, rng)
    raise ConfigurationError(f"unknown injector spec: {type(spec).__name__}")


class FaultInjectionScheduler(Scheduler):
    """Compose fault injectors below any inner scheduler.

    At each selection point the engine (1) lets every injector fire due
    crashes, (2) collects the stall veto set, (3) asks the inner
    scheduler for its pick and deterministically reroutes it to the
    lowest-id non-stalled runnable thread when the pick is vetoed (a
    stall is a delay, so *someone else* runs), and (4) shows the chosen
    thread to every injector before its pending op executes.

    Crash-budget accounting is centralized in :meth:`try_crash`: the
    model's hard ``n - 1`` rule, the spec-level ``crash_budget``, and a
    conservative "never kill the last runnable thread" guard.  Requests
    the budget rejects are counted in :attr:`skipped_crashes`.

    Like :class:`~repro.sched.crash.CrashScheduler`, the inner's hooks
    are forwarded only when live, so benign inners keep ``run_fast``'s
    elided path.
    """

    def __init__(
        self,
        inner: Scheduler,
        injectors: Sequence[FaultInjector] = (),
        crash_budget: Optional[int] = None,
        name: str = "",
    ) -> None:
        self.inner = inner
        self.injectors = tuple(injectors)
        self.crash_budget = crash_budget
        self.name = name or "faults"
        self.crashes_fired = 0
        self.skipped_crashes = 0
        self.stall_reroutes = 0
        self._m_crashes = None
        self._m_skipped = None
        self._m_reroutes = None
        self._m_corruptions = None
        spawn_hook = live_hook(inner, "on_spawn")
        if spawn_hook is not None:
            self.on_spawn = spawn_hook
        step_hook = live_hook(inner, "on_step")
        if step_hook is not None:
            self.on_step = step_hook

    def attach_metrics(self, metrics) -> None:
        """Wire ``repro_faults_*`` counters (fault events are rare, so
        they are counted per event — the per-step select path stays
        uninstrumented).  ``None``/null registry detaches."""
        from repro.obs.registry import live_registry

        registry = live_registry(metrics)
        if registry is None:
            self._m_crashes = self._m_skipped = self._m_reroutes = None
            self._m_corruptions = None
            return
        self._m_crashes = registry.counter(
            "repro_faults_crashes_total", "injected crashes fired"
        )
        self._m_skipped = registry.counter(
            "repro_faults_crashes_skipped_total",
            "crash requests rejected by the budget guards",
        )
        self._m_reroutes = registry.counter(
            "repro_faults_stall_reroutes_total",
            "picks rerouted around stalled threads",
        )
        self._m_corruptions = registry.counter(
            "repro_faults_corruptions_total",
            "value-corruption events applied to shared memory",
        )

    def note_corruption(self) -> None:
        """Count one applied corruption event (called by injectors)."""
        if self._m_corruptions is not None:
            self._m_corruptions.inc()

    @property
    def corruptions(self) -> int:
        """Corruption events applied to memory across all injectors."""
        return sum(
            injector.corrupted
            for injector in self.injectors
            if isinstance(injector, ValueCorruptionInjector)
        )

    def set_suppression(self, windows: Sequence[Tuple[int, int]]) -> None:
        """Install logical-time suppression windows on every corruption
        injector (scheduling-fault injectors are unaffected).  The heal
        layer passes the same windows to replay-rebuilt engines, so the
        corruption pattern is a pure function of (spec, seed, windows).
        """
        frozen = tuple((int(start), int(end)) for start, end in windows)
        for injector in self.injectors:
            if isinstance(injector, ValueCorruptionInjector):
                injector.suppress_windows = frozen

    def try_crash(self, sim, thread_id: int) -> bool:
        """Crash ``thread_id`` if every budget allows it.

        Returns ``True`` when the crash fired.  Rejections (dead victim
        excluded) are tallied in :attr:`skipped_crashes` so campaigns can
        report how often the budget saved the run.
        """
        if thread_id >= len(sim.threads) or not sim.threads[thread_id].is_runnable:
            return False
        if self.crash_budget is not None and self.crashes_fired >= self.crash_budget:
            self.skipped_crashes += 1
            if self._m_skipped is not None:
                self._m_skipped.inc()
            return False
        # Keep one runnable thread alive: implies the model's n-1 rule
        # (crashed <= n - runnable <= n - 1) and keeps time advancing.
        if sim.runnable_count <= 1 or sim.crashed_count + 1 >= len(sim.threads):
            self.skipped_crashes += 1
            if self._m_skipped is not None:
                self._m_skipped.inc()
            return False
        sim.crash(thread_id)
        self.crashes_fired += 1
        if self._m_crashes is not None:
            self._m_crashes.inc()
        return True

    def select(self, sim) -> int:
        injectors = self.injectors
        for injector in injectors:
            injector.before_select(sim, self)
        stalled: Set[int] = set()
        for injector in injectors:
            stalled.update(injector.stalled(sim, self))
        choice = self.inner.select(sim)
        if stalled and choice in stalled:
            for tid, thread in enumerate(sim.threads):
                if thread.is_runnable and tid not in stalled:
                    self.stall_reroutes += 1
                    if self._m_reroutes is not None:
                        self._m_reroutes.inc()
                    choice = tid
                    break
            # All runnable threads stalled: let the pick through —
            # the adversary may not freeze time.
        chosen = sim.threads[choice]
        for injector in injectors:
            injector.after_choice(sim, self, chosen)
        return choice
