"""Runtime fault injectors and the scheduler that hosts them.

Injectors act *below* the scheduling decision: the
:class:`FaultInjectionScheduler` consults every injector at each
selection point — exactly where the model's adversary acts — then
delegates the actual pick to the inner scheduler.  An injector may:

* crash threads before the pick (:meth:`FaultInjector.before_select`),
* veto threads for this pick via stall windows
  (:meth:`FaultInjector.stalled`),
* inspect the chosen thread's *pending* operation and arrange a crash
  right after it executes (:meth:`FaultInjector.after_choice` — how torn
  updates are injected at op granularity without any per-step hook).

Because everything happens at ``select`` time, injection behaves
identically under :meth:`~repro.runtime.simulator.Simulator.run` and the
elided :meth:`~repro.runtime.simulator.Simulator.run_fast` batch loop —
the engine never needs step records to inject faults.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set, Tuple

from repro.faults.spec import (
    AdaptiveCrashSpec,
    InjectorSpec,
    ProbabilisticCrashSpec,
    StallSpec,
    TornUpdateSpec,
)
from repro.errors import ConfigurationError, UnknownAddressError
from repro.runtime.policy import live_hook
from repro.runtime.rng import RngStream
from repro.sched.base import Scheduler
from repro.shm.ops import OP_FETCH_ADD, OP_GUARDED_FETCH_ADD, OP_WRITE

#: Opcodes that mutate a model entry — the ops a torn-update fault tears.
_UPDATE_OPCODES = frozenset({OP_FETCH_ADD, OP_GUARDED_FETCH_ADD, OP_WRITE})


class FaultInjector:
    """Base class: a fault policy consulted at every selection point."""

    #: Crashes this injector has fired.
    fired: int = 0

    def before_select(self, sim, engine: "FaultInjectionScheduler") -> None:
        """Fire any crash due *now* (before the scheduler picks)."""

    def stalled(self, sim, engine: "FaultInjectionScheduler") -> Iterable[int]:
        """Thread ids this injector forbids from being picked right now."""
        return ()

    def after_choice(self, sim, engine: "FaultInjectionScheduler", thread) -> None:
        """Observe the chosen thread (and its pending op) before it runs."""


class ProbabilisticCrashInjector(FaultInjector):
    """Seeded memoryless crashes: each victim dies with probability
    ``rate`` at every selection point (budget-aware)."""

    def __init__(self, spec: ProbabilisticCrashSpec, rng: RngStream) -> None:
        self.spec = spec
        self.rng = rng
        self.fired = 0

    def before_select(self, sim, engine) -> None:
        spec = self.spec
        if sim.now < spec.after_time:
            return
        if spec.max_crashes is not None and self.fired >= spec.max_crashes:
            return
        victims = (
            spec.victims if spec.victims is not None else range(len(sim.threads))
        )
        for tid in victims:
            if tid >= len(sim.threads) or not sim.threads[tid].is_runnable:
                continue
            # One draw per runnable victim per select keeps the stream
            # aligned between run() and run_fast() (same select sequence).
            if self.rng.uniform() < spec.rate and engine.try_crash(sim, tid):
                self.fired += 1
                if (
                    spec.max_crashes is not None
                    and self.fired >= spec.max_crashes
                ):
                    return


class AdaptiveCrashInjector(FaultInjector):
    """Crash a victim the moment its published ``phase`` annotation
    matches — the adaptive adversary aiming for the worst instant."""

    def __init__(self, spec: AdaptiveCrashSpec, rng: RngStream) -> None:
        self.spec = spec
        self.fired = 0

    def before_select(self, sim, engine) -> None:
        spec = self.spec
        if sim.now < spec.after_time or self.fired >= spec.max_crashes:
            return
        victims = (
            spec.victims if spec.victims is not None else range(len(sim.threads))
        )
        for tid in victims:
            if tid >= len(sim.threads):
                continue
            thread = sim.threads[tid]
            if not thread.is_runnable:
                continue
            if thread.context.annotations.get("phase") != spec.phase:
                continue
            if engine.try_crash(sim, tid):
                self.fired += 1
                return  # at most one adaptive kill per selection point


class StallInjector(FaultInjector):
    """Deterministic delay windows during which victims take no steps."""

    def __init__(self, spec: StallSpec, rng: RngStream) -> None:
        self.spec = spec
        self.stall_steps = 0  # selection points at which a victim was vetoed

    def stalled(self, sim, engine) -> Iterable[int]:
        if not self.spec.open_at(sim.now):
            return ()
        self.stall_steps += 1
        return self.spec.victims


class TornUpdateInjector(FaultInjector):
    """Crash a thread immediately *after* an update op on the watched
    segment lands — a steerable torn-update fault.

    The injector inspects the chosen thread's pending op at select time;
    if the op is an update into the watched segment and the (seeded) coin
    fires, the thread is doomed: it executes exactly that op and is
    crashed at the next selection point, before it can take another step.
    """

    def __init__(self, spec: TornUpdateSpec, rng: RngStream) -> None:
        self.spec = spec
        self.rng = rng
        self.fired = 0
        self.torn = 0
        self._doomed: Set[int] = set()
        self._segment: Optional[Tuple[int, int]] = None  # (base, end)

    def _watch_range(self, sim) -> Optional[Tuple[int, int]]:
        if self._segment is None:
            try:
                seg = sim.memory.segment(self.spec.segment)
            except UnknownAddressError:
                return None
            self._segment = (seg.base, seg.base + seg.length)
        return self._segment

    def before_select(self, sim, engine) -> None:
        if not self._doomed:
            return
        for tid in sorted(self._doomed):
            if engine.try_crash(sim, tid):
                self.fired += 1
                self.torn += 1
        self._doomed.clear()

    def after_choice(self, sim, engine, thread) -> None:
        spec = self.spec
        if sim.now < spec.after_time:
            return
        if spec.max_crashes is not None and (
            self.fired + len(self._doomed) >= spec.max_crashes
        ):
            return
        if spec.victims is not None and thread.thread_id not in spec.victims:
            return
        op = thread.pending_op
        if op is None or op.opcode not in _UPDATE_OPCODES:
            return
        watch = self._watch_range(sim)
        if watch is None or not watch[0] <= op.address < watch[1]:
            return
        if self.rng.uniform() < spec.rate:
            self._doomed.add(thread.thread_id)


def build_injector(spec: InjectorSpec, rng: RngStream) -> FaultInjector:
    """Instantiate the runtime injector for one spec."""
    if isinstance(spec, ProbabilisticCrashSpec):
        return ProbabilisticCrashInjector(spec, rng)
    if isinstance(spec, AdaptiveCrashSpec):
        return AdaptiveCrashInjector(spec, rng)
    if isinstance(spec, StallSpec):
        return StallInjector(spec, rng)
    if isinstance(spec, TornUpdateSpec):
        return TornUpdateInjector(spec, rng)
    raise ConfigurationError(f"unknown injector spec: {type(spec).__name__}")


class FaultInjectionScheduler(Scheduler):
    """Compose fault injectors below any inner scheduler.

    At each selection point the engine (1) lets every injector fire due
    crashes, (2) collects the stall veto set, (3) asks the inner
    scheduler for its pick and deterministically reroutes it to the
    lowest-id non-stalled runnable thread when the pick is vetoed (a
    stall is a delay, so *someone else* runs), and (4) shows the chosen
    thread to every injector before its pending op executes.

    Crash-budget accounting is centralized in :meth:`try_crash`: the
    model's hard ``n - 1`` rule, the spec-level ``crash_budget``, and a
    conservative "never kill the last runnable thread" guard.  Requests
    the budget rejects are counted in :attr:`skipped_crashes`.

    Like :class:`~repro.sched.crash.CrashScheduler`, the inner's hooks
    are forwarded only when live, so benign inners keep ``run_fast``'s
    elided path.
    """

    def __init__(
        self,
        inner: Scheduler,
        injectors: Sequence[FaultInjector] = (),
        crash_budget: Optional[int] = None,
        name: str = "",
    ) -> None:
        self.inner = inner
        self.injectors = tuple(injectors)
        self.crash_budget = crash_budget
        self.name = name or "faults"
        self.crashes_fired = 0
        self.skipped_crashes = 0
        self.stall_reroutes = 0
        self._m_crashes = None
        self._m_skipped = None
        self._m_reroutes = None
        spawn_hook = live_hook(inner, "on_spawn")
        if spawn_hook is not None:
            self.on_spawn = spawn_hook
        step_hook = live_hook(inner, "on_step")
        if step_hook is not None:
            self.on_step = step_hook

    def attach_metrics(self, metrics) -> None:
        """Wire ``repro_faults_*`` counters (fault events are rare, so
        they are counted per event — the per-step select path stays
        uninstrumented).  ``None``/null registry detaches."""
        from repro.obs.registry import live_registry

        registry = live_registry(metrics)
        if registry is None:
            self._m_crashes = self._m_skipped = self._m_reroutes = None
            return
        self._m_crashes = registry.counter(
            "repro_faults_crashes_total", "injected crashes fired"
        )
        self._m_skipped = registry.counter(
            "repro_faults_crashes_skipped_total",
            "crash requests rejected by the budget guards",
        )
        self._m_reroutes = registry.counter(
            "repro_faults_stall_reroutes_total",
            "picks rerouted around stalled threads",
        )

    def try_crash(self, sim, thread_id: int) -> bool:
        """Crash ``thread_id`` if every budget allows it.

        Returns ``True`` when the crash fired.  Rejections (dead victim
        excluded) are tallied in :attr:`skipped_crashes` so campaigns can
        report how often the budget saved the run.
        """
        if thread_id >= len(sim.threads) or not sim.threads[thread_id].is_runnable:
            return False
        if self.crash_budget is not None and self.crashes_fired >= self.crash_budget:
            self.skipped_crashes += 1
            if self._m_skipped is not None:
                self._m_skipped.inc()
            return False
        # Keep one runnable thread alive: implies the model's n-1 rule
        # (crashed <= n - runnable <= n - 1) and keeps time advancing.
        if sim.runnable_count <= 1 or sim.crashed_count + 1 >= len(sim.threads):
            self.skipped_crashes += 1
            if self._m_skipped is not None:
                self._m_skipped.inc()
            return False
        sim.crash(thread_id)
        self.crashes_fired += 1
        if self._m_crashes is not None:
            self._m_crashes.inc()
        return True

    def select(self, sim) -> int:
        injectors = self.injectors
        for injector in injectors:
            injector.before_select(sim, self)
        stalled: Set[int] = set()
        for injector in injectors:
            stalled.update(injector.stalled(sim, self))
        choice = self.inner.select(sim)
        if stalled and choice in stalled:
            for tid, thread in enumerate(sim.threads):
                if thread.is_runnable and tid not in stalled:
                    self.stall_reroutes += 1
                    if self._m_reroutes is not None:
                        self._m_reroutes.inc()
                    choice = tid
                    break
            # All runnable threads stalled: let the pick through —
            # the adversary may not freeze time.
        chosen = sim.threads[choice]
        for injector in injectors:
            injector.after_choice(sim, self, chosen)
        return choice
