"""Crash recovery: respawn crashed threads so they rejoin the run.

The asynchronous shared-memory model lets the adversary crash up to
``n - 1`` threads — and nothing stops the *system* from spawning a fresh
thread afterwards: a recovered thread is simply a new thread that reads
the shared state (model X, iteration counter C) and participates like
any other.  Algorithm 1 needs no per-thread state for correctness, which
is exactly the lock-free property; respawning demonstrates it
constructively instead of by survivor-counting.

:func:`run_with_recovery` is the chaos-run driver: it executes the
simulation in :meth:`~repro.runtime.simulator.Simulator.run_fast` chunks
of ``check_interval`` steps, and between chunks (the only places the
engine is paused) it polls the O(1) crash counter for fresh victims to
respawn and lets an optional :class:`~repro.faults.monitors.MonitorSuite`
run its periodic checks.  With recovery and monitors both off it
degenerates to a plain ``run_fast()`` call — zero overhead on the
engine's hot loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.runtime.thread import SimThread, ThreadState

#: A factory building the replacement program for one crashed thread.
ProgramFactory = Callable[[SimThread], "object"]


@dataclass
class RecoveryReport:
    """What happened across one recovered run.

    Attributes:
        respawned: Crashed thread id -> replacement thread id.
        crashes_seen: Total crashes observed (respawned or not).
        steps: Shared-memory steps executed by this driver.
        checks: Monitor check rounds performed.
        respawn_denied: Crashes left unrecovered because the
            ``max_respawns`` budget was already spent.
        crash_tally: Crashes per *lineage*, keyed by the original thread
            id: a respawn that itself crashes counts against the thread
            it replaced, transitively — so a single pathologically
            doomed worker is distinguishable from crashes spread across
            the ensemble.
    """

    respawned: Dict[int, int] = field(default_factory=dict)
    crashes_seen: int = 0
    steps: int = 0
    checks: int = 0
    respawn_denied: int = 0
    crash_tally: Dict[int, int] = field(default_factory=dict)

    @property
    def recovered_count(self) -> int:
        """Number of crashed threads that were respawned."""
        return len(self.respawned)

    @property
    def budget_exhausted(self) -> bool:
        """True when at least one crash went unrecovered purely because
        the respawn budget was spent."""
        return self.respawn_denied > 0

    def summary(self) -> Dict[str, object]:
        """Plain-values structured summary (JSON-safe, log-friendly)."""
        return {
            "crashes_seen": self.crashes_seen,
            "respawned": self.recovered_count,
            "respawn_denied": self.respawn_denied,
            "budget_exhausted": self.budget_exhausted,
            "crash_tally": {
                str(root): count
                for root, count in sorted(self.crash_tally.items())
            },
            "steps": self.steps,
            "checks": self.checks,
        }


def run_with_recovery(
    sim,
    program_factory: Optional[ProgramFactory] = None,
    max_respawns: Optional[int] = None,
    check_interval: int = 64,
    monitors=None,
    name_prefix: str = "respawn",
) -> RecoveryReport:
    """Drive ``sim`` to quiescence, respawning crashed threads.

    Args:
        sim: A :class:`~repro.runtime.simulator.Simulator` with threads
            already spawned.
        program_factory: Maps a crashed :class:`SimThread` to the
            replacement :class:`~repro.runtime.program.Program`; ``None``
            disables recovery (the run still gets monitoring).
        max_respawns: Cap on total respawns; ``None`` means unlimited
            (still bounded in practice — each respawn requires a crash,
            and crash budgets bound those).
        check_interval: Steps between crash polls / monitor checks.
            Crashes are detected at most ``check_interval`` steps after
            they fire; the chunked schedule is step-for-step identical to
            one uninterrupted run (the scheduler is consulted per step
            either way).
        monitors: Optional :class:`~repro.faults.monitors.MonitorSuite`;
            its periodic checks run every chunk and its final checks at
            quiescence.
        name_prefix: Replacement threads are named
            ``"<prefix>-<crashed_id>"``.

    Returns:
        A :class:`RecoveryReport`.
    """
    if check_interval < 1:
        raise ConfigurationError(
            f"check_interval must be >= 1, got {check_interval}"
        )
    report = RecoveryReport()
    if program_factory is None and monitors is None:
        # Nothing to observe between steps: take the one-shot fast path.
        report.steps = sim.run_fast()
        return report

    handled: set = set()
    # Replacement thread id -> the lineage root it (transitively)
    # replaced, so crash_tally attributes a respawn's own crash to the
    # original worker's lineage.
    lineage: Dict[int, int] = {}
    while True:
        if sim.runnable_count:
            report.steps += sim.run_fast(max_steps=check_interval)
            if monitors is not None:
                monitors.check(sim)
        respawned_this_round = False
        if sim.crashed_count > len(handled):
            for thread in sim.threads:
                if (
                    thread.state is not ThreadState.CRASHED
                    or thread.thread_id in handled
                ):
                    continue
                handled.add(thread.thread_id)
                report.crashes_seen += 1
                root = lineage.get(thread.thread_id, thread.thread_id)
                report.crash_tally[root] = report.crash_tally.get(root, 0) + 1
                if program_factory is None:
                    continue
                if (
                    max_respawns is not None
                    and len(report.respawned) >= max_respawns
                ):
                    report.respawn_denied += 1
                    continue
                replacement = sim.spawn(
                    program_factory(thread),
                    name=f"{name_prefix}-{thread.thread_id}",
                )
                lineage[replacement.thread_id] = root
                report.respawned[thread.thread_id] = replacement.thread_id
                respawned_this_round = True
        if sim.runnable_count == 0 and not respawned_this_round:
            break
    if monitors is not None:
        monitors.finish(sim)
        report.checks = monitors.checks_run
    return report
