"""Fault campaigns: grid fault specs over seeds, report robustness.

A campaign is the chaos engine's Monte-Carlo layer: for every
:class:`~repro.faults.spec.FaultSpec` in the grid it runs a seed
ensemble of the standard Algorithm-1 workload under that spec — with
invariant monitors watching and (optionally) crash recovery respawning
victims — and aggregates a robustness report: survival rate, convergence
degradation versus fault intensity, recovered-thread counts, and every
invariant violation observed.

Workers go through :func:`repro.experiments.ensemble.run_ensemble`, so
campaigns parallelize across processes exactly like the paper
experiments and stay byte-identical to serial execution.  All output is
deterministic given the config (no timestamps in the JSON), so a rerun
with the same seeds produces the same bytes — the property CI pins.
"""

from __future__ import annotations

import functools
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.epoch_sgd import EpochSGDProgram
from repro.errors import ConfigurationError
from repro.experiments.ensemble import run_ensemble
from repro.faults.monitors import MonitorSuite, default_monitors
from repro.faults.recovery import run_with_recovery
from repro.faults.spec import (
    AdaptiveCrashSpec,
    BitFlipSpec,
    DroppedWriteSpec,
    DuplicateWriteSpec,
    FaultSpec,
    PoisonSpec,
    ProbabilisticCrashSpec,
    StallSpec,
    TornUpdateSpec,
)
from repro.metrics.report import Table
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.runtime.events import IterationRecord
from repro.runtime.simulator import Simulator
from repro.runtime.thread import ThreadState
from repro.sched.registry import build_scheduler
from repro.shm.array import AtomicArray
from repro.shm.counter import AtomicCounter
from repro.shm.memory import SharedMemory


def preset_specs() -> Dict[str, FaultSpec]:
    """Named fault specs the CLI exposes (``--specs name,name,...``).

    Rates and budgets are tuned so every preset leaves survivors that
    converge on the standard workload — the point of the campaign is to
    *verify* that, seed by seed.
    """
    return {
        "none": FaultSpec("none", ()),
        "prob-crash": FaultSpec(
            "prob-crash",
            (ProbabilisticCrashSpec(rate=0.002, max_crashes=3, after_time=20),),
        ),
        "adaptive-crash": FaultSpec(
            "adaptive-crash",
            (AdaptiveCrashSpec(phase="update", max_crashes=2, after_time=50),),
        ),
        "stall": FaultSpec(
            "stall",
            (StallSpec(victims=(0,), start=40, duration=120, period=400),),
        ),
        "torn-update": FaultSpec(
            "torn-update",
            (TornUpdateSpec(rate=0.01, max_crashes=2, after_time=20),),
        ),
        "mixed": FaultSpec(
            "mixed",
            (
                ProbabilisticCrashSpec(rate=0.001, max_crashes=1, after_time=20),
                StallSpec(victims=(1,), start=100, duration=80, period=500),
                TornUpdateSpec(rate=0.005, max_crashes=1, after_time=20),
            ),
        ),
    }


def corruption_specs() -> Dict[str, FaultSpec]:
    """Named silent-data-corruption plans (``repro heal --plans ...``).

    Unlike :func:`preset_specs`, these are *not* tuned to converge on
    their own — a NaN-poisoned run diverges by construction.  They are
    tuned so the heal layer's detectors catch every corruption within a
    chunk and the rollback ladder recovers, which is what E14 verifies.
    Corruption composes with scheduling faults (``sdc-mixed``).
    """
    return {
        "bit-flip": FaultSpec(
            "bit-flip",
            (BitFlipSpec(rate=0.004, max_corruptions=3, after_time=30),),
        ),
        "nan-poison": FaultSpec(
            "nan-poison",
            (PoisonSpec(rate=0.004, mode="nan", max_corruptions=3, after_time=30),),
        ),
        "inf-poison": FaultSpec(
            "inf-poison",
            (PoisonSpec(rate=0.004, mode="inf", max_corruptions=3, after_time=30),),
        ),
        "dup-write": FaultSpec(
            "dup-write",
            (DuplicateWriteSpec(rate=0.01, max_corruptions=4, after_time=30),),
        ),
        "drop-write": FaultSpec(
            "drop-write",
            (DroppedWriteSpec(rate=0.01, max_corruptions=4, after_time=30),),
        ),
        "sdc-mixed": FaultSpec(
            "sdc-mixed",
            (
                PoisonSpec(rate=0.002, mode="nan", max_corruptions=2, after_time=40),
                BitFlipSpec(rate=0.002, max_corruptions=2, after_time=40),
                ProbabilisticCrashSpec(rate=0.0005, max_crashes=1, after_time=40),
            ),
        ),
    }


@dataclass(frozen=True)
class ChaosWorkload:
    """The SGD workload every campaign cell runs.

    A small noisy quadratic under Algorithm 1 — cheap enough to grid,
    rich enough that crashes hit mid-iteration state (reads, updates,
    claimed counter slots).
    """

    dim: int = 2
    num_threads: int = 4
    step_size: float = 0.05
    iterations: int = 300
    noise_sigma: float = 0.2
    x0_scale: float = 2.0
    #: ``||x - x*||`` at or below which a run counts as converged.
    convergence_radius: float = 0.5


@dataclass(frozen=True)
class CampaignConfig:
    """One campaign: a fault-spec grid times a seed list."""

    specs: Tuple[FaultSpec, ...]
    seeds: Tuple[int, ...]
    workload: ChaosWorkload = field(default_factory=ChaosWorkload)
    recover: bool = True
    max_respawns: Optional[int] = None
    monitors: bool = True
    check_interval: int = 64
    jobs: int = 1
    #: Collect per-cell paper-aligned observability metrics (τ histogram,
    #: window contention counts, lemma indicators — see
    #: :func:`repro.obs.paper.paper_metrics`).  Part of the journal
    #: fingerprint (it changes what workers compute), so a resumed
    #: ``--metrics`` campaign must keep passing ``--metrics``.
    collect_obs: bool = False

    def __post_init__(self) -> None:
        if not self.specs:
            raise ConfigurationError("campaign needs at least one fault spec")
        if not self.seeds:
            raise ConfigurationError("campaign needs at least one seed")


@dataclass(frozen=True)
class FaultRunOutcome:
    """One (spec, seed) cell — plain values only, so it crosses the
    process pool and serializes to JSON untouched."""

    spec: str
    seed: int
    threads: int  # total spawned, respawns included
    finished: int
    crashed: int
    respawned: int
    torn_updates: int
    skipped_crashes: int
    stall_reroutes: int
    iterations: int  # completed (recorded) iterations
    steps: int
    distance: float
    converged: bool
    violations: Tuple[str, ...]
    #: Crashes left unrecovered because the ``max_respawns`` budget ran
    #: out (from :class:`~repro.faults.recovery.RecoveryReport`).
    respawn_denied: int = 0
    #: Per-lineage crash counts ``((root_thread_id, crashes), ...)``,
    #: sorted by root id — a lineage with count > 1 is a respawn that
    #: crashed again (a "doomed worker").
    crash_tally: Tuple[Tuple[int, int], ...] = ()
    #: Paper-aligned metrics of the cell (``collect_obs`` campaigns
    #: only).  Excluded from :meth:`CampaignReport.to_json`, so report
    #: bytes are identical with or without observability — metrics flow
    #: to the separate snapshot file instead.
    obs: Optional[Dict[str, Any]] = None


def _chaos_worker(
    config: CampaignConfig, spec_index: int, seed: int
) -> FaultRunOutcome:
    """Run one campaign cell (module-level: picklable for the pool)."""
    spec = config.specs[spec_index]
    workload = config.workload
    objective = IsotropicQuadratic(
        dim=workload.dim, noise=GaussianNoise(workload.noise_sigma)
    )
    memory = SharedMemory(record_log=False)
    model = AtomicArray.allocate(memory, workload.dim, name="model")
    model.load(np.full(workload.dim, workload.x0_scale))
    counter = AtomicCounter.allocate(memory, name="iteration_counter")
    engine = spec.build(
        build_scheduler("random", seed=seed),
        seed=seed,
        num_threads=workload.num_threads,
    )
    sim = Simulator(memory, engine, seed=seed)

    def make_program() -> EpochSGDProgram:
        return EpochSGDProgram(
            model=model,
            counter=counter,
            objective=objective,
            step_size=workload.step_size,
            max_iterations=workload.iterations,
        )

    for index in range(workload.num_threads):
        sim.spawn(make_program(), name=f"worker-{index}")

    suite = MonitorSuite(default_monitors()) if config.monitors else None
    factory = (lambda crashed: make_program()) if config.recover else None
    recovery = run_with_recovery(
        sim,
        program_factory=factory,
        max_respawns=config.max_respawns,
        check_interval=config.check_interval,
        monitors=suite,
    )

    final = model.snapshot()
    distance = float(objective.distance_to_opt(final))
    iterations = sum(1 for e in sim.trace if isinstance(e, IterationRecord))
    torn = sum(getattr(inj, "torn", 0) for inj in engine.injectors)
    reroutes = engine.stall_reroutes
    violations = tuple(str(v) for v in suite.violations) if suite else ()
    finished = sum(1 for t in sim.threads if t.state is ThreadState.FINISHED)
    obs: Optional[Dict[str, Any]] = None
    if config.collect_obs:
        from repro.obs.paper import paper_metrics

        records = sorted(
            (e for e in sim.trace if isinstance(e, IterationRecord)),
            key=lambda r: r.order_time,
        )
        obs = paper_metrics(records, num_threads=workload.num_threads)
    return FaultRunOutcome(
        spec=spec.name,
        seed=seed,
        threads=len(sim.threads),
        finished=finished,
        crashed=sim.crashed_count,
        respawned=recovery.recovered_count,
        torn_updates=torn,
        skipped_crashes=engine.skipped_crashes,
        stall_reroutes=reroutes,
        iterations=iterations,
        steps=sim.now,
        distance=distance,
        converged=distance <= workload.convergence_radius,
        violations=violations,
        respawn_denied=recovery.respawn_denied,
        crash_tally=tuple(sorted(recovery.crash_tally.items())),
        obs=obs,
    )


@dataclass(frozen=True)
class SpecSummary:
    """Aggregate robustness of one fault spec over its seed ensemble."""

    spec: str
    runs: int
    survival_rate: float  # mean fraction of threads that finished
    convergence_rate: float
    mean_distance: float
    mean_crashed: float
    mean_respawned: float
    torn_updates: int
    skipped_crashes: int
    violations: int
    #: Respawn requests the ``max_respawns`` budget denied, summed over
    #: the seed ensemble (satellite of the recovery report).
    respawn_denied: int = 0


@dataclass
class CampaignReport:
    """Everything a campaign measured, renderable and serializable."""

    outcomes: List[FaultRunOutcome]
    summaries: List[SpecSummary]

    @property
    def clean(self) -> bool:
        """No invariant monitor fired anywhere in the grid."""
        return all(not outcome.violations for outcome in self.outcomes)

    @property
    def all_converged(self) -> bool:
        """Survivors converged in every cell."""
        return all(outcome.converged for outcome in self.outcomes)

    @property
    def passed(self) -> bool:
        return self.clean and self.all_converged

    def render(self) -> str:
        """ASCII robustness report (the CLI artifact)."""
        table = Table(
            [
                "spec",
                "runs",
                "survival",
                "converged",
                "mean ||x-x*||",
                "crashed",
                "respawned",
                "torn",
                "budget-skips",
                "denied",
                "violations",
            ],
            title="Chaos campaign: fault specs x seeds",
        )
        for s in self.summaries:
            table.add_row(
                [
                    s.spec,
                    s.runs,
                    f"{s.survival_rate:.2f}",
                    f"{s.convergence_rate:.2f}",
                    f"{s.mean_distance:.4f}",
                    f"{s.mean_crashed:.2f}",
                    f"{s.mean_respawned:.2f}",
                    s.torn_updates,
                    s.skipped_crashes,
                    s.respawn_denied,
                    s.violations,
                ]
            )
        parts = [table.render()]
        for outcome in self.outcomes:
            if outcome.respawn_denied or any(
                count > 1 for _, count in outcome.crash_tally
            ):
                tally = ", ".join(
                    f"{root}x{count}" for root, count in outcome.crash_tally
                )
                parts.append(
                    f"LINEAGES spec={outcome.spec} seed={outcome.seed}: "
                    f"denied={outcome.respawn_denied} crashes [{tally}]"
                )
        for outcome in self.outcomes:
            for violation in outcome.violations:
                parts.append(
                    f"VIOLATION spec={outcome.spec} seed={outcome.seed}: "
                    f"{violation}"
                )
        parts.append(f"verdict: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(parts)

    def to_json(self) -> str:
        """Deterministic JSON (sorted keys, no timestamps): reruns with
        the same config produce identical bytes."""
        outcomes = []
        for o in self.outcomes:
            row = asdict(o)
            # Observability metrics live in the snapshot file, never the
            # report: bytes stay identical with and without collect_obs.
            row.pop("obs", None)
            outcomes.append(row)
        payload = {
            "summaries": [asdict(s) for s in self.summaries],
            "outcomes": outcomes,
            "clean": self.clean,
            "all_converged": self.all_converged,
            "passed": self.passed,
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def write(self, path: str, fmt: str = "json") -> None:
        """Atomically persist the report (``fmt`` = ``"json"``/``"txt"``).

        Goes through :func:`repro.durable.atomic_io.atomic_write`, so a
        crash mid-write leaves either the previous report or the new one
        — never a torn file.
        """
        from repro.durable.atomic_io import atomic_write

        if fmt == "json":
            text = self.to_json()
        elif fmt == "txt":
            text = self.render() + "\n"
        else:
            raise ConfigurationError(f"unknown report format: {fmt!r}")
        atomic_write(path, text.encode("utf-8"))


def summarize(outcomes: List[FaultRunOutcome]) -> List[SpecSummary]:
    """Collapse per-cell outcomes into per-spec rows (grid order)."""
    by_spec: Dict[str, List[FaultRunOutcome]] = {}
    for outcome in outcomes:
        by_spec.setdefault(outcome.spec, []).append(outcome)
    summaries = []
    for spec, cell in by_spec.items():
        survival = [o.finished / o.threads if o.threads else 0.0 for o in cell]
        summaries.append(
            SpecSummary(
                spec=spec,
                runs=len(cell),
                survival_rate=float(np.mean(survival)),
                convergence_rate=float(np.mean([o.converged for o in cell])),
                mean_distance=float(np.mean([o.distance for o in cell])),
                mean_crashed=float(np.mean([o.crashed for o in cell])),
                mean_respawned=float(np.mean([o.respawned for o in cell])),
                torn_updates=sum(o.torn_updates for o in cell),
                skipped_crashes=sum(o.skipped_crashes for o in cell),
                violations=sum(len(o.violations) for o in cell),
                respawn_denied=sum(o.respawn_denied for o in cell),
            )
        )
    return summaries


def campaign_fingerprint(config: CampaignConfig) -> str:
    """Stable fingerprint of everything that determines campaign results.

    ``jobs`` is deliberately excluded: parallelism changes wall-clock
    time, never results, so a journal written under ``--jobs 4`` must
    resume cleanly under ``--jobs 1`` (and vice versa).
    """
    from repro.durable.journal import config_fingerprint

    payload = asdict(config)
    payload.pop("jobs", None)
    return config_fingerprint(payload)


def outcome_to_payload(outcome: FaultRunOutcome) -> Dict[str, Any]:
    """JSON-safe journal payload for one campaign cell."""
    payload = asdict(outcome)
    payload["violations"] = list(outcome.violations)
    return payload


def outcome_from_payload(payload: Dict[str, Any]) -> FaultRunOutcome:
    """Inverse of :func:`outcome_to_payload` — exact reconstruction, so
    journaled and freshly computed outcomes mix byte-identically."""
    data = dict(payload)
    data["violations"] = tuple(data.get("violations", ()))
    # Journals written before the lineage fields existed decode with the
    # dataclass defaults.
    data.setdefault("respawn_denied", 0)
    data["crash_tally"] = tuple(
        (int(root), int(count)) for root, count in data.get("crash_tally", ())
    )
    data.setdefault("obs", None)
    return FaultRunOutcome(**data)


def _cell_namespace(spec_index: int, spec: FaultSpec) -> str:
    return f"{spec_index}:{spec.name}"


def report_from_outcomes(outcomes: List[FaultRunOutcome]) -> CampaignReport:
    """Aggregate cell outcomes into a report (grid order preserved)."""
    return CampaignReport(outcomes=outcomes, summaries=summarize(outcomes))


def partial_report(config: CampaignConfig, journal: Any) -> CampaignReport:
    """Report over only the cells the journal has — the artifact the CLI
    flushes when a campaign is interrupted.  Grid-ordered, so the final
    resumed report extends it deterministically."""
    outcomes: List[FaultRunOutcome] = []
    for spec_index, spec in enumerate(config.specs):
        done = journal.completed(_cell_namespace(spec_index, spec))
        for seed in config.seeds:
            if seed in done:
                outcomes.append(outcome_from_payload(done[seed]))
    return report_from_outcomes(outcomes)


def campaign_metrics_lines(
    config: CampaignConfig, outcomes: List[FaultRunOutcome]
) -> List[Dict[str, Any]]:
    """Snapshot-file lines for a ``collect_obs`` campaign.

    One ``kind="cell"`` line per outcome that carries metrics (grid
    order) plus one ``kind="aggregate"`` roll-up — the payload
    ``repro chaos --metrics`` writes via
    :func:`repro.obs.snapshot.write_snapshot_jsonl`.  Purely a function
    of the outcomes, hence deterministic.
    """
    from repro.obs.paper import merge_paper_metrics

    lines: List[Dict[str, Any]] = []
    cells = []
    for outcome in outcomes:
        if outcome.obs is None:
            continue
        cells.append(outcome.obs)
        lines.append(
            {
                "kind": "cell",
                "spec": outcome.spec,
                "seed": outcome.seed,
                "converged": outcome.converged,
                "crashed": outcome.crashed,
                "respawned": outcome.respawned,
                "steps": outcome.steps,
                "metrics": outcome.obs,
            }
        )
    lines.append({"kind": "aggregate", "metrics": merge_paper_metrics(cells)})
    return lines


def run_campaign(
    config: CampaignConfig,
    journal: Optional[Any] = None,
    shutdown: Optional[Any] = None,
    watchdog_policy: Optional[Any] = None,
    metrics: Optional[Any] = None,
    progress: Optional[Any] = None,
) -> CampaignReport:
    """Execute the full spec x seed grid and aggregate the report.

    Each spec's seed ensemble goes through :func:`run_ensemble`, so
    ``config.jobs`` parallelizes cells across processes with results
    byte-identical to a serial run.

    With a ``journal`` (a :class:`~repro.durable.journal.RunJournal`
    opened against :func:`campaign_fingerprint`), every finished cell is
    durably recorded as it lands and already-journaled cells are skipped
    on resume — the report is byte-identical to an uninterrupted run no
    matter how many kills happened in between, or what ``jobs`` each
    attempt used.  ``shutdown`` stops the grid at the next cell boundary
    by raising :class:`~repro.errors.InterruptedRunError`;
    ``watchdog_policy`` (a :class:`~repro.durable.watchdog.
    WatchdogPolicy`) guards each spec's pooled phase against stalls.

    ``metrics`` (a :class:`repro.obs.registry.MetricsRegistry`) feeds
    ensemble/watchdog telemetry and, for ``collect_obs`` configs, the
    merged paper metrics of each freshly finished cell; ``progress``
    (``progress(seed, outcome)``) fires per fresh cell — the live-view
    hook.  Each spec's ensemble runs under a ``campaign.spec`` span when
    a recorder is active.  None of this changes results or report bytes.
    """
    from repro.durable.watchdog import EnsembleWatchdog
    from repro.obs.paper import publish_paper_metrics
    from repro.obs.registry import live_registry
    from repro.obs.spans import trace_span

    registry = live_registry(metrics)

    def note_cell(seed: int, outcome: FaultRunOutcome) -> None:
        if registry is not None and outcome.obs is not None:
            publish_paper_metrics(registry, outcome.obs)
        if registry is not None:
            registry.counter(
                "repro_campaign_cells_total", "campaign cells finished"
            ).inc()
        if progress is not None:
            progress(seed, outcome)

    outcomes: List[FaultRunOutcome] = []
    for spec_index, spec in enumerate(config.specs):
        watchdog = (
            EnsembleWatchdog(watchdog_policy, metrics=metrics)
            if watchdog_policy is not None
            else None
        )
        with trace_span("campaign.spec", spec=spec.name, seeds=len(config.seeds)):
            outcomes.extend(
                run_ensemble(
                    functools.partial(_chaos_worker, config, spec_index),
                    config.seeds,
                    jobs=config.jobs,
                    journal=journal,
                    namespace=_cell_namespace(spec_index, spec),
                    encode=outcome_to_payload,
                    decode=outcome_from_payload,
                    watchdog=watchdog,
                    shutdown=shutdown,
                    metrics=metrics,
                    progress=note_cell,
                )
            )
    return report_from_outcomes(outcomes)
