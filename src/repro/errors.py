"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class MemoryError_(ReproError):
    """Base class for shared-memory subsystem errors.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`.
    """


class UnknownAddressError(MemoryError_):
    """An operation referenced an address that was never allocated."""

    def __init__(self, address: int) -> None:
        super().__init__(f"unknown shared-memory address: {address!r}")
        self.address = address


class InvalidOperationError(MemoryError_):
    """An operation descriptor was malformed or used incorrectly."""


class HistoryViolationError(MemoryError_):
    """A recorded operation history violates a consistency condition.

    Raised by the history checkers in :mod:`repro.shm.history` when a log
    of operations is not sequentially consistent / linearizable.
    """


class SimulationError(ReproError):
    """Base class for execution-runtime errors."""


class ThreadCrashedError(SimulationError):
    """An operation was attempted on a crashed thread."""

    def __init__(self, thread_id: int) -> None:
        super().__init__(f"thread {thread_id} has crashed and cannot be scheduled")
        self.thread_id = thread_id


class ThreadFinishedError(SimulationError):
    """An operation was attempted on a thread that already finished.

    Distinct from :class:`ThreadCrashedError`: a finished thread completed
    its program normally — crashing it is meaningless (the adversary's
    crash budget only applies to threads that could still take steps).
    """

    def __init__(self, thread_id: int) -> None:
        super().__init__(
            f"thread {thread_id} has already finished and cannot be crashed"
        )
        self.thread_id = thread_id


class NoRunnableThreadError(SimulationError):
    """The scheduler was asked to pick a step but no thread is runnable."""


class SchedulerError(SimulationError):
    """A scheduler made an illegal decision (e.g. picked a finished thread)."""


class ReplayDivergenceError(SchedulerError):
    """A schedule replay diverged from its recording.

    Raised by the replay schedulers in :mod:`repro.sched.replay` when the
    live simulation disagrees with the recorded decision sequence — the
    inner scheduler picked a different thread, the recorded thread is not
    runnable, or the recording ran out while the simulation still wants
    steps.  Structured so the verification tier (and checkpoint restore)
    can report *where* a counterexample replay broke instead of failing
    with undefined behavior past the prefix.

    Attributes:
        step_index: 0-based decision index at which replay diverged.
        expected: Thread id the recording prescribes (``-1`` when the
            recording was exhausted and prescribes nothing).
        actual: Thread id the live run produced (``-1`` when the recorded
            thread simply was not runnable).
    """

    def __init__(
        self, message: str, step_index: int, expected: int, actual: int
    ) -> None:
        super().__init__(message)
        self.step_index = step_index
        self.expected = expected
        self.actual = actual


class ProgramError(SimulationError):
    """A simulated program misbehaved (yielded a non-operation, etc.)."""


class ConfigurationError(ReproError):
    """Invalid parameters were supplied to an algorithm or experiment."""


class InvariantViolationError(ReproError):
    """A runtime invariant monitor detected a violated invariant.

    Raised by :class:`repro.faults.monitors.MonitorSuite` in fail-fast
    mode; in collecting mode violations are accumulated instead so a
    fault campaign can report every breakage of a run at once.
    """


class InterruptedRunError(ReproError):
    """A long-running driver stopped early at a safe point.

    Raised when a :class:`repro.durable.signals.GracefulShutdown` (or a
    watchdog abandon decision) asks a driver to stop between seed-cells.
    Completed cells are already persisted in the run journal by the time
    this propagates, so the caller can flush a valid partial report and
    print the ``--resume`` invocation.
    """

    def __init__(self, message: str, reason: str = "shutdown") -> None:
        super().__init__(message)
        self.reason = reason


class ResumeMismatchError(ReproError):
    """A run journal belongs to a different run configuration.

    Resuming replays stored cell results verbatim, so resuming under a
    changed config would silently mix two different runs; the journal's
    fingerprint header exists to make that impossible.
    """


class CheckpointRestoreError(ReproError):
    """A checkpoint restore did not reproduce the captured state.

    Carries the determinism findings that describe the divergence (see
    :meth:`repro.durable.checkpoint.Checkpoint.verify`).
    """

    def __init__(self, message: str, findings=()) -> None:
        super().__init__(message)
        self.findings = list(findings)


class AssumptionViolationError(ReproError):
    """An analytic assumption (strong convexity, Lipschitzness, bounded
    second moment) failed numerical verification for an objective."""


class ConvergenceError(ReproError):
    """An algorithm failed to converge where convergence was required."""
