"""Online health detectors: read-only observers of a running simulation.

Detectors are consulted at ``run_fast`` chunk boundaries — the same
consistent cuts the sanitizer and checkpoints use — so the elided hot
loop stays untouched and detection latency is bounded by the chunk size.
Each detector answers one question about the current cut:

========  ==========================================================
rule      fires when
========  ==========================================================
HEAL001   a watched component is NaN/±Inf (streaming NaN/Inf guard)
HEAL002   the noiseless gradient norm exploded past its baseline
HEAL003   the loss kept rising for ``patience`` consecutive chunks
HEAL004   the *retained* checkpoint no longer matches the digest it
          had at capture (the rollback target itself is damaged)
========  ==========================================================

Detectors are **read-only observers**: they may ``peek`` shared memory
but never mutate it — poking, loading or storing from a detector would
make the observer part of the fault model.  Lint rule ``RPL104``
enforces this contract statically.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.report import Finding
from repro.errors import UnknownAddressError


def _segment_view(sim, name: str) -> Optional[np.ndarray]:
    """Read-only copy of a named segment (``None`` if not allocated)."""
    try:
        seg = sim.memory.segment(name)
    except UnknownAddressError:
        return None
    return np.asarray(sim.memory.peek_range(seg.base, seg.length), dtype=float)


class HealthDetector:
    """Base class: one health question, asked at chunk boundaries.

    Subclasses set :attr:`rule` and implement :meth:`check`; the
    contract is *read-only observation* (enforced by lint rule RPL104).
    """

    #: Stable finding rule id (``HEAL001``...).
    rule: str = "HEAL000"

    def on_attach(self, sim) -> None:
        """Baseline against a (presumed healthy) simulation state."""

    def check(self, sim) -> Optional[Finding]:
        """Inspect the current cut; a :class:`Finding` means unhealthy."""
        return None

    def on_rollback(self, sim) -> None:
        """Reset transient state after the driver restored a checkpoint."""


class NanGuardDetector(HealthDetector):
    """Streaming NaN/Inf guard over a watched segment (HEAL001).

    NaN persists under ``fetch&add`` (NaN + x = NaN), so any poisoning
    of a watched component is guaranteed to still be visible at the next
    chunk boundary — this guard cannot race with the corruption.
    """

    rule = "HEAL001"

    def __init__(self, segment: str = "model") -> None:
        self.segment = segment

    def check(self, sim) -> Optional[Finding]:
        view = _segment_view(sim, self.segment)
        if view is None:
            return None
        finite = np.isfinite(view)
        if bool(finite.all()):
            return None
        bad = [int(i) for i in np.flatnonzero(~finite)[:8]]
        return Finding(
            source="heal",
            rule=self.rule,
            message=(
                f"non-finite component(s) in segment {self.segment!r} "
                f"at index(es) {bad}"
            ),
            time=sim.now,
            location=f"{self.segment}[{bad[0]}]",
        )


class GradientNormDetector(HealthDetector):
    """Gradient-norm explosion detector (HEAL002).

    Compares the *noiseless* gradient norm at the current iterate to a
    baseline captured at attach time; a factor-``threshold`` blow-up (or
    a non-finite norm) means the iterate left the basin the step size
    was tuned for — bit flips in the exponent land here even when every
    component is still finite.
    """

    rule = "HEAL002"

    def __init__(
        self,
        objective,
        segment: str = "model",
        threshold: float = 100.0,
        floor: float = 1.0,
    ) -> None:
        self.objective = objective
        self.segment = segment
        self.threshold = threshold
        self.floor = floor
        self.baseline = floor

    def on_attach(self, sim) -> None:
        view = _segment_view(sim, self.segment)
        if view is None:
            return
        norm = float(np.linalg.norm(self.objective.gradient(view)))
        if math.isfinite(norm):
            self.baseline = max(norm, self.floor)

    def check(self, sim) -> Optional[Finding]:
        view = _segment_view(sim, self.segment)
        if view is None:
            return None
        norm = float(np.linalg.norm(self.objective.gradient(view)))
        limit = self.threshold * self.baseline
        if math.isfinite(norm) and norm <= limit:
            return None
        return Finding(
            source="heal",
            rule=self.rule,
            message=(
                f"gradient norm exploded: {norm:g} > {limit:g} "
                f"(baseline {self.baseline:g} x threshold {self.threshold:g})"
            ),
            time=sim.now,
            location=f"segment {self.segment!r}",
        )


class LossDivergenceDetector(HealthDetector):
    """Loss-divergence trend detector (HEAL003).

    SGD under a sane step size makes noisy but net progress; a loss that
    sits ``factor`` times above the best value seen for ``patience``
    consecutive chunks is diverging — the signature of a corrupted
    iterate that is still numerically tame (e.g. a mantissa bit flip or
    an un-revoked duplicated update).

    ``floor`` is the absolute loss scale below which the trend test is
    mute: near the noise ball the loss fluctuates *multiplicatively*
    around tiny values, so a purely relative factor-over-best test would
    fire on every healthy converged run.
    """

    rule = "HEAL003"

    def __init__(
        self,
        objective,
        segment: str = "model",
        factor: float = 4.0,
        patience: int = 2,
        floor: float = 0.5,
    ) -> None:
        self.objective = objective
        self.segment = segment
        self.factor = factor
        self.patience = patience
        self.floor = floor
        self.best = math.inf
        self.streak = 0

    def on_attach(self, sim) -> None:
        view = _segment_view(sim, self.segment)
        if view is None:
            return
        value = float(self.objective.value(view))
        if math.isfinite(value):
            self.best = value
        self.streak = 0

    def on_rollback(self, sim) -> None:
        # The restored iterate is healthy by construction; only the
        # streak resets — the best-seen value remains a valid floor.
        self.streak = 0

    def check(self, sim) -> Optional[Finding]:
        view = _segment_view(sim, self.segment)
        if view is None:
            return None
        value = float(self.objective.value(view))
        limit = self.factor * max(self.best, self.floor)
        if not math.isfinite(value):
            self.streak += 1
        elif self.best < math.inf and value > limit:
            self.streak += 1
        else:
            self.streak = 0
            self.best = min(self.best, value)
            return None
        if self.streak < self.patience:
            return None
        return Finding(
            source="heal",
            rule=self.rule,
            message=(
                f"loss diverging: {value:g} vs best {self.best:g} for "
                f"{self.streak} consecutive chunk(s) "
                f"(factor {self.factor:g}, patience {self.patience})"
            ),
            time=sim.now,
            location=f"segment {self.segment!r}",
        )


class CheckpointDigestDetector(HealthDetector):
    """State-digest cross-check of the retained checkpoint (HEAL004).

    The rollback ladder is only as good as its rollback target.  This
    detector remembers the digest of the last verified checkpoint *at
    capture time* and re-derives it at every chunk boundary; a mismatch
    means the retained snapshot itself was corrupted in memory, and the
    driver must fall back to an older anchor instead of restoring it.
    """

    rule = "HEAL004"

    def __init__(self) -> None:
        self._checkpoint = None
        self._expected: Optional[str] = None

    def observe_checkpoint(self, checkpoint) -> None:
        """Adopt a freshly captured (healthy) checkpoint to guard."""
        self._checkpoint = checkpoint
        self._expected = checkpoint.digest()

    def on_rollback(self, sim) -> None:
        self._checkpoint = None
        self._expected = None

    def check(self, sim) -> Optional[Finding]:
        if self._checkpoint is None:
            return None
        actual = self._checkpoint.digest()
        if actual == self._expected:
            return None
        return Finding(
            source="heal",
            rule=self.rule,
            message=(
                "retained checkpoint no longer matches its capture-time "
                f"digest ({self._expected[:12]}... != {actual[:12]}...); "
                "rollback target is damaged"
            ),
            time=sim.now,
            location=f"checkpoint t={self._checkpoint.time}",
        )


class DetectorSuite:
    """A set of detectors checked together at each chunk boundary.

    Tallies firings per rule (:attr:`firings`) so reports and the obs
    layer can count detections without re-deriving them.
    """

    def __init__(self, detectors: Sequence[HealthDetector]) -> None:
        self.detectors: Tuple[HealthDetector, ...] = tuple(detectors)
        self.firings: Dict[str, int] = {}

    def attach(self, sim) -> None:
        for detector in self.detectors:
            detector.on_attach(sim)

    def check(self, sim) -> List[Finding]:
        findings: List[Finding] = []
        for detector in self.detectors:
            finding = detector.check(sim)
            if finding is not None:
                findings.append(finding)
                self.firings[finding.rule] = self.firings.get(finding.rule, 0) + 1
        return findings

    def on_rollback(self, sim) -> None:
        for detector in self.detectors:
            detector.on_rollback(sim)

    def observe_checkpoint(self, checkpoint) -> None:
        for detector in self.detectors:
            observe = getattr(detector, "observe_checkpoint", None)
            if observe is not None:
                observe(checkpoint)


def default_detectors(
    objective, segment: str = "model"
) -> Tuple[HealthDetector, ...]:
    """The standard panel: NaN guard, gradient explosion, loss trend,
    checkpoint digest cross-check."""
    return (
        NanGuardDetector(segment),
        GradientNormDetector(objective, segment),
        LossDivergenceDetector(objective, segment),
        CheckpointDigestDetector(),
    )
