"""The rollback retry ladder: turn a detection into a recovery.

The driver (:func:`run_with_healing`) runs any registered algorithm
variant under any fault plan in ``run_fast`` chunks, checkpointing at
every healthy chunk boundary.  When a detector fires it climbs a ladder
that mirrors the watchdog's WD001→WD003 stall ladder, but at the
numerical layer:

* **L0 — rollback + retry.** Restore the last healthy checkpoint via
  :meth:`~repro.durable.checkpoint.Checkpoint.restore_by_replay` (the
  replay re-certifies determinism, corruption re-fires included) and
  retry the chunk with the corruption injectors suppressed for a few
  chunks — the transient-SDC model.  Each *consecutive* retry of the
  same trouble spot costs exponentially more of the retry budget
  (1, 2, 4, ... units): genuine transients are cheap, deterministic
  repeat offenders drain the budget fast.
* **L1 — shrink the step size** (MindTheStep-style): a smaller step
  tolerates perturbed iterates that the tuned step cannot.
* **L2 — fall back to a safer algorithm variant** (e.g. hogwild →
  locked), keeping the model and iteration budget via a segment-wise
  carry into the fresh lineage.
* **L3 — abandon**, with everything that happened recorded in a
  structured :class:`HealReport`.

Suppression windows are logical-time intervals handed to every freshly
built engine (:meth:`FaultInjectionScheduler.set_suppression`), so the
corruption pattern stays a pure function of (spec, seed, windows) and
checkpoint replay remains certifiable after any number of rollbacks.

Degraded lineages (L1/L2) cannot replay the old decision prefix — the
program changed — so they restart logical time at zero and carry only
the ``model`` and ``iteration_counter`` segments from the last healthy
checkpoint.  That transplant is sound because
:func:`~repro.core.algorithm.build_zoo_simulation` allocates exactly
those two segments first for every variant (the layout prefix is
shared), and it preserves the global iteration budget: work already
claimed is not redone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.algorithm import build_zoo_simulation, get_algorithm
from repro.durable.checkpoint import Checkpoint
from repro.errors import ConfigurationError
from repro.faults.spec import CORRUPTION_SPECS, FaultSpec
from repro.heal.detectors import (
    CheckpointDigestDetector,
    DetectorSuite,
    HealthDetector,
    default_detectors,
)
from repro.runtime.events import IterationRecord
from repro.sched.registry import build_scheduler
from repro.sched.replay import RecordingScheduler

#: Buckets for the recovery-latency histogram (logical steps between the
#: restored cut and the detection point; bounded by the chunk size times
#: the detector patience).
LATENCY_BUCKETS = (8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0)

#: Segments carried into a degraded lineage — the shared layout prefix
#: every zoo variant allocates first.
CARRY_SEGMENTS = ("model", "iteration_counter")


@dataclass(frozen=True)
class HealPolicy:
    """Knobs of the rollback retry ladder (plain values, fingerprintable).

    Attributes:
        check_interval: Chunk size in logical steps; detectors run (and
            checkpoints are cut) at these boundaries.
        retry_budget: Rollback budget units per ladder level; the i-th
            consecutive retry of the same incident costs ``2**(i-1)``.
        disarm_chunks: Chunks of corruption suppression after each
            rollback (the transient-SDC assumption).
        step_shrink: Step-size multiplier per L1 degradation.
        max_step_shrinks: L1 rungs before escalating to L2.
        fallback_algorithm: Registered variant to fall back to at L2.
        max_total_steps: Hard cap on logical steps across all attempts —
            the backstop that turns any pathological loop (e.g. a crash
            plan deadlocking the fallback's lock) into a reported
            abandonment instead of a hang.
    """

    check_interval: int = 64
    retry_budget: int = 8
    disarm_chunks: int = 1
    step_shrink: float = 0.5
    max_step_shrinks: int = 2
    fallback_algorithm: str = "locked"
    max_total_steps: int = 200_000

    def __post_init__(self) -> None:
        if self.check_interval < 1:
            raise ConfigurationError(
                f"check_interval must be >= 1, got {self.check_interval}"
            )
        if self.retry_budget < 0:
            raise ConfigurationError(
                f"retry_budget must be >= 0, got {self.retry_budget}"
            )
        if self.disarm_chunks < 1:
            raise ConfigurationError(
                f"disarm_chunks must be >= 1, got {self.disarm_chunks}"
            )
        if not 0.0 < self.step_shrink < 1.0:
            raise ConfigurationError(
                f"step_shrink must be in (0, 1), got {self.step_shrink}"
            )
        if self.max_step_shrinks < 0:
            raise ConfigurationError(
                f"max_step_shrinks must be >= 0, got {self.max_step_shrinks}"
            )
        if self.max_total_steps < 1:
            raise ConfigurationError(
                f"max_total_steps must be >= 1, got {self.max_total_steps}"
            )


@dataclass
class HealReport:
    """What the ladder did: attempts, rollbacks, degradations, health.

    ``health`` ends as ``"healthy"`` (converged without degradations),
    ``"degraded"`` (finished, but on a lower rung), or ``"abandoned"``.
    """

    detections: Dict[str, int] = field(default_factory=dict)
    rollbacks: int = 0
    retries: int = 0
    budget_spent: int = 0
    degradations: List[str] = field(default_factory=list)
    recovery_latencies: List[int] = field(default_factory=list)
    health: str = "healthy"
    final_algorithm: str = ""
    final_step_size: float = 0.0

    def summary(self) -> Dict[str, Any]:
        """JSON-safe roll-up for reports and journals."""
        return {
            "detections": {
                rule: count for rule, count in sorted(self.detections.items())
            },
            "rollbacks": self.rollbacks,
            "retries": self.retries,
            "budget_spent": self.budget_spent,
            "degradations": list(self.degradations),
            "recovery_latencies": list(self.recovery_latencies),
            "health": self.health,
            "final_algorithm": self.final_algorithm,
            "final_step_size": self.final_step_size,
        }


@dataclass
class HealRunResult:
    """Outcome of one healed run.

    ``steps`` counts every logical step executed, replays and abandoned
    attempts included — the true cost of survival.  ``corruptions``
    counts every corruption event *injected* across all attempts
    (rolled-back timelines included); ``iterations`` and ``crashes``
    describe the final surviving timeline.
    """

    x_final: np.ndarray
    report: HealReport
    steps: int
    iterations: int
    corruptions: int
    crashes: int


def _carry_segments(
    sim, checkpoint: Checkpoint, names: Sequence[str] = CARRY_SEGMENTS
) -> None:
    """Transplant named segments of a checkpoint into a fresh simulator.

    Driver-level pokes (unlogged, no logical time) — legal because the
    target is fresh and the segments sit at the same addresses in every
    zoo variant (allocated first by ``build_zoo_simulation``).
    """
    for name in names:
        seg = sim.memory.segment(name)
        if seg.base + seg.length > len(checkpoint.memory_values):
            raise ConfigurationError(
                f"checkpoint image too small to carry segment {name!r}"
            )
        for offset in range(seg.length):
            address = seg.base + offset
            sim.memory.poke(address, checkpoint.memory_values[address])


def run_with_healing(
    algorithm: str,
    objective,
    fault_spec: FaultSpec,
    adversary: str = "random",
    num_threads: int = 4,
    step_size: float = 0.05,
    iterations: int = 200,
    x0: Optional[np.ndarray] = None,
    seed: int = 0,
    policy: Optional[HealPolicy] = None,
    detectors: Optional[Sequence[HealthDetector]] = None,
    metrics: Optional[Any] = None,
) -> HealRunResult:
    """Run ``algorithm`` under ``fault_spec`` with the healing ladder on.

    Deterministic given the arguments: the schedule, the corruption
    pattern, every detection, rollback and degradation — and therefore
    the final model — are pure functions of the config, which is what
    lets E14 journal, resume and byte-compare healed runs.

    ``metrics`` (a :class:`~repro.obs.registry.MetricsRegistry`) gets
    per-event ``repro_heal_*`` counters and the recovery-latency
    histogram; pass ``None`` for zero overhead.
    """
    policy = policy if policy is not None else HealPolicy()
    suite = DetectorSuite(
        detectors if detectors is not None else default_detectors(objective)
    )
    report = HealReport(final_algorithm=algorithm, final_step_size=step_size)

    from repro.obs.registry import live_registry

    registry = live_registry(metrics)
    m_detections = m_rollbacks = m_degradations = h_latency = None
    if registry is not None:
        m_detections = registry.counter(
            "repro_heal_detections_total", "health detector firings"
        )
        m_rollbacks = registry.counter(
            "repro_heal_rollbacks_total", "checkpoint rollbacks performed"
        )
        m_degradations = registry.counter(
            "repro_heal_degradations_total", "ladder degradations taken"
        )
        h_latency = registry.histogram(
            "repro_heal_recovery_latency_steps",
            buckets=LATENCY_BUCKETS,
            help="logical steps between restored cut and detection",
        )

    # Mutable lineage configuration, read by the closures below.
    current_algorithm = algorithm
    current_step = step_size
    shrinks = 0
    windows: List[Tuple[int, int]] = []
    lineage_carry: Optional[Checkpoint] = None

    def make_engine():
        engine = fault_spec.build(
            build_scheduler(adversary, seed=seed),
            seed=seed,
            num_threads=num_threads,
        )
        engine.set_suppression(windows)
        if registry is not None:
            engine.attach_metrics(metrics)
        return engine

    def build_sim(scheduler):
        sim, _, _ = build_zoo_simulation(
            get_algorithm(current_algorithm),
            objective,
            scheduler,
            num_threads=num_threads,
            step_size=current_step,
            iterations=iterations,
            x0=x0,
            seed=seed,
        )
        if lineage_carry is not None:
            _carry_segments(sim, lineage_carry)
        return sim

    def fresh_lineage():
        engine = make_engine()
        sim = build_sim(RecordingScheduler(engine))
        return sim, engine

    sim, engine = fresh_lineage()
    suite.attach(sim)
    healthy = Checkpoint.capture(sim, label="initial")
    anchor = healthy  # lineage t=0 fallback if the retained cut is damaged
    suite.observe_checkpoint(healthy)

    total_steps = 0
    consecutive = 0
    budget = policy.retry_budget
    # Injected-corruption accounting across timelines: replayed prefix
    # corruptions re-fire on every restore, so count only the *delta*
    # past each engine's post-restore baseline.
    corruption_baseline = engine.corruptions
    corruptions_injected = 0
    # Each rebuilt engine re-arms its own per-timeline max_corruptions,
    # so the plan's cap is additionally enforced here at session level:
    # once the injected total reaches it, disarm windows turn permanent.
    caps = [
        spec.max_corruptions
        for spec in fault_spec.injectors
        if isinstance(spec, CORRUPTION_SPECS)
    ]
    session_cap = sum(caps) if caps and None not in caps else None

    while True:
        total_steps += sim.run_fast(max_steps=policy.check_interval)
        corruptions_injected += max(0, engine.corruptions - corruption_baseline)
        corruption_baseline = engine.corruptions
        if total_steps > policy.max_total_steps:
            report.health = "abandoned"
            report.degradations.append("step-limit")
            break
        findings = suite.check(sim)
        if not findings:
            consecutive = 0
            healthy = Checkpoint.capture(sim, label=f"t={sim.now}")
            suite.observe_checkpoint(healthy)
            if sim.runnable_count == 0:
                break
            continue

        # --- incident ------------------------------------------------
        for finding in findings:
            report.detections[finding.rule] = (
                report.detections.get(finding.rule, 0) + 1
            )
            if m_detections is not None:
                m_detections.inc()
        if any(f.rule == CheckpointDigestDetector.rule for f in findings):
            # The retained cut itself is damaged: never restore it.
            healthy = anchor
            suite.observe_checkpoint(healthy)
        latency = max(0, sim.now - healthy.time)
        report.recovery_latencies.append(latency)
        if h_latency is not None:
            h_latency.observe(latency)

        cost = 1 << consecutive  # exponential backoff in budget units
        if cost <= budget:
            # L0: rollback + suppressed retry.
            budget -= cost
            report.budget_spent += cost
            consecutive += 1
            report.rollbacks += 1
            report.retries += 1
            if m_rollbacks is not None:
                m_rollbacks.inc()
            disarm_until = (
                healthy.time + policy.disarm_chunks * policy.check_interval
            )
            if session_cap is not None and corruptions_injected >= session_cap:
                disarm_until = policy.max_total_steps + 1
            windows.append((healthy.time, disarm_until))
            engine = make_engine()
            sim = healthy.restore_by_replay(build_sim, engine)
            suite.on_rollback(sim)
            corruption_baseline = engine.corruptions
            continue

        # --- budget exhausted: climb the ladder ----------------------
        if shrinks < policy.max_step_shrinks:
            shrinks += 1
            current_step *= policy.step_shrink
            report.degradations.append(f"shrink-step({current_step:g})")
        elif current_algorithm != policy.fallback_algorithm:
            current_algorithm = policy.fallback_algorithm
            report.degradations.append(f"fallback({current_algorithm})")
        else:
            report.health = "abandoned"
            break
        report.health = "degraded"
        if m_degradations is not None:
            m_degradations.inc()
        budget = policy.retry_budget
        consecutive = 0
        lineage_carry = healthy
        restart_disarm = policy.disarm_chunks * policy.check_interval
        if session_cap is not None and corruptions_injected >= session_cap:
            restart_disarm = policy.max_total_steps + 1
        windows = [(0, restart_disarm)]
        sim, engine = fresh_lineage()
        corruption_baseline = engine.corruptions
        suite.attach(sim)
        suite.on_rollback(sim)
        healthy = Checkpoint.capture(
            sim, label=f"degraded:{len(report.degradations)}"
        )
        anchor = healthy
        suite.observe_checkpoint(healthy)

    seg = sim.memory.segment("model")
    x_final = np.asarray(
        sim.memory.peek_range(seg.base, seg.length), dtype=float
    )
    report.final_algorithm = current_algorithm
    report.final_step_size = current_step
    iterations_done = sum(
        1 for event in sim.trace if isinstance(event, IterationRecord)
    )
    return HealRunResult(
        x_final=x_final,
        report=report,
        steps=total_steps,
        iterations=iterations_done,
        corruptions=corruptions_injected,
        crashes=sim.crashed_count,
    )
