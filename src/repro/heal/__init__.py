"""Self-healing execution: detect silent data corruption, roll back, retry.

The fault DSL can now *corrupt values* (bit flips, NaN/Inf poison,
duplicated/dropped writes — :mod:`repro.faults.spec`); this package is
the response.  :mod:`repro.heal.detectors` holds read-only health
detectors fed at the same chunk boundaries the sanitizer uses, and
:mod:`repro.heal.rollback` holds the checkpoint-rollback retry ladder
that turns a detection into a recovery: replay-restore the last healthy
cut, retry the chunk with exponential backoff on a retry budget, then
degrade — shrink the step size, fall back to a safer algorithm variant,
and only then abandon with a structured :class:`HealReport`.  It is the
WD001–WD003 watchdog ladder transplanted to the numerical layer.
"""

from repro.heal.detectors import (
    CheckpointDigestDetector,
    DetectorSuite,
    GradientNormDetector,
    HealthDetector,
    LossDivergenceDetector,
    NanGuardDetector,
    default_detectors,
)
from repro.heal.rollback import (
    HealPolicy,
    HealReport,
    HealRunResult,
    run_with_healing,
)

__all__ = [
    "CheckpointDigestDetector",
    "DetectorSuite",
    "GradientNormDetector",
    "HealthDetector",
    "LossDivergenceDetector",
    "NanGuardDetector",
    "default_detectors",
    "HealPolicy",
    "HealReport",
    "HealRunResult",
    "run_with_healing",
]
