"""The Theorem 6.5 auxiliary process V_t, evaluated on real traces.

The proof of Theorem 6.5 builds, from the sequential rate supermartingale
W_t, the process (Eq. 15)

    V_t = W_t − α²HLMC√d·t
          + αHL√d · Σ_{k=1}^{t} ‖x_{t−k+1} − x_{t−k}‖ · Σ_{m=k}^{∞} 1{τ_{t−k+m} ≥ m}

(frozen once the algorithm succeeds) and shows it is a supermartingale
for the *lock-free* process with V_T ≥ T·(1 − α²HLMC√d) on failure —
which is where the final bound comes from.

This module computes V_t along an actual execution's accumulator
trajectory and delay sequence, so the proof's central objects can be
inspected and its deterministic consequences checked on real runs:

* V_0 = W_0;
* on runs that have not succeeded by T, V_T ≥ T·(1 − α²HLMC√d);
* the correction term is non-negative, so V_t ≥ W_t − α²HLMC√d·t always.

(The supermartingale *drift* of V is a statement in expectation over the
oracle; checking it needs ensembles and is intentionally out of scope —
the drift of the sequential W is already Monte-Carlo-verified in
:mod:`repro.theory.martingale`.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.events import IterationRecord
from repro.theory.contention import delay_sequence, tau_max, thread_count
from repro.theory.martingale import ConvexRateSupermartingale


@dataclass
class AsyncProcessTrace:
    """V_t (and its ingredients) along one execution.

    Attributes:
        v: V_t for t = 0..T (length T+1).
        w: W_t for t = 0..T.
        correction: The αHL√d·ΣΣ term per t (non-negative).
        discount: 1 − α²HLMC√d (must be positive for Thm 6.5 to apply).
        hit_time: First t with x_t in the success region, or None.
    """

    v: np.ndarray
    w: np.ndarray
    correction: np.ndarray
    discount: float
    hit_time: object

    def failure_lower_bound_holds(self) -> bool:
        """On failure (no hit), the proof guarantees
        V_T ≥ T·(1 − α²HLMC√d); trivially true on success (frozen)."""
        if self.hit_time is not None:
            return True
        T = len(self.v) - 1
        return bool(self.v[-1] >= T * self.discount - 1e-9)


def evaluate_async_process(
    records: Sequence[IterationRecord],
    trajectory: np.ndarray,
    process: ConvexRateSupermartingale,
    lipschitz: float,
) -> AsyncProcessTrace:
    """Compute V_t along a finished run.

    Args:
        records: The run's iteration records (any order; sorted here).
        trajectory: The accumulator trajectory x_0..x_T (shape (T+1, d)),
            e.g. :func:`repro.core.results.accumulator_trajectory`.
        process: The sequential rate supermartingale W (provides α, H,
            the success region and W_t values).
        lipschitz: The oracle's expected-Lipschitz constant L.

    Returns:
        An :class:`AsyncProcessTrace`.
    """
    ordered = sorted(records, key=lambda r: r.order_time)
    T = len(ordered)
    if trajectory.shape[0] != T + 1:
        raise ConfigurationError(
            f"trajectory has {trajectory.shape[0]} rows for {T} iterations"
        )
    dim = trajectory.shape[1]
    alpha = process.alpha
    H = process.lipschitz_constant
    n = max(1, thread_count(ordered))
    measured_tau_max = max(1, tau_max(ordered))
    contention_C = 2.0 * math.sqrt(measured_tau_max * n)
    discount = 1.0 - alpha**2 * H * lipschitz * math.sqrt(
        process.second_moment
    ) * contention_C * math.sqrt(dim)

    delays = delay_sequence(ordered)  # tau_t for t = 1..T (0-indexed)
    step_norms = np.linalg.norm(np.diff(trajectory, axis=0), axis=1)

    # indicator_sum[k] for a given t: sum_{m=k}^{inf} 1{tau_{t-k+m} >= m}.
    # Precompute via suffix logic per t (T is small in analysis contexts).
    hit_time = None
    w_values = np.empty(T + 1)
    v_values = np.empty(T + 1)
    corrections = np.empty(T + 1)
    frozen_at = None
    for t in range(T + 1):
        x_t = trajectory[t]
        if frozen_at is None and process.in_success_region(x_t):
            frozen_at = t
            hit_time = t
        if frozen_at is not None and t > frozen_at:
            w_values[t] = w_values[frozen_at]
            v_values[t] = v_values[frozen_at]
            corrections[t] = corrections[frozen_at]
            continue
        w_values[t] = process.value(t, x_t)
        correction = 0.0
        for k in range(1, t + 1):
            # sum over m >= k of 1{tau_{t-k+m} >= m}; index into delays
            # (delays[j] is tau_{j+1} in 1-based iteration time).
            inner = 0
            for m in range(k, measured_tau_max + 1):
                j = t - k + m  # 1-based iteration whose delay we need
                if 1 <= j <= T and delays[j - 1] >= m:
                    inner += 1
            if inner == 0:
                continue
            correction += step_norms[t - k] * inner
        corrections[t] = (
            alpha * H * lipschitz * math.sqrt(dim) * correction
        )
        v_values[t] = (
            w_values[t]
            - alpha**2
            * H
            * lipschitz
            * math.sqrt(process.second_moment)
            * contention_C
            * math.sqrt(dim)
            * t
            + corrections[t]
        )
    return AsyncProcessTrace(
        v=v_values,
        w=w_values,
        correction=corrections,
        discount=discount,
        hit_time=hit_time,
    )
