"""Analytic machinery: the paper's bounds, computable.

* :mod:`repro.theory.plog` — the piecewise logarithm used throughout.
* :mod:`repro.theory.martingale` — the rate supermartingale W_t of
  Lemma 6.6 and an empirical supermartingale-property checker.
* :mod:`repro.theory.bounds` — evaluators for Theorem 3.1 (sequential),
  Theorem 6.3 (NIPS'15 linear-in-τ), Theorem 6.5 and Corollary 6.7 (this
  paper's √(τ_max·n)), plus their prescribed step sizes.
* :mod:`repro.theory.lower_bound` — Theorem 5.1's adversarial-delay
  calculus (required delay, slowdown factor, attack variance).
* :mod:`repro.theory.contention` — interval contention ρ(θ), τ_max,
  τ_avg, the Lemma 6.2 good/bad structure and Lemma 6.4 indicator sums,
  all measured from execution traces.
* :mod:`repro.theory.assumptions` — numerical certification of the
  analytic assumptions (strong convexity, expected Lipschitzness, second
  moment, oracle unbiasedness) for any objective.
"""

from repro.theory.plog import plog
from repro.theory.martingale import ConvexRateSupermartingale, estimate_drift
from repro.theory.async_martingale import AsyncProcessTrace, evaluate_async_process
from repro.theory.bounds import (
    contention_constant,
    corollary_6_7_failure_bound,
    corollary_6_7_step_size,
    slowdown_versus_sequential,
    theorem_3_1_failure_bound,
    theorem_3_1_step_size,
    theorem_6_3_failure_bound,
    theorem_6_3_step_size,
    theorem_6_5_failure_bound,
    theorem_6_5_precondition,
)
from repro.theory.lower_bound import (
    adversarial_contraction,
    attack_variance,
    required_delay,
    sequential_contraction,
    slowdown_factor,
)
from repro.theory.contention import (
    delay_sequence,
    interval_contention,
    lemma_6_2_violations,
    lemma_6_4_sums,
    tau_avg,
    tau_max,
)
from repro.theory.assumptions import AssumptionReport, certify_objective

__all__ = [
    "plog",
    "ConvexRateSupermartingale",
    "estimate_drift",
    "AsyncProcessTrace",
    "evaluate_async_process",
    "theorem_3_1_step_size",
    "theorem_3_1_failure_bound",
    "theorem_6_3_step_size",
    "theorem_6_3_failure_bound",
    "contention_constant",
    "corollary_6_7_step_size",
    "corollary_6_7_failure_bound",
    "theorem_6_5_precondition",
    "theorem_6_5_failure_bound",
    "slowdown_versus_sequential",
    "required_delay",
    "slowdown_factor",
    "adversarial_contraction",
    "sequential_contraction",
    "attack_variance",
    "interval_contention",
    "tau_max",
    "tau_avg",
    "delay_sequence",
    "lemma_6_2_violations",
    "lemma_6_4_sums",
    "AssumptionReport",
    "certify_objective",
]
