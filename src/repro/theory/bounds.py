"""Evaluators for every convergence bound in the paper.

All functions take the analytic constants explicitly (c, L, M, d, ...)
so they can be driven either from an :class:`~repro.objectives.base.
Objective`'s certified constants or from synthetic sweeps.  Conventions:

* ``second_moment`` is M² (squared); ``gradient_bound`` is M.
* ``epsilon`` is the success-region radius **squared** (S = {x : ‖x−x*‖²
  ≤ ε}), matching the paper.
* ``vartheta`` is the ϑ ∈ (0, 1] knob trading step size for bound
  tightness; ϑ = 1 minimizes every upper bound.
* Failure probabilities are truncated to [0, 1] — the formulas exceed 1
  for small T, where they are vacuous.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.theory.plog import plog


def _check_positive(**kwargs: float) -> None:
    for name, value in kwargs.items():
        if value <= 0:
            raise ConfigurationError(f"{name} must be > 0, got {value}")


def _failure(numerator: float, c: float, epsilon: float, vartheta: float,
             iterations: float, x0_distance: float) -> float:
    bound = (
        numerator
        / (c**2 * epsilon * vartheta * iterations)
        * plog(math.e * x0_distance**2 / epsilon)
    )
    return min(1.0, max(0.0, bound))


# ----------------------------------------------------------------------
# Theorem 3.1 — sequential SGD (De Sa et al. martingale bound)
# ----------------------------------------------------------------------
def theorem_3_1_step_size(
    strong_convexity: float, second_moment: float, epsilon: float,
    vartheta: float = 1.0,
) -> float:
    """α = cεϑ/M² — the sequential prescription."""
    _check_positive(
        strong_convexity=strong_convexity,
        second_moment=second_moment,
        epsilon=epsilon,
        vartheta=vartheta,
    )
    return strong_convexity * epsilon * vartheta / second_moment


def theorem_3_1_failure_bound(
    iterations: int,
    epsilon: float,
    strong_convexity: float,
    second_moment: float,
    x0_distance: float,
    vartheta: float = 1.0,
) -> float:
    """P(F_T) ≤ M²/(c²εϑT) · log(e‖x₀−x*‖²/ε) for sequential SGD."""
    _check_positive(
        iterations=iterations,
        epsilon=epsilon,
        strong_convexity=strong_convexity,
        second_moment=second_moment,
        vartheta=vartheta,
    )
    return _failure(
        second_moment, strong_convexity, epsilon, vartheta, iterations, x0_distance
    )


# ----------------------------------------------------------------------
# Theorem 6.3 — the NIPS'15 asynchronous bound (linear in τ)
# ----------------------------------------------------------------------
def theorem_6_3_step_size(
    strong_convexity: float,
    second_moment: float,
    lipschitz: float,
    tau: float,
    epsilon: float,
    vartheta: float = 1.0,
) -> float:
    """α = cεϑ/(M² + 2LMτ√ε) — prior work's prescription, with the
    *linear* τ penalty in the denominator."""
    _check_positive(
        strong_convexity=strong_convexity,
        second_moment=second_moment,
        lipschitz=lipschitz,
        epsilon=epsilon,
        vartheta=vartheta,
    )
    if tau < 0:
        raise ConfigurationError(f"tau must be >= 0, got {tau}")
    gradient_bound = math.sqrt(second_moment)
    denominator = second_moment + 2.0 * lipschitz * gradient_bound * tau * math.sqrt(
        epsilon
    )
    return strong_convexity * epsilon * vartheta / denominator


def theorem_6_3_failure_bound(
    iterations: int,
    epsilon: float,
    strong_convexity: float,
    second_moment: float,
    lipschitz: float,
    tau: float,
    x0_distance: float,
    vartheta: float = 1.0,
) -> float:
    """P(F_T) ≤ (M² + 2LMτ√ε)/(c²εϑT) · log(e‖x₀−x*‖²/ε)."""
    _check_positive(
        iterations=iterations,
        epsilon=epsilon,
        strong_convexity=strong_convexity,
        second_moment=second_moment,
        lipschitz=lipschitz,
        vartheta=vartheta,
    )
    if tau < 0:
        raise ConfigurationError(f"tau must be >= 0, got {tau}")
    gradient_bound = math.sqrt(second_moment)
    numerator = second_moment + 2.0 * lipschitz * gradient_bound * tau * math.sqrt(
        epsilon
    )
    return _failure(
        numerator, strong_convexity, epsilon, vartheta, iterations, x0_distance
    )


# ----------------------------------------------------------------------
# This paper: Theorem 6.5 and Corollary 6.7 — the √(τ_max·n) bound
# ----------------------------------------------------------------------
def contention_constant(tau_max: float, num_threads: int) -> float:
    """C = 2√(τ_max·n), the Lemma 6.4 constant."""
    if tau_max < 0:
        raise ConfigurationError(f"tau_max must be >= 0, got {tau_max}")
    if num_threads < 1:
        raise ConfigurationError(f"num_threads must be >= 1, got {num_threads}")
    return 2.0 * math.sqrt(tau_max * num_threads)


def theorem_6_5_precondition(
    alpha: float,
    lipschitz_H: float,
    lipschitz: float,
    gradient_bound: float,
    contention: float,
    dim: int,
) -> bool:
    """The Theorem 6.5 requirement α²·H·L·M·C·√d < 1."""
    return (
        alpha**2
        * lipschitz_H
        * lipschitz
        * gradient_bound
        * contention
        * math.sqrt(dim)
        < 1.0
    )


def theorem_6_5_failure_bound(
    iterations: int,
    initial_value: float,
    alpha: float,
    lipschitz_H: float,
    lipschitz: float,
    gradient_bound: float,
    contention: float,
    dim: int,
) -> float:
    """P(F_T) ≤ E[W₀(x₀)] / ((1 − α²HLMC√d)·T).

    Args:
        iterations: T.
        initial_value: E[W₀(x₀)] (use
            :meth:`ConvexRateSupermartingale.initial_value_bound`).
        alpha: Step size.
        lipschitz_H: The martingale's H.
        lipschitz: L (oracle expected-Lipschitz).
        gradient_bound: M (not squared).
        contention: C = 2√(τ_max·n).
        dim: Model dimension d.
    """
    _check_positive(iterations=iterations)
    discount = 1.0 - (
        alpha**2
        * lipschitz_H
        * lipschitz
        * gradient_bound
        * contention
        * math.sqrt(dim)
    )
    if discount <= 0:
        raise ConfigurationError(
            "Theorem 6.5 precondition violated: alpha^2*H*L*M*C*sqrt(d) >= 1"
        )
    return min(1.0, max(0.0, initial_value / (discount * iterations)))


def corollary_6_7_step_size(
    strong_convexity: float,
    second_moment: float,
    lipschitz: float,
    tau_max: float,
    num_threads: int,
    dim: int,
    epsilon: float,
    vartheta: float = 1.0,
) -> float:
    """α = cεϑ/(M² + 4√ε·L·M·√(τ_max·n)·√d) — Eq. (12), the paper's
    prescription with the √(τ_max·n) penalty."""
    _check_positive(
        strong_convexity=strong_convexity,
        second_moment=second_moment,
        lipschitz=lipschitz,
        epsilon=epsilon,
        vartheta=vartheta,
    )
    gradient_bound = math.sqrt(second_moment)
    contention = contention_constant(tau_max, num_threads)
    denominator = second_moment + 2.0 * math.sqrt(
        epsilon
    ) * lipschitz * gradient_bound * contention * math.sqrt(dim)
    return strong_convexity * epsilon * vartheta / denominator


def corollary_6_7_failure_bound(
    iterations: int,
    epsilon: float,
    strong_convexity: float,
    second_moment: float,
    lipschitz: float,
    tau_max: float,
    num_threads: int,
    dim: int,
    x0_distance: float,
    vartheta: float = 1.0,
) -> float:
    """P(F_T) ≤ (M² + 4√ε·L·M·√(τ_max·n)·√d)/(c²εϑT) · plog(e‖x₀−x*‖²/ε)
    — Eq. (13), the paper's headline upper bound."""
    _check_positive(
        iterations=iterations,
        epsilon=epsilon,
        strong_convexity=strong_convexity,
        second_moment=second_moment,
        lipschitz=lipschitz,
        vartheta=vartheta,
    )
    gradient_bound = math.sqrt(second_moment)
    numerator = second_moment + 4.0 * math.sqrt(
        epsilon
    ) * lipschitz * gradient_bound * math.sqrt(tau_max * num_threads) * math.sqrt(dim)
    return _failure(
        numerator, strong_convexity, epsilon, vartheta, iterations, x0_distance
    )


def slowdown_versus_sequential(
    epsilon: float,
    second_moment: float,
    lipschitz: float,
    tau_max: float,
    num_threads: int,
    dim: int,
) -> float:
    """The paper's "price of asynchrony": the factor by which the
    Corollary 6.7 bound exceeds the sequential Theorem 3.1 bound,

        (M² + 4√ε·L·M·√(τ_max·n)·√d) / M²,

    i.e. 1 + O(√(τ_max·n)) — the sub-linear headline."""
    _check_positive(
        epsilon=epsilon, second_moment=second_moment, lipschitz=lipschitz
    )
    gradient_bound = math.sqrt(second_moment)
    extra = (
        4.0
        * math.sqrt(epsilon)
        * lipschitz
        * gradient_bound
        * math.sqrt(tau_max * num_threads)
        * math.sqrt(dim)
    )
    return (second_moment + extra) / second_moment
