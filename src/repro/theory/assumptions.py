"""Numerical certification of the paper's analytic assumptions.

The bounds only hold for objectives satisfying Section 3's assumptions.
Rather than trusting each objective's hand-derived constants, these
verifiers sample the conditions directly:

* strong convexity (Eq. 2): (x−y)ᵀ(∇f(x)−∇f(y)) ≥ c‖x−y‖²;
* expected Lipschitzness of the oracle (Eq. 3), with g̃ coupled at the
  same sample: E‖g̃_ω(x) − g̃_ω(y)‖ ≤ L‖x−y‖;
* second-moment bound (Eq. 4): E‖g̃(x)‖² ≤ M² on the operating ball;
* oracle unbiasedness: E[g̃(x)] = ∇f(x).

:func:`certify_objective` runs all four and returns a report; the test
suite certifies every shipped objective this way.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import AssumptionViolationError
from repro.objectives.base import Objective
from repro.runtime.rng import RngStream


@dataclass
class AssumptionReport:
    """Outcome of certifying one objective.

    Margins are "how much slack the worst sampled case had"; negative
    margins (beyond tolerance) mean the assumption failed.
    """

    objective: str
    radius: float
    strong_convexity_margin: float
    lipschitz_margin: float
    second_moment_margin: float
    unbiasedness_error: float
    ok: bool

    def raise_if_failed(self) -> None:
        """Raise :class:`AssumptionViolationError` when not ``ok``."""
        if not self.ok:
            raise AssumptionViolationError(
                f"{self.objective}: assumption certification failed "
                f"(margins: c={self.strong_convexity_margin:.3g}, "
                f"L={self.lipschitz_margin:.3g}, "
                f"M2={self.second_moment_margin:.3g}, "
                f"bias={self.unbiasedness_error:.3g})"
            )


def _points_on_ball(
    rng: RngStream, center: np.ndarray, radius: float, count: int
) -> np.ndarray:
    """Sample points uniformly-ish inside the ball of ``radius`` around
    ``center`` (Gaussian direction, uniform-in-radius scaling)."""
    dim = center.size
    directions = rng.normal(size=(count, dim))
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    radii = radius * rng.uniform(size=(count, 1)) ** (1.0 / dim)
    return center + directions / norms * radii


def verify_strong_convexity(
    objective: Objective,
    radius: float,
    trials: int = 200,
    seed: int = 0,
    rel_tol: float = 1e-7,
) -> float:
    """Worst-case margin of (x−y)ᵀ(∇f(x)−∇f(y)) − c‖x−y‖² over sampled
    pairs inside the operating ball (should be ≥ −tol·scale)."""
    rng = RngStream.root(seed)
    c = objective.strong_convexity
    xs = _points_on_ball(rng, objective.x_star, radius, trials)
    ys = _points_on_ball(rng, objective.x_star, radius, trials)
    worst = np.inf
    for x, y in zip(xs, ys):
        gap = x - y
        norm_sq = float(gap @ gap)
        if norm_sq < 1e-16:
            continue
        inner = float(gap @ (objective.gradient(x) - objective.gradient(y)))
        margin = (inner - c * norm_sq) / max(norm_sq, rel_tol)
        worst = min(worst, margin)
    return float(worst) if np.isfinite(worst) else 0.0


def verify_expected_lipschitz(
    objective: Objective,
    radius: float,
    trials: int = 50,
    samples_per_pair: int = 200,
    seed: int = 1,
) -> float:
    """Worst-case margin of L‖x−y‖ − Ê‖g̃_ω(x) − g̃_ω(y)‖ (normalized by
    ‖x−y‖) over sampled pairs, with the oracle coupled at the same ω."""
    rng = RngStream.root(seed)
    lipschitz = objective.lipschitz_expected
    xs = _points_on_ball(rng, objective.x_star, radius, trials)
    ys = _points_on_ball(rng, objective.x_star, radius, trials)
    worst = np.inf
    for x, y in zip(xs, ys):
        gap_norm = float(np.linalg.norm(x - y))
        if gap_norm < 1e-12:
            continue
        norms = np.empty(samples_per_pair)
        for k in range(samples_per_pair):
            sample = objective.draw_sample(rng)
            norms[k] = np.linalg.norm(
                objective.grad_at_sample(x, sample)
                - objective.grad_at_sample(y, sample)
            )
        estimate = float(norms.mean())
        # The assumption is about the true expectation; discount the
        # estimate by 3 standard errors so Monte-Carlo noise of
        # high-variance oracles (e.g. 1-sparse gradients) cannot produce
        # spurious violations.
        stderr = float(norms.std(ddof=1)) / math.sqrt(samples_per_pair)
        statistically_safe = max(0.0, estimate - 3.0 * stderr)
        worst = min(worst, (lipschitz * gap_norm - statistically_safe) / gap_norm)
    return float(worst) if np.isfinite(worst) else 0.0


def verify_second_moment(
    objective: Objective,
    radius: float,
    trials: int = 50,
    samples_per_point: int = 200,
    seed: int = 2,
) -> float:
    """Worst-case margin of M²(radius) − Ê‖g̃(x)‖² (normalized by M²)
    over sampled points inside the operating ball."""
    rng = RngStream.root(seed)
    bound = objective.second_moment_bound(radius)
    xs = _points_on_ball(rng, objective.x_star, radius, trials)
    worst = np.inf
    for x in xs:
        total = 0.0
        for _ in range(samples_per_point):
            gradient, _ = objective.stochastic_gradient(x, rng)
            total += float(gradient @ gradient)
        estimate = total / samples_per_point
        worst = min(worst, (bound - estimate) / max(bound, 1e-12))
    return float(worst) if np.isfinite(worst) else 0.0


def verify_unbiasedness(
    objective: Objective,
    radius: float,
    trials: int = 10,
    samples_per_point: int = 4000,
    seed: int = 3,
) -> float:
    """Largest ‖Ê[g̃(x)] − ∇f(x)‖ over sampled points (should be CLT
    noise: O(√(M²/samples)))."""
    rng = RngStream.root(seed)
    xs = _points_on_ball(rng, objective.x_star, radius, trials)
    worst = 0.0
    for x in xs:
        total = np.zeros(objective.dim)
        for _ in range(samples_per_point):
            gradient, _ = objective.stochastic_gradient(x, rng)
            total += gradient
        error = float(np.linalg.norm(total / samples_per_point - objective.gradient(x)))
        worst = max(worst, error)
    return worst


def certify_objective(
    objective: Objective,
    radius: float,
    seed: int = 0,
    bias_tolerance: Optional[float] = None,
    margin_tolerance: float = 0.05,
) -> AssumptionReport:
    """Run all four verifiers and assemble an :class:`AssumptionReport`.

    Args:
        objective: The objective to certify.
        radius: Operating-ball radius (certification is local to it).
        seed: Root seed for all samplers.
        bias_tolerance: Allowed ‖Ê[g̃] − ∇f‖; default scales with the
            objective's √(M²/4000) CLT noise times a safety factor.
        margin_tolerance: Allowed negative slack on the three margin
            checks (absorbs Monte-Carlo noise).
    """
    c_margin = verify_strong_convexity(objective, radius, seed=seed)
    l_margin = verify_expected_lipschitz(objective, radius, seed=seed + 1)
    m_margin = verify_second_moment(objective, radius, seed=seed + 2)
    bias = verify_unbiasedness(objective, radius, seed=seed + 3)
    if bias_tolerance is None:
        noise_scale = np.sqrt(objective.second_moment_bound(radius) / 4000.0)
        bias_tolerance = 6.0 * float(noise_scale) + 1e-9
    ok = (
        c_margin >= -margin_tolerance
        and l_margin >= -margin_tolerance
        and m_margin >= -margin_tolerance
        and bias <= bias_tolerance
    )
    return AssumptionReport(
        objective=repr(objective),
        radius=radius,
        strong_convexity_margin=c_margin,
        lipschitz_margin=l_margin,
        second_moment_margin=m_margin,
        unbiasedness_error=bias,
        ok=ok,
    )
