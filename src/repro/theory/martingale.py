"""The rate supermartingale of Lemma 6.6 and empirical drift checks.

For sequential SGD on a c-strongly-convex f with second-moment bound M²
and step size α < 2cε/M², the process

    W_t = ε/(2αcε − α²M²) · plog(‖x_t − x*‖²/ε) + t      (while not succeeded)

is a *rate supermartingale* with horizon ∞ (Definition 6.1): it has
non-positive expected drift under one SGD step, and W_T ≥ T whenever the
algorithm has not yet hit the success region.  It is H-Lipschitz in the
current iterate with H = 2√ε·(2αcε − α²M²)⁻¹.  Theorem 6.5 turns exactly
these three facts into the asynchronous convergence bound.

Note on the normalizer: the arXiv text prints the denominator as
"2αc − α²M²", but dimensional analysis and consistency with the
Theorem 3.1 bound (whose proof plugs α = cεϑ/M² into E[W₀]/T and lands
on M²/(c²εϑT)) require 2αcε − α²M², matching the original construction
in De Sa et al. (NIPS'15).  With the printed version the drift is
positive for ε < 1 — our Monte-Carlo drift checker
(:func:`estimate_drift`) catches exactly that, which is how the typo was
confirmed; see also the gradient-inequality derivation:
E[plog(‖x−αg̃‖²/ε)] ≤ plog(‖x‖²/ε) − (2αcε − α²M²)/ε · 1/‖x‖² · ... ≤
plog(‖x‖²/ε) − (2αcε − α²M²)/ε outside S.

:func:`estimate_drift` verifies the supermartingale inequality by Monte
Carlo at arbitrary points — the tests use it to certify the construction
against our actual oracles rather than trusting the algebra.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.objectives.base import Objective
from repro.runtime.rng import RngStream
from repro.theory.plog import plog


class ConvexRateSupermartingale:
    """W_t for convex SGD (Lemma 6.6).

    Args:
        epsilon: Success-region radius² ε.
        alpha: Step size α; must satisfy α < 2cε/M² so the normalizer
            2αcε − α²M² is positive.
        strong_convexity: c.
        second_moment: M² (note: the *squared* bound).
        x_star: The optimum (needed to evaluate ‖x_t − x*‖).
    """

    def __init__(
        self,
        epsilon: float,
        alpha: float,
        strong_convexity: float,
        second_moment: float,
        x_star: np.ndarray,
    ) -> None:
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be > 0, got {epsilon}")
        if alpha <= 0:
            raise ConfigurationError(f"alpha must be > 0, got {alpha}")
        normalizer = (
            2.0 * alpha * strong_convexity * epsilon - alpha**2 * second_moment
        )
        if normalizer <= 0:
            raise ConfigurationError(
                f"need alpha < 2c*eps/M^2 = "
                f"{2.0 * strong_convexity * epsilon / second_moment:.6g} for "
                f"the supermartingale to exist, got alpha = {alpha}"
            )
        self.epsilon = epsilon
        self.alpha = alpha
        self.strong_convexity = strong_convexity
        self.second_moment = second_moment
        self.x_star = np.asarray(x_star, dtype=float)
        self._normalizer = normalizer

    @property
    def horizon(self) -> float:
        """B = ∞ for this construction."""
        return math.inf

    @property
    def lipschitz_constant(self) -> float:
        """H = 2√ε·(2αcε − α²M²)⁻¹ (Lipschitz in the current iterate)."""
        return 2.0 * math.sqrt(self.epsilon) / self._normalizer

    def value(self, t: int, x_t: np.ndarray) -> float:
        """W_t(x_t, ...) assuming the algorithm has not yet succeeded.

        (If it has, the process freezes at its pre-success value; callers
        tracking a trajectory should stop evaluating at the hit time.)
        """
        distance_sq = float(
            np.sum((np.asarray(x_t, dtype=float) - self.x_star) ** 2)
        )
        return (
            self.epsilon / self._normalizer * plog(distance_sq / self.epsilon) + t
        )

    def initial_value_bound(self, x0: np.ndarray) -> float:
        """The E[W₀(x₀)] bound used in Corollary 6.7's proof:
        ε/(2αcε − α²M²)·plog(e‖x₀ − x*‖²/ε)."""
        distance_sq = float(
            np.sum((np.asarray(x0, dtype=float) - self.x_star) ** 2)
        )
        return (
            self.epsilon
            / self._normalizer
            * plog(math.e * distance_sq / self.epsilon)
        )

    def in_success_region(self, x: np.ndarray) -> bool:
        """Whether ‖x − x*‖² ≤ ε."""
        distance_sq = float(np.sum((np.asarray(x, dtype=float) - self.x_star) ** 2))
        return distance_sq <= self.epsilon


def estimate_drift(
    process: ConvexRateSupermartingale,
    objective: Objective,
    x_t: np.ndarray,
    t: int,
    num_samples: int = 2000,
    seed: int = 0,
) -> float:
    """Monte-Carlo estimate of E[W_{t+1}(x_t − α·g̃(x_t))] − W_t(x_t).

    For points outside the success region, a correct rate supermartingale
    has non-positive drift (up to sampling error); the tests assert this
    across objectives, points and step sizes.

    Returns:
        The estimated drift (should be ≤ 0 plus CLT noise).
    """
    rng = RngStream.root(seed)
    x_t = np.asarray(x_t, dtype=float)
    current = process.value(t, x_t)
    total = 0.0
    for _ in range(num_samples):
        gradient, _ = objective.stochastic_gradient(x_t, rng)
        x_next = x_t - process.alpha * gradient
        if process.in_success_region(x_next):
            # Once in S the process freezes at the pre-success value, so
            # the contribution to W_{t+1} is the frozen W_t — drift 0 for
            # this sample.
            total += current
        else:
            total += process.value(t + 1, x_next)
    return total / num_samples - current
