"""Theorem 5.1 — the adversarial-delay lower bound, computable.

Section 5's construction: minimize f(x) = ½x² with noisy gradients
g̃(x) = x − ũ and a fixed step size α.  The adversary freezes one thread
holding a gradient generated at x₀, lets the other run τ iterations
(contracting the state to (1−α)^τ·x₀ plus noise), then merges the stale
gradient, leaving ((1−α)^τ − α)·x₀ plus noise.  Once
2·(1−α)^τ ≤ α the stale term dominates: ‖x_{τ+1}‖ ≥ (α/2)·‖x₀‖, versus
(1−α)^τ·‖x₀‖ without the adversary — a slowdown of
log((1−α)^τ)/log(α/2) = Ω(τ).

These helpers compute each quantity in that argument so the E2 benchmark
can overlay theory on measurement.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


def _check_alpha(alpha: float) -> None:
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")


def required_delay(alpha: float) -> int:
    """The smallest integer τ with 2·(1−α)^τ ≤ α — the delay the
    adversary needs before the stale gradient dominates (the τ_max of
    Theorem 5.1, up to constants)."""
    _check_alpha(alpha)
    # (1-α)^τ ≤ α/2  ⇔  τ ≥ log(α/2)/log(1−α)  (both logs negative).
    exact = math.log(alpha / 2.0) / math.log(1.0 - alpha)
    return max(1, math.ceil(exact))


def sequential_contraction(alpha: float, tau: int) -> float:
    """‖x_τ‖/‖x₀‖ = (1−α)^τ for the unattacked (noiseless) iteration."""
    _check_alpha(alpha)
    if tau < 0:
        raise ConfigurationError(f"tau must be >= 0, got {tau}")
    return (1.0 - alpha) ** tau


def adversarial_contraction(alpha: float, tau: int) -> float:
    """Lower bound on ‖x_{τ+1}‖/‖x₀‖ after the attack (noiseless case):
    |(1−α)^τ − α|, which is ≥ α/2 once 2(1−α)^τ ≤ α."""
    _check_alpha(alpha)
    if tau < 0:
        raise ConfigurationError(f"tau must be >= 0, got {tau}")
    return abs((1.0 - alpha) ** tau - alpha)


def slowdown_factor(alpha: float, tau: int) -> float:
    """The Theorem 5.1 slowdown: log((1−α)^τ) / log(α/2) = Ω(τ).

    Interpretation: per-attack-round, the unattacked algorithm makes
    τ·|log(1−α)| of log-progress while the attacked one is held to at
    most |log(α/2)| — their ratio is the factor by which convergence (in
    rounds of τ iterations) is slowed."""
    _check_alpha(alpha)
    if tau < 1:
        raise ConfigurationError(f"tau must be >= 1, got {tau}")
    return tau * math.log(1.0 - alpha) / (math.log(alpha) - math.log(2.0))


def attack_variance(alpha: float, tau: int, sigma: float) -> float:
    """Variance of the noise term of x_{τ+1} in the Section-5 analysis:

        α²σ²·(1 + (1 − (1−α)^{2τ}) / (1 − (1−α)²)).
    """
    _check_alpha(alpha)
    if tau < 0:
        raise ConfigurationError(f"tau must be >= 0, got {tau}")
    if sigma < 0:
        raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
    contraction_sq = (1.0 - alpha) ** 2
    geometric = (1.0 - contraction_sq**tau) / (1.0 - contraction_sq)
    return alpha**2 * sigma**2 * (1.0 + geometric)


def max_tolerable_delay(alpha: float) -> float:
    """The boundary the Section-8 discussion draws: delays below
    ~log(α/2)/log(1−α) leave the fixed-α algorithm's contraction
    dominant; above it the adversary wins.  Returned as the (real) root
    of 2(1−α)^τ = α."""
    _check_alpha(alpha)
    return math.log(alpha / 2.0) / math.log(1.0 - alpha)
