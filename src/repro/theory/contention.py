"""Contention analytics over execution traces.

Everything Section 6.1 defines, measured from the
:class:`~repro.runtime.events.IterationRecord` stream of a run:

* the total order on iterations by first model update (Lemma 6.1);
* interval contention ρ(θ) — the number of iterations executing
  concurrently with θ — and its extremes τ_max and τ_avg (with the
  Gibson–Gramoli sanity bound τ_avg ≤ 2n);
* the per-iteration delay sequence τ_t (how many recent iterations'
  updates the view v_t may be missing);
* Lemma 6.2's good/bad-iteration structure and Lemma 6.4's indicator
  sums Σ_m 1{τ_{t+m} ≥ m} ≤ 2√(τ_max·n) — the combinatorial facts the
  upper bound stands on, checked against real schedules.
"""

from __future__ import annotations

import bisect
import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.events import IterationRecord


def _ordered(records: Sequence[IterationRecord]) -> List[IterationRecord]:
    """Records sorted by the paper's total order (first model update)."""
    return sorted(records, key=lambda r: r.order_time)


def iteration_intervals(
    records: Sequence[IterationRecord],
) -> np.ndarray:
    """(start_time, end_time) per iteration, sorted by the total order.

    Returns an array of shape (N, 2).
    """
    ordered = _ordered(records)
    return np.array(
        [[r.start_time, r.end_time] for r in ordered], dtype=np.int64
    ).reshape(-1, 2)


def interval_contention(records: Sequence[IterationRecord]) -> np.ndarray:
    """ρ(θ) for every iteration: how many *other* iterations' [start, end]
    intervals intersect θ's.  Sorted by the total order.

    Computed in O(N log N) with sorted-boundary binary searches: the
    iterations overlapping θ are exactly those that start no later than
    θ ends and end no earlier than θ starts.
    """
    intervals = iteration_intervals(records)
    if intervals.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.sort(intervals[:, 0])
    ends = np.sort(intervals[:, 1])
    started_by_end = np.searchsorted(starts, intervals[:, 1], side="right")
    ended_before_start = np.searchsorted(ends, intervals[:, 0], side="left")
    return started_by_end - ended_before_start - 1  # exclude θ itself


def tau_max(records: Sequence[IterationRecord]) -> int:
    """The maximum interval contention over all iterations (the paper's
    τ_max).  Zero for empty or single-iteration traces."""
    contention = interval_contention(records)
    return int(contention.max()) if contention.size else 0


def tau_avg(records: Sequence[IterationRecord]) -> float:
    """The average interval contention (the paper's τ_avg; always ≤ 2n by
    Gibson–Gramoli).  Zero for empty traces."""
    contention = interval_contention(records)
    return float(contention.mean()) if contention.size else 0.0


def thread_count(records: Sequence[IterationRecord]) -> int:
    """Number of distinct threads that completed iterations."""
    return len({r.thread_id for r in records})


def delay_sequence(records: Sequence[IterationRecord]) -> np.ndarray:
    """The per-iteration delay τ_t, in the total order.

    τ_t counts the iterations k ≤ t (in the total order) whose last model
    update had not yet landed when iteration t began reading its view —
    i.e. the iterations whose updates v_t may be missing.  τ_t ≥ 1 always
    (an iteration never sees its own update), matching the paper's
    convention that v_t misses updates "from only the last τ_t
    iterations".
    """
    ordered = _ordered(records)
    delays = np.zeros(len(ordered), dtype=np.int64)
    ends_so_far: List[int] = []  # kept sorted
    for t, record in enumerate(ordered):
        bisect.insort(ends_so_far, record.end_time)
        # Iterations among the first t+1 whose end >= this read start.
        read_start = record.read_start_time
        completed_before = bisect.bisect_left(ends_so_far, read_start)
        delays[t] = (t + 1) - completed_before
    return delays


def lemma_6_2_violations(
    records: Sequence[IterationRecord],
    window_multiplier: int,
    num_threads: int,
    stride: int = 0,
) -> List[Tuple[int, int]]:
    """Check Lemma 6.2 on a real trace.

    For every window of K·n consecutive iteration *starts* (K =
    ``window_multiplier``), count the iterations that are *bad* — more
    than K·n iterations start between their start and end — and that
    complete during the window's time interval.  The lemma says that
    count is < n for every window.

    Returns:
        A list of (window_start_rank, bad_count) pairs for windows where
        bad_count ≥ n.  An empty list means the lemma held everywhere.
    """
    if window_multiplier < 1:
        raise ConfigurationError(
            f"window_multiplier must be >= 1, got {window_multiplier}"
        )
    if num_threads < 1:
        raise ConfigurationError(f"num_threads must be >= 1, got {num_threads}")
    by_start = sorted(records, key=lambda r: r.start_time)
    total = len(by_start)
    window = window_multiplier * num_threads
    if total < window:
        return []
    starts = np.array([r.start_time for r in by_start], dtype=np.int64)
    ends = np.array([r.end_time for r in by_start], dtype=np.int64)
    # bad(θ): #starts strictly inside (θ.start, θ.end] exceeds K·n.
    started_by_end = np.searchsorted(starts, ends, side="right")
    started_by_start = np.searchsorted(starts, starts, side="right")
    is_bad = (started_by_end - started_by_start) > window

    violations: List[Tuple[int, int]] = []
    step = stride if stride >= 1 else window
    for left in range(0, total - window + 1, step):
        interval_lo = starts[left]
        interval_hi = starts[left + window - 1]
        completes_inside = (ends >= interval_lo) & (ends <= interval_hi)
        bad_count = int(np.count_nonzero(is_bad & completes_inside))
        if bad_count >= num_threads:
            violations.append((left, bad_count))
    return violations


def max_incomplete_iterations(records: Sequence[IterationRecord]) -> int:
    """Lemma 6.1's second claim, measured: the maximum, over points in
    the execution, of the number of iterations that have performed their
    first model update but not yet their last.

    The lemma bounds this by n (each thread has at most one iteration in
    flight).  An iteration is *incomplete* on the half-open interval
    [first_update_time, end_time); zero-update iterations are never
    incomplete.
    """
    events = []  # (time, +1/-1)
    for record in records:
        if record.first_update_time is None:
            continue
        if record.end_time > record.first_update_time:
            events.append((record.first_update_time, 1))
            events.append((record.end_time, -1))
    # Process completions before starts at equal times (half-open).
    events.sort(key=lambda e: (e[0], e[1]))
    current = 0
    worst = 0
    for _time, delta in events:
        current += delta
        worst = max(worst, current)
    return worst


def lemma_6_2_window_counts(
    records: Sequence[IterationRecord],
    window_multiplier: int,
    num_threads: int,
    stride: int = 0,
) -> List[int]:
    """Per-window bad-iteration counts (Lemma 6.2's raw measurements).

    Same classification as :func:`lemma_6_2_violations`, but returns the
    bad count of *every* window checked, in start-order — the live
    contention telemetry (``repro.obs``) streams exactly this list, and
    :func:`lemma_6_2_max_bad` reduces it to the certified extremes.

    Returns an empty list when the trace is too short for even one
    window.
    """
    if window_multiplier < 1:
        raise ConfigurationError(
            f"window_multiplier must be >= 1, got {window_multiplier}"
        )
    if num_threads < 1:
        raise ConfigurationError(f"num_threads must be >= 1, got {num_threads}")
    by_start = sorted(records, key=lambda r: r.start_time)
    total = len(by_start)
    window = window_multiplier * num_threads
    if total < window:
        return []
    starts = np.array([r.start_time for r in by_start], dtype=np.int64)
    ends = np.array([r.end_time for r in by_start], dtype=np.int64)
    started_by_end = np.searchsorted(starts, ends, side="right")
    started_by_start = np.searchsorted(starts, starts, side="right")
    is_bad = (started_by_end - started_by_start) > window

    counts: List[int] = []
    step = stride if stride >= 1 else window
    for left in range(0, total - window + 1, step):
        interval_lo = starts[left]
        interval_hi = starts[left + window - 1]
        completes_inside = (ends >= interval_lo) & (ends <= interval_hi)
        counts.append(int(np.count_nonzero(is_bad & completes_inside)))
    return counts


def lemma_6_2_max_bad(
    records: Sequence[IterationRecord],
    window_multiplier: int,
    num_threads: int,
    stride: int = 0,
) -> Tuple[int, int]:
    """The worst window's bad-iteration count, plus the window count.

    Same classification as :func:`lemma_6_2_violations` but reports the
    maximum observed bad count (the lemma says it stays < n) so tables
    can show the measured margin, not just pass/fail.

    Returns:
        (max_bad_count, windows_checked); (0, 0) when the trace is too
        short for even one window.
    """
    counts = lemma_6_2_window_counts(
        records, window_multiplier, num_threads, stride=stride
    )
    if not counts:
        return 0, 0
    return max(counts), len(counts)


def lemma_6_4_sums(delays: np.ndarray) -> np.ndarray:
    """S_t = Σ_{m≥1} 1{τ_{t+m} ≥ m} for every position t.

    The sum naturally truncates at the end of the trace and, because
    τ ≤ τ_max, at m = τ_max.  Lemma 6.4 bounds every S_t by 2√(τ_max·n).
    """
    delays = np.asarray(delays, dtype=np.int64)
    total = delays.size
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    horizon = int(delays.max())
    sums = np.zeros(total, dtype=np.int64)
    for m in range(1, horizon + 1):
        # positions t with t+m < total contribute 1{delays[t+m] >= m}.
        indicator = delays[m:] >= m
        sums[: total - m] += indicator
    return sums


def lemma_6_4_bound(records: Sequence[IterationRecord]) -> Tuple[float, float]:
    """Measured max Σ_m 1{τ_{t+m} ≥ m} versus the 2√(τ_max·n) bound.

    Returns:
        (max_sum, bound) — the lemma predicts max_sum ≤ bound.
    """
    delays = delay_sequence(records)
    if delays.size == 0:
        return 0.0, 0.0
    sums = lemma_6_4_sums(delays)
    measured_tau_max = tau_max(records)
    n = max(1, thread_count(records))
    bound = 2.0 * math.sqrt(max(measured_tau_max, 1) * n)
    return float(sums.max()), bound
