"""The piecewise logarithm of Lemma 6.6.

    plog(x) = log(e·x)  for x ≥ 1
    plog(x) = x          for x ≤ 1

It is continuous (both branches give 1 at x = 1), non-decreasing, concave
on its domain, and satisfies plog(x) ≤ x for x ≥ 0 as well as
1 + log(x) = plog(x) for x ≥ 1 — properties the property-based tests pin
down, since the martingale construction leans on them.
"""

from __future__ import annotations

from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]


def plog(x: ArrayLike) -> ArrayLike:
    """Piecewise logarithm: ``log(e·x)`` above 1, identity below.

    Accepts scalars or numpy arrays (applied elementwise).  Defined for
    all real inputs — below 1 it is simply the identity, matching the
    paper's definition for x ≤ 1 (including negatives, though the
    martingale only ever evaluates it at non-negative arguments).
    """
    scalar = np.isscalar(x)
    values = np.asarray(x, dtype=float)
    out = np.where(values >= 1.0, np.log(np.maximum(values, 1.0)) + 1.0, values)
    return float(out) if scalar else out
