"""repro — The Convergence of SGD in Asynchronous Shared Memory.

A full reproduction of Alistarh, De Sa & Konstantinov (PODC 2018):
lock-free stochastic gradient descent in the classic asynchronous
shared-memory model, against a strong adaptive adversary, together with
every substrate the paper's analysis stands on — an atomic shared-memory
simulator, an adversarial-scheduler hierarchy, gradient oracles with
certified analytic constants, the rate-supermartingale machinery, and
the paper's upper/lower bounds as computable functions.

Quickstart::

    import repro

    objective = repro.IsotropicQuadratic(dim=4)
    result = repro.run_lock_free_sgd(
        objective,
        scheduler=repro.RandomScheduler(seed=1),
        num_threads=4,
        step_size=0.05,
        iterations=500,
        x0=[3.0, -3.0, 3.0, -3.0],
        epsilon=0.5,
        seed=1,
    )
    print(result.hit_time, result.final_distance)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced claim.
"""

from repro.errors import (
    AssumptionViolationError,
    CheckpointRestoreError,
    ConfigurationError,
    ConvergenceError,
    InterruptedRunError,
    ReproError,
    ResumeMismatchError,
    SimulationError,
)
from repro.durable import (
    Checkpoint,
    EnsembleWatchdog,
    GracefulShutdown,
    RunJournal,
    WatchdogPolicy,
    atomic_write,
)
from repro.shm import (
    AtomicArray,
    AtomicCounter,
    AtomicRegister,
    SharedMemory,
)
from repro.runtime import (
    IterationRecord,
    Program,
    RngStream,
    SimThread,
    Simulator,
    ThreadContext,
)
from repro.sched import (
    AdaptiveAdversary,
    BoundedDelayScheduler,
    ContentionMaximizer,
    CrashScheduler,
    GreedyAscentAdversary,
    PriorityDelayScheduler,
    RandomScheduler,
    RecordingScheduler,
    ReplayScheduler,
    RoundRobinScheduler,
    Scheduler,
    SequentialScheduler,
    StaleGradientAttack,
)
from repro.objectives import (
    GaussianNoise,
    IsotropicQuadratic,
    LeastSquares,
    LogisticRegression,
    Objective,
    Quadratic,
    RidgeRegression,
    SeparableQuadratic,
    ZeroNoise,
    make_classification,
    make_regression,
)
from repro.core import (
    ConstantRate,
    EpochHalvingRate,
    EpochSGDProgram,
    FullSGD,
    FullSGDResult,
    HogwildProgram,
    LockFreeRunResult,
    LockedSGDProgram,
    MomentumSGDProgram,
    SequentialRunResult,
    StalenessAwareSGDProgram,
    fit_implicit_momentum,
    recommended_num_epochs,
    run_lock_free_sgd,
    run_minibatch_sgd,
    run_momentum_sgd,
    run_sequential_sgd,
)
from repro.theory import (
    ConvexRateSupermartingale,
    certify_objective,
    contention_constant,
    corollary_6_7_failure_bound,
    corollary_6_7_step_size,
    delay_sequence,
    interval_contention,
    lemma_6_4_sums,
    plog,
    required_delay,
    slowdown_factor,
    tau_avg,
    tau_max,
    theorem_3_1_failure_bound,
    theorem_3_1_step_size,
    theorem_6_3_failure_bound,
    theorem_6_3_step_size,
    theorem_6_5_failure_bound,
)
from repro.metrics import (
    FailureEstimate,
    Table,
    ascii_plot,
    estimate_failure_probability,
    iterations_to_reach,
    render_update_matrix,
    slowdown_ratio,
    wilson_interval,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "AssumptionViolationError",
    "ConvergenceError",
    "InterruptedRunError",
    "ResumeMismatchError",
    "CheckpointRestoreError",
    # durability
    "Checkpoint",
    "RunJournal",
    "GracefulShutdown",
    "EnsembleWatchdog",
    "WatchdogPolicy",
    "atomic_write",
    # shared memory
    "SharedMemory",
    "AtomicRegister",
    "AtomicArray",
    "AtomicCounter",
    # runtime
    "Simulator",
    "SimThread",
    "Program",
    "ThreadContext",
    "RngStream",
    "IterationRecord",
    # schedulers
    "Scheduler",
    "SequentialScheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "BoundedDelayScheduler",
    "CrashScheduler",
    "AdaptiveAdversary",
    "GreedyAscentAdversary",
    "StaleGradientAttack",
    "PriorityDelayScheduler",
    "ContentionMaximizer",
    "RecordingScheduler",
    "ReplayScheduler",
    # objectives
    "Objective",
    "IsotropicQuadratic",
    "Quadratic",
    "LeastSquares",
    "RidgeRegression",
    "LogisticRegression",
    "SeparableQuadratic",
    "GaussianNoise",
    "ZeroNoise",
    "make_regression",
    "make_classification",
    # core algorithms
    "run_sequential_sgd",
    "run_lock_free_sgd",
    "run_minibatch_sgd",
    "run_momentum_sgd",
    "MomentumSGDProgram",
    "fit_implicit_momentum",
    "StalenessAwareSGDProgram",
    "EpochSGDProgram",
    "HogwildProgram",
    "LockedSGDProgram",
    "FullSGD",
    "FullSGDResult",
    "recommended_num_epochs",
    "ConstantRate",
    "EpochHalvingRate",
    "SequentialRunResult",
    "LockFreeRunResult",
    # theory
    "plog",
    "ConvexRateSupermartingale",
    "theorem_3_1_step_size",
    "theorem_3_1_failure_bound",
    "theorem_6_3_step_size",
    "theorem_6_3_failure_bound",
    "corollary_6_7_step_size",
    "corollary_6_7_failure_bound",
    "theorem_6_5_failure_bound",
    "contention_constant",
    "required_delay",
    "slowdown_factor",
    "interval_contention",
    "tau_max",
    "tau_avg",
    "delay_sequence",
    "lemma_6_4_sums",
    "certify_objective",
    # metrics
    "estimate_failure_probability",
    "FailureEstimate",
    "wilson_interval",
    "iterations_to_reach",
    "slowdown_ratio",
    "Table",
    "render_update_matrix",
    "ascii_plot",
]
