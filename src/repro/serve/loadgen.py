"""Load and fault generator: the server chaos-tested against itself.

The repo's discipline is that every robustness claim gets an adversary
(DESIGN.md §8); ``repro.serve``'s adversary is this module.  It drives
a live server with the misbehaviour the service model promises to
survive — concurrent valid submissions, duplicate floods aimed at the
cache, malformed specs, slow-loris connections that never finish their
request, and SIGKILLed workers — then checks the *acceptance property*:

* every request ends in a **structured outcome** (an expected HTTP
  status; no hangs, no connection left dangling);
* duplicate submissions of one spec produce **byte-identical** result
  payloads (the certified-cache guarantee, checked client-side from
  the canonical result bytes and their digest);
* the server stays live throughout (``/healthz`` keeps answering).

Used three ways: the ``repro loadtest`` CLI, the chaos-acceptance
test in ``tests/test_serve_chaos.py``, and ``benchmarks/bench_serve.py``
(latency percentiles + cache hit/miss throughput).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.serve.clock import ServeClock

#: Statuses that count as the server answering in a structured way.
STRUCTURED = (200, 202, 400, 404, 408, 413, 429, 503)


@dataclass(frozen=True)
class LoadPlan:
    """What to throw at the server.

    Attributes:
        spec: Base job spec payload; distinct jobs vary ``base_seed``.
        requests: Distinct valid submissions.
        duplicates: Extra submissions of the *same* spec (flood).
        malformed: Bad submissions (must all come back 400).
        slow_loris: Connections that stall mid-request (408/close).
        kill_workers: Times to SIGKILL a running worker pid.
        concurrency: Client tasks in flight at once.
        poll_interval: Job-completion polling cadence (seconds).
        deadline: Wall-clock budget for the whole run (seconds).
    """

    spec: Mapping[str, Any] = field(
        default_factory=lambda: {
            "kind": "chaos",
            "params": {"specs": ["none"], "seeds": 2, "iterations": 60},
        }
    )
    requests: int = 3
    duplicates: int = 5
    malformed: int = 3
    slow_loris: int = 2
    kill_workers: int = 0
    concurrency: int = 8
    poll_interval: float = 0.1
    deadline: float = 120.0


@dataclass
class LoadgenReport:
    """Outcome of one loadgen run against one server."""

    statuses: Dict[int, int] = field(default_factory=dict)
    anomalies: List[str] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)
    jobs_done: int = 0
    jobs_failed: int = 0
    jobs_other: int = 0
    cache_hits: int = 0
    identical_fingerprints: int = 0

    @property
    def ok(self) -> bool:
        """The acceptance property: structured outcomes, no anomalies."""
        return not self.anomalies

    def percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
        return ordered[index]

    def summary(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "anomalies": list(self.anomalies),
            "requests": len(self.latencies),
            "latency_p50_s": self.percentile(0.50),
            "latency_p99_s": self.percentile(0.99),
            "jobs_done": self.jobs_done,
            "jobs_failed": self.jobs_failed,
            "jobs_other": self.jobs_other,
            "cache_hits": self.cache_hits,
            "identical_fingerprints": self.identical_fingerprints,
        }

    def render(self) -> str:
        lines = ["loadgen report", "=============="]
        for key, value in self.summary().items():
            lines.append(f"  {key}: {value}")
        lines.append(f"  verdict: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Minimal HTTP client (stdlib asyncio, mirrors the server's dialect)
# ----------------------------------------------------------------------
async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[Any] = None,
    raw_body: Optional[bytes] = None,
    timeout: float = 30.0,
    headers: Optional[Dict[str, str]] = None,
) -> Tuple[int, Dict[str, str], bytes]:
    """One ``Connection: close`` request; returns (status, headers, body)."""
    extra_headers = dict(headers or {})

    async def _go() -> Tuple[int, Dict[str, str], bytes]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            payload = raw_body
            if payload is None and body is not None:
                payload = json.dumps(body, sort_keys=True).encode("utf-8")
            head = [f"{method} {path} HTTP/1.1", f"Host: {host}"]
            for name, value in extra_headers.items():
                head.append(f"{name}: {value}")
            if payload is not None:
                head.append(f"Content-Length: {len(payload)}")
            head.append("Connection: close")
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
            if payload is not None:
                writer.write(payload)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(None, 2)
            status = int(parts[1])
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, value = line.decode("latin-1").split(":", 1)
                headers[name.strip().lower()] = value.strip()
            # Read by Content-Length, not until EOF: forked job workers
            # inherit in-flight connection fds, so EOF can lag a worker
            # lifetime even though the response is already complete.
            length = headers.get("content-length")
            if length is not None:
                data = await reader.readexactly(int(length))
            else:
                data = await reader.read()
            return status, headers, data
        finally:
            try:
                writer.close()
            except Exception:
                pass

    return await asyncio.wait_for(_go(), timeout)


def _with_seed(spec: Mapping[str, Any], offset: int) -> Dict[str, Any]:
    """The base spec with a shifted ``base_seed`` (a distinct job)."""
    payload = json.loads(json.dumps(dict(spec)))
    params = dict(payload.get("params", {}))
    params["base_seed"] = int(params.get("base_seed", 1)) + offset
    payload["params"] = params
    return payload


MALFORMED_BODIES: Tuple[bytes, ...] = (
    b"this is not json",
    b'{"kind": "unknown-kind"}',
    b'{"kind": "chaos", "params": {"bogus": 1}}',
    b'{"kind": "chaos", "params": {"seeds": "many"}}',
    b'[1, 2, 3]',
)


class LoadGenerator:
    """Drives one server through a :class:`LoadPlan`."""

    def __init__(
        self,
        host: str,
        port: int,
        plan: Optional[LoadPlan] = None,
        clock: Optional[ServeClock] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.plan = plan if plan is not None else LoadPlan()
        self.clock = clock if clock is not None else ServeClock()
        self.report = LoadgenReport()
        self._semaphore = asyncio.Semaphore(self.plan.concurrency)
        self._job_ids: List[str] = []
        self._kills_left = self.plan.kill_workers

    # ------------------------------------------------------------------
    def run(self) -> LoadgenReport:
        """Synchronous entry point (runs its own event loop)."""
        return asyncio.run(self.run_async())

    async def run_async(self) -> LoadgenReport:
        plan = self.plan
        tasks: List[Any] = []
        for index in range(plan.requests):
            tasks.append(self._submit(_with_seed(plan.spec, index)))
        for _ in range(plan.duplicates):
            tasks.append(self._submit(_with_seed(plan.spec, 0)))
        for index in range(plan.malformed):
            tasks.append(
                self._malformed(MALFORMED_BODIES[index % len(MALFORMED_BODIES)])
            )
        for _ in range(plan.slow_loris):
            tasks.append(self._slow_loris())
        if self._kills_left > 0:
            tasks.append(self._killer())
        await asyncio.gather(*tasks)
        await self._await_jobs()
        await self._certify()
        return self.report

    # ------------------------------------------------------------------
    def _note_status(self, status: int, elapsed: float) -> None:
        self.report.statuses[status] = self.report.statuses.get(status, 0) + 1
        self.report.latencies.append(elapsed)
        if status not in STRUCTURED:
            self.report.anomalies.append(f"unexpected HTTP status {status}")

    async def _submit(self, payload: Dict[str, Any]) -> None:
        async with self._semaphore:
            start = self.clock.monotonic()
            try:
                status, _headers, data = await http_request(
                    self.host, self.port, "POST", "/jobs", body=payload
                )
            except (asyncio.TimeoutError, ConnectionError, OSError) as error:
                self.report.anomalies.append(f"submit failed: {error!r}")
                return
            self._note_status(status, self.clock.monotonic() - start)
            if status in (200, 202):
                try:
                    job = json.loads(data.decode("utf-8"))["job"]
                    self._job_ids.append(job["id"])
                    if job.get("cached"):
                        self.report.cache_hits += 1
                except (ValueError, KeyError):
                    self.report.anomalies.append("unparseable submit response")
            elif status not in (429, 503):
                self.report.anomalies.append(
                    f"valid spec rejected with {status}"
                )

    async def _malformed(self, raw: bytes) -> None:
        async with self._semaphore:
            start = self.clock.monotonic()
            try:
                status, _headers, _data = await http_request(
                    self.host, self.port, "POST", "/jobs", raw_body=raw
                )
            except (asyncio.TimeoutError, ConnectionError, OSError) as error:
                self.report.anomalies.append(f"malformed probe died: {error!r}")
                return
            self._note_status(status, self.clock.monotonic() - start)
            if status != 400:
                self.report.anomalies.append(
                    f"malformed spec answered {status}, want 400"
                )

    async def _slow_loris(self) -> None:
        """Open a connection, dribble half a request, never finish."""
        try:
            reader, writer = await asyncio.open_connection(self.host, self.port)
        except OSError as error:
            self.report.anomalies.append(f"slow-loris connect: {error!r}")
            return
        try:
            writer.write(b"POST /jobs HT")
            await writer.drain()
            # The server must cut us off (408 or close), not wait forever.
            data = await self.clock.wait_for(reader.read(), 60.0)
            if data and b" 408 " not in data.split(b"\r\n", 1)[0]:
                self.report.anomalies.append(
                    "slow-loris got a non-408 response"
                )
        except asyncio.TimeoutError:
            self.report.anomalies.append("slow-loris connection never cut off")
        except (ConnectionError, OSError):
            pass  # hard close is an acceptable cutoff too
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _killer(self) -> None:
        """SIGKILL running worker pids learned from ``/healthz``."""
        while self._kills_left > 0:
            await self.clock.aio_sleep(self.plan.poll_interval)
            try:
                status, _headers, data = await http_request(
                    self.host, self.port, "GET", "/healthz"
                )
            except (asyncio.TimeoutError, ConnectionError, OSError):
                continue
            if status != 200:
                continue
            health = json.loads(data.decode("utf-8"))
            workers = health.get("workers", [])
            if not workers:
                if not health.get("jobs", {}).get("queued") and not health.get(
                    "jobs", {}
                ).get("running"):
                    return  # nothing left to kill
                continue
            pid = workers[0].get("pid")
            if pid:
                try:
                    os.kill(int(pid), signal.SIGKILL)
                    self._kills_left -= 1
                except (OSError, ValueError):
                    pass

    async def _await_jobs(self) -> None:
        """Poll until every submitted job reaches a terminal state."""
        deadline = self.clock.monotonic() + self.plan.deadline
        pending = set(self._job_ids)
        while pending:
            if self.clock.monotonic() > deadline:
                self.report.anomalies.append(
                    f"{len(pending)} job(s) never reached a terminal state"
                )
                return
            done = set()
            for job_id in pending:
                try:
                    status, _headers, data = await http_request(
                        self.host, self.port, "GET", f"/jobs/{job_id}"
                    )
                except (asyncio.TimeoutError, ConnectionError, OSError):
                    continue
                if status != 200:
                    self.report.anomalies.append(
                        f"job {job_id} status answered {status}"
                    )
                    done.add(job_id)
                    continue
                job = json.loads(data.decode("utf-8"))["job"]
                if job["state"] in ("done", "failed", "interrupted", "cancelled"):
                    done.add(job_id)
                    if job["state"] == "done":
                        self.report.jobs_done += 1
                    elif job["state"] == "failed":
                        self.report.jobs_failed += 1
                    else:
                        self.report.jobs_other += 1
            pending -= done
            if pending:
                await self.clock.aio_sleep(self.plan.poll_interval)

    async def _certify(self) -> None:
        """Client-side cache certification: every job sharing a
        fingerprint must expose byte-identical result payloads whose
        digest matches a recomputation from the canonical bytes."""
        from repro.serve.specs import result_digest

        by_fingerprint: Dict[str, List[Tuple[str, str, str]]] = {}
        for job_id in self._job_ids:
            try:
                status, _headers, data = await http_request(
                    self.host, self.port, "GET", f"/jobs/{job_id}"
                )
            except (asyncio.TimeoutError, ConnectionError, OSError):
                continue
            if status != 200:
                continue
            job = json.loads(data.decode("utf-8"))["job"]
            if job["state"] != "done" or "result" not in job:
                continue
            canonical = json.dumps(
                job["result"], sort_keys=True, separators=(",", ":")
            )
            digest = job.get("digest", "")
            if result_digest(job["result"]) != digest:
                self.report.anomalies.append(
                    f"job {job_id}: digest does not certify the result bytes"
                )
            by_fingerprint.setdefault(job["fingerprint"], []).append(
                (job_id, canonical, digest)
            )
        for fingerprint, entries in by_fingerprint.items():
            bodies = {canonical for _id, canonical, _d in entries}
            if len(bodies) != 1:
                self.report.anomalies.append(
                    f"fingerprint {fingerprint[:12]}: "
                    f"{len(bodies)} distinct result payloads (want 1)"
                )
            else:
                self.report.identical_fingerprints += 1
