"""Job specs: what a client may ask the server to run.

A submission body is ``{"kind": ..., "params": {...}}`` where ``kind``
names one of the repo's gridded entry points (``chaos``, ``sanitize``,
``zoo``, ``heal``, ``verify``) or a single ``experiment`` driver.
:func:`parse_job_spec` validates the payload the same way the CLI does
— unknown kinds, unknown params and bad values raise
:class:`~repro.errors.ConfigurationError` (the server's HTTP 400) —
and canonicalizes it into a :class:`JobSpec` carrying the existing
jobs-excluded journal fingerprint of the underlying config.  Two
consequences do all the heavy lifting for the service layer:

* the fingerprint keys the **certified result cache**: every run is
  deterministic given its spec, so byte-equality of repeated results is
  a theorem, not a hope (DESIGN.md §17);
* the fingerprint also pins the **job journal**: a worker killed
  mid-job leaves a journal any retry resumes — and because it is the
  same fingerprint the CLI computes, ``python -m repro <kind> --journal
  ... --resume`` reproduces an interrupted job's report byte-identically
  outside the server too.

:func:`execute_spec` is the worker-process entry point: it rebuilds the
config from the canonical params and drives the matching ``run_*``
driver with the journal/shutdown/progress plumbing attached.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError

#: Submission kinds the server accepts.
JOB_KINDS = ("experiment", "chaos", "sanitize", "zoo", "heal", "verify")

#: Per-kind parameter schema: name -> (default, coercion).  ``None``
#: defaults mean "required".  Lists arrive as JSON arrays of strings.
_STR_LIST = lambda v: tuple(str(item) for item in v)  # noqa: E731


def _params_schema(kind: str) -> Dict[str, Tuple[Any, Callable[[Any], Any]]]:
    if kind == "experiment":
        return {"id": (None, lambda v: str(v).upper()), "scale": ("quick", str)}
    if kind == "chaos":
        return {
            "specs": (("prob-crash", "torn-update"), _STR_LIST),
            "seeds": (2, int),
            "base_seed": (1, int),
            "threads": (4, int),
            "iterations": (120, int),
            "check_interval": (64, int),
            "recover": (True, bool),
            "monitors": (True, bool),
        }
    if kind == "sanitize":
        return {
            "presets": (("e1",), _STR_LIST),
            "seeds": (2, int),
            "base_seed": (1, int),
            "strict": (False, bool),
        }
    if kind == "zoo":
        return {
            "algorithms": (("epoch-sgd", "hogwild"), _STR_LIST),
            "adversaries": (("round-robin", "random"), _STR_LIST),
            "seeds": (2, int),
            "base_seed": (7000, int),
            "threads": (4, int),
            "iterations": (100, int),
            "sanitize": (True, bool),
        }
    if kind == "heal":
        return {
            "algorithms": (("epoch-sgd",), _STR_LIST),
            "plans": (("none", "nan-poison"), _STR_LIST),
            "seeds": (1, int),
            "base_seed": (8000, int),
            "threads": (4, int),
            "iterations": (150, int),
            "adversary": ("random", str),
            "retry_budget": (8, int),
            "check_interval": (64, int),
        }
    if kind == "verify":
        return {
            "variants": (("epoch-sgd",), _STR_LIST),
            "seeds": (1, int),
            "base_seed": (1, int),
            "threads": (2, int),
            "iterations": (1, int),
            "max_steps": (48, int),
            "full_tree": (False, bool),
            "memoize": (False, bool),
            "smt_engine": ("finite", str),
        }
    raise ConfigurationError(
        f"unknown job kind {kind!r} (choose from {', '.join(JOB_KINDS)})"
    )


@dataclass(frozen=True)
class JobSpec:
    """One validated, canonicalized submission.

    Attributes:
        kind: Which entry point runs (:data:`JOB_KINDS`).
        params: Canonical parameter mapping (defaults filled, values
            coerced) — JSON-safe, so it crosses the worker-process
            boundary and the journal untouched.
        fingerprint: The underlying config's jobs-excluded journal
            fingerprint, wrapped with the kind — the cache key and the
            journal identity.
        jobs: Worker processes *inside* the job (an execution knob:
            excluded from the fingerprint, like ``--jobs`` everywhere
            else in the repo).
    """

    kind: str
    params: Mapping[str, Any]
    fingerprint: str
    jobs: int = 1

    def payload(self) -> Dict[str, Any]:
        """The JSON-safe round-trippable form (feeds ``execute_spec``)."""
        return {
            "kind": self.kind,
            "params": dict(self.params),
            "jobs": self.jobs,
        }


def _canonical_params(kind: str, raw: Mapping[str, Any]) -> Dict[str, Any]:
    schema = _params_schema(kind)
    unknown = sorted(set(raw) - set(schema))
    if unknown:
        raise ConfigurationError(
            f"unknown {kind} param(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(schema))})"
        )
    params: Dict[str, Any] = {}
    for name, (default, coerce) in schema.items():
        if name in raw:
            try:
                value = coerce(raw[name])
            except (TypeError, ValueError) as error:
                raise ConfigurationError(
                    f"bad {kind} param {name!r}: {error}"
                ) from None
        elif default is None:
            raise ConfigurationError(f"{kind} spec requires param {name!r}")
        else:
            value = default
        if isinstance(value, tuple):
            value = list(value)
        params[name] = value
    return params


def parse_job_spec(payload: Any) -> JobSpec:
    """Validate a submission body into a :class:`JobSpec`.

    Validation is *eager*: the underlying config object is actually
    constructed (so every range/name check the CLI would perform fires
    here, before the job is admitted), then thrown away — workers
    rebuild it from the canonical params.
    """
    if not isinstance(payload, dict):
        raise ConfigurationError("job spec must be a JSON object")
    unknown = sorted(set(payload) - {"kind", "params", "jobs"})
    if unknown:
        raise ConfigurationError(
            f"unknown job spec field(s): {', '.join(unknown)} "
            "(allowed: kind, params, jobs)"
        )
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise ConfigurationError(
            f"unknown job kind {kind!r} (choose from {', '.join(JOB_KINDS)})"
        )
    raw = payload.get("params", {})
    if not isinstance(raw, dict):
        raise ConfigurationError("job spec 'params' must be a JSON object")
    try:
        jobs = int(payload.get("jobs", 1))
    except (TypeError, ValueError):
        raise ConfigurationError("job spec 'jobs' must be an integer") from None
    if jobs < 1:
        raise ConfigurationError(f"job spec 'jobs' must be >= 1, got {jobs}")
    params = _canonical_params(kind, raw)
    fingerprint = _fingerprint(kind, params)
    return JobSpec(kind=kind, params=params, fingerprint=fingerprint, jobs=jobs)


def result_digest(result: Mapping[str, Any]) -> str:
    """sha256 over the canonical JSON bytes of a job result — the
    digest a client (and the cache) verifies byte-identity against."""
    canonical = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Per-kind config construction (validation + fingerprint + runner)
# ----------------------------------------------------------------------
def _chaos_config(params: Mapping[str, Any]):
    from repro.faults.campaign import CampaignConfig, ChaosWorkload, preset_specs

    presets = preset_specs()
    unknown = [name for name in params["specs"] if name not in presets]
    if unknown or not params["specs"]:
        raise ConfigurationError(
            f"unknown fault spec(s): {', '.join(unknown) or '(none given)'} "
            f"(choose from {', '.join(presets)})"
        )
    return CampaignConfig(
        specs=tuple(presets[name] for name in params["specs"]),
        seeds=tuple(
            range(params["base_seed"], params["base_seed"] + params["seeds"])
        ),
        workload=ChaosWorkload(
            num_threads=params["threads"], iterations=params["iterations"]
        ),
        recover=params["recover"],
        monitors=params["monitors"],
        check_interval=params["check_interval"],
    )


def _sanitize_args(params: Mapping[str, Any]):
    from repro.analysis.presets import sanitize_presets

    presets = sanitize_presets()
    unknown = [name for name in params["presets"] if name not in presets]
    if unknown or not params["presets"]:
        raise ConfigurationError(
            f"unknown sanitize preset(s): "
            f"{', '.join(unknown) or '(none given)'} "
            f"(choose from {', '.join(presets)})"
        )
    chosen = tuple(presets[name] for name in params["presets"])
    seeds = tuple(
        range(params["base_seed"], params["base_seed"] + params["seeds"])
    )
    return chosen, seeds


def _zoo_config(params: Mapping[str, Any]):
    from repro.experiments.e13_algorithm_zoo import ZooConfig, ZooWorkload

    return ZooConfig(
        algorithms=tuple(params["algorithms"]),
        adversaries=tuple(params["adversaries"]),
        seeds=tuple(
            range(params["base_seed"], params["base_seed"] + params["seeds"])
        ),
        workload=ZooWorkload(
            num_threads=params["threads"], iterations=params["iterations"]
        ),
        sanitize=params["sanitize"],
    )


def _heal_config(params: Mapping[str, Any]):
    from repro.experiments.e14_resilience import HealGridConfig, HealWorkload
    from repro.heal.rollback import HealPolicy

    return HealGridConfig(
        algorithms=tuple(params["algorithms"]),
        plans=tuple(params["plans"]),
        seeds=tuple(
            range(params["base_seed"], params["base_seed"] + params["seeds"])
        ),
        workload=HealWorkload(
            num_threads=params["threads"],
            iterations=params["iterations"],
            adversary=params["adversary"],
        ),
        policy=HealPolicy(
            check_interval=params["check_interval"],
            retry_budget=params["retry_budget"],
        ),
    )


def _verify_config(params: Mapping[str, Any]):
    from repro.verify.engine import VerifyConfig, VerifyScope
    from repro.verify.smt import SmtConfig

    return VerifyConfig(
        variants=tuple(params["variants"]),
        seeds=tuple(
            range(params["base_seed"], params["base_seed"] + params["seeds"])
        ),
        scope=VerifyScope(
            threads=params["threads"],
            iterations=params["iterations"],
            max_steps=params["max_steps"],
        ),
        measure_full_tree=params["full_tree"],
        memoize=params["memoize"],
        smt=SmtConfig(engine=params["smt_engine"]),
    )


def _experiment_registry():
    from repro.cli import REGISTRY

    return REGISTRY


def _fingerprint(kind: str, params: Mapping[str, Any]) -> str:
    """Kind-wrapped jobs-excluded fingerprint (also validates params by
    constructing the real config object)."""
    from repro.durable.journal import config_fingerprint

    if kind == "experiment":
        registry = _experiment_registry()
        if params["id"] not in registry:
            raise ConfigurationError(
                f"unknown experiment id {params['id']!r} "
                f"(choose from {', '.join(registry)})"
            )
        if params["scale"] not in ("quick", "full"):
            raise ConfigurationError(
                f"experiment scale must be quick or full, got "
                f"{params['scale']!r}"
            )
        inner = config_fingerprint(
            {"id": params["id"], "scale": params["scale"]}
        )
    elif kind == "chaos":
        from repro.faults.campaign import campaign_fingerprint

        inner = campaign_fingerprint(_chaos_config(params))
    elif kind == "sanitize":
        from repro.analysis.presets import sanitize_fingerprint

        chosen, seeds = _sanitize_args(params)
        inner = sanitize_fingerprint(chosen, seeds, strict=params["strict"])
    elif kind == "zoo":
        from repro.experiments.e13_algorithm_zoo import zoo_fingerprint

        inner = zoo_fingerprint(_zoo_config(params))
    elif kind == "heal":
        from repro.experiments.e14_resilience import heal_fingerprint

        inner = heal_fingerprint(_heal_config(params))
    else:  # verify (kind already validated)
        from repro.verify.engine import verify_fingerprint

        inner = verify_fingerprint(_verify_config(params))
    return config_fingerprint({"kind": kind, "fingerprint": inner})


def journal_fingerprint(spec: JobSpec) -> str:
    """The *inner* fingerprint the job's journal is pinned to — the one
    the matching CLI command computes, so a server-side journal resumes
    under ``python -m repro <kind> --journal ... --resume`` unchanged."""
    if spec.kind == "experiment":
        from repro.durable.journal import config_fingerprint

        return config_fingerprint(
            {"id": spec.params["id"], "scale": spec.params["scale"]}
        )
    if spec.kind == "chaos":
        from repro.faults.campaign import campaign_fingerprint

        return campaign_fingerprint(_chaos_config(spec.params))
    if spec.kind == "sanitize":
        from repro.analysis.presets import sanitize_fingerprint

        chosen, seeds = _sanitize_args(spec.params)
        return sanitize_fingerprint(chosen, seeds, strict=spec.params["strict"])
    if spec.kind == "zoo":
        from repro.experiments.e13_algorithm_zoo import zoo_fingerprint

        return zoo_fingerprint(_zoo_config(spec.params))
    if spec.kind == "heal":
        from repro.experiments.e14_resilience import heal_fingerprint

        return heal_fingerprint(_heal_config(spec.params))
    from repro.verify.engine import verify_fingerprint

    return verify_fingerprint(_verify_config(spec.params))


# ----------------------------------------------------------------------
# Worker-side execution
# ----------------------------------------------------------------------
def _report_result(kind: str, report: Any) -> Dict[str, Any]:
    """Uniform result payload: every grid report renders the same way."""
    return {
        "kind": kind,
        "passed": bool(report.passed),
        "report": json.loads(report.to_json()),
        "text": report.render(),
    }


def execute_spec(
    payload: Mapping[str, Any],
    journal: Optional[Any] = None,
    shutdown: Optional[Any] = None,
    metrics: Optional[Any] = None,
    progress: Optional[Callable[[int], None]] = None,
) -> Dict[str, Any]:
    """Run one validated spec payload to completion; returns the result
    dict the cache certifies (deterministic: canonical-JSON stable).

    ``journal``/``shutdown`` plumb straight into the underlying driver
    (cell-granular durability and safe-point stops, DESIGN.md §12).
    ``progress`` fires with a running completed-cell count — the
    supervisor's heartbeat and the ``/jobs/<id>/progress`` feed.
    """
    from repro.obs.spans import trace_span

    spec = parse_job_spec(dict(payload))
    cells = [0]

    def on_cell(_seed: Any, _outcome: Any) -> None:
        cells[0] += 1
        if progress is not None:
            progress(cells[0])

    with trace_span("spec.execute", kind=spec.kind):
        return _dispatch_spec(spec, journal, shutdown, metrics, on_cell)


def _dispatch_spec(
    spec: JobSpec,
    journal: Optional[Any],
    shutdown: Optional[Any],
    metrics: Optional[Any],
    on_cell: Callable[[Any, Any], None],
) -> Dict[str, Any]:
    if spec.kind == "experiment":
        registry = _experiment_registry()
        module, config_cls = registry[spec.params["id"]]
        config = (
            config_cls.full()
            if spec.params["scale"] == "full"
            else config_cls.quick()
        )
        if spec.jobs != 1 and hasattr(config, "jobs"):
            config.jobs = spec.jobs
        result = module.run(config)
        return {
            "kind": "experiment",
            "passed": bool(result.passed),
            "report": None,
            "text": result.render(plot=False),
        }
    if spec.kind == "chaos":
        from dataclasses import replace

        from repro.faults.campaign import run_campaign

        config = replace(_chaos_config(spec.params), jobs=spec.jobs)
        report = run_campaign(
            config,
            journal=journal,
            shutdown=shutdown,
            metrics=metrics,
            progress=on_cell,
        )
    elif spec.kind == "sanitize":
        from repro.analysis.presets import run_sanitize

        chosen, seeds = _sanitize_args(spec.params)
        report = run_sanitize(
            chosen,
            seeds=seeds,
            jobs=spec.jobs,
            strict=spec.params["strict"],
            journal=journal,
            shutdown=shutdown,
            metrics=metrics,
            progress=on_cell,
        )
    elif spec.kind == "zoo":
        from dataclasses import replace

        from repro.experiments.e13_algorithm_zoo import run_zoo

        config = replace(_zoo_config(spec.params), jobs=spec.jobs)
        report = run_zoo(
            config,
            journal=journal,
            shutdown=shutdown,
            metrics=metrics,
            progress=on_cell,
        )
    elif spec.kind == "heal":
        from dataclasses import replace

        from repro.experiments.e14_resilience import run_heal_grid

        config = replace(_heal_config(spec.params), jobs=spec.jobs)
        report = run_heal_grid(
            config,
            journal=journal,
            shutdown=shutdown,
            metrics=metrics,
            progress=on_cell,
        )
    else:  # verify
        from dataclasses import replace

        from repro.verify.engine import run_verify

        config = replace(_verify_config(spec.params), jobs=spec.jobs)
        report = run_verify(
            config,
            journal=journal,
            shutdown=shutdown,
            metrics=metrics,
            progress=on_cell,
        )
    return _report_result(spec.kind, report)
