"""Certified result cache: fingerprint → byte-identical result.

Every job the server runs is deterministic given its spec (that is the
repo's core invariant, pinned by the byte-identity tests in PRs 1–8),
so a result may be memoized by the spec's jobs-excluded fingerprint and
served without compute on resubmission.  "Certified" means the claim is
checkable end to end:

* entries carry a sha256 **digest** over the canonical JSON bytes of
  the result; clients can recompute it from the response body;
* disk entries are re-verified against their digest on load — a torn
  or tampered file is dropped (and counted) rather than served;
* the cache is **write-once** per fingerprint: a second ``put`` with a
  differing digest never overwrites the first (it is counted as a
  mismatch — a determinism violation worth alarming on, see the
  ``repro_serve_cache_mismatches`` metric), so a cache hit is always
  byte-identical to the *first* cold run.

Persistence reuses the durable layer's :func:`atomic_write`
(temp+fsync+rename), so a crash mid-write leaves either the old entry
or none — never a torn one.
"""

from __future__ import annotations

import json
import pathlib
import threading
from typing import Any, Dict, Mapping, Optional

from repro.serve.specs import result_digest


class ResultCache:
    """Thread-safe fingerprint-keyed store of certified job results.

    Args:
        directory: Optional spill directory.  When set, entries persist
            as ``<fingerprint>.json`` and survive server restarts; when
            ``None`` the cache is memory-only (tests, loadgen).
    """

    def __init__(self, directory: Optional[pathlib.Path] = None) -> None:
        self._directory = (
            pathlib.Path(directory) if directory is not None else None
        )
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._entries: Dict[str, Dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.mismatches = 0

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """Return ``{"digest", "result"}`` for a seen fingerprint, or
        ``None`` (counting a miss).  Disk entries are digest-verified;
        corruption is treated as a miss."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                entry = self._load(fingerprint)
                if entry is not None:
                    self._entries[fingerprint] = entry
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            return dict(entry)

    def put(self, fingerprint: str, result: Mapping[str, Any]) -> str:
        """Memoize ``result``; returns its digest.

        Write-once: if the fingerprint is already cached with a
        *different* digest, the existing entry wins and the collision is
        counted in :attr:`mismatches` — a repeated submission must never
        observe the cache changing under it.
        """
        digest = result_digest(result)
        with self._lock:
            existing = self._entries.get(fingerprint) or self._load(
                fingerprint
            )
            if existing is not None:
                if existing["digest"] != digest:
                    self.mismatches += 1
                self._entries[fingerprint] = existing
                return str(existing["digest"])
            entry = {"digest": digest, "result": dict(result)}
            self._entries[fingerprint] = entry
            self._store(fingerprint, entry)
            return digest

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for ``/healthz`` and the metrics registry."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "corrupt": self.corrupt,
                "mismatches": self.mismatches,
            }

    # ------------------------------------------------------------------
    def _path(self, fingerprint: str) -> Optional[pathlib.Path]:
        if self._directory is None:
            return None
        return self._directory / f"{fingerprint}.json"

    def _load(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        path = self._path(fingerprint)
        if path is None or not path.exists():
            return None
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            digest = entry["digest"]
            result = entry["result"]
        except (ValueError, KeyError, TypeError, OSError):
            self.corrupt += 1
            return None
        if result_digest(result) != digest:
            self.corrupt += 1
            try:  # self-heal: a bad entry re-runs rather than re-serves
                path.unlink()
            except OSError:
                pass
            return None
        return {"digest": str(digest), "result": result}

    def _store(self, fingerprint: str, entry: Mapping[str, Any]) -> None:
        path = self._path(fingerprint)
        if path is None:
            return
        from repro.durable.atomic_io import atomic_write

        payload = json.dumps(
            dict(entry), sort_keys=True, separators=(",", ":")
        )
        atomic_write(path, payload.encode("utf-8"))
