"""The job server's injectable wall-clock seam.

Everything the serve layer times — admission ``Retry-After`` hints,
per-job deadlines, retry backoff sleeps, slow-loris read cutoffs, drain
grace periods — goes through one :class:`ServeClock` object instead of
calling ``time.*``/``asyncio.sleep`` directly.  That is what makes the
supervisor's escalation ladder and the server's timeout behaviour
testable with :class:`FakeServeClock` (no real sleeping, no flaky
timing assertions), and it is enforced statically: lint rule ``RPL106``
flags any direct timing call inside ``repro/serve/`` — this module is
the single waived exception.

The simulated :class:`~repro.runtime.clock.Clock` (logical time inside
a run) is a different thing entirely and is never touched here; serve
timing is harness-level weather, the same category as the
:class:`~repro.durable.watchdog.EnsembleWatchdog`'s clock.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Awaitable, Optional, TypeVar

T = TypeVar("T")


class ServeClock:
    """Real wall-clock implementation (the production default)."""

    def monotonic(self) -> float:
        """Seconds from an arbitrary origin; only differences matter."""
        return time.monotonic()  # repro: allow(RPD201, RPL106)

    def sleep(self, seconds: float) -> None:
        """Blocking sleep (supervisor worker threads only)."""
        if seconds > 0:
            time.sleep(seconds)  # repro: allow(RPL106)

    async def aio_sleep(self, seconds: float) -> None:
        """Cooperative sleep for the asyncio side of the server."""
        await asyncio.sleep(max(0.0, seconds))  # repro: allow(RPL106)

    async def wait_for(
        self, awaitable: Awaitable[T], timeout: Optional[float]
    ) -> T:
        """``asyncio.wait_for`` behind the seam (slow-loris cutoffs).

        Raises :class:`asyncio.TimeoutError` exactly like the real one.
        """
        return await asyncio.wait_for(awaitable, timeout)


class FakeServeClock(ServeClock):
    """Manual-time clock for tests: sleeps advance time, never block.

    ``wait_for`` keeps real awaiting semantics (the awaitable usually
    completes immediately in tests) but never enforces the timeout —
    timeout *behaviour* is tested by driving :meth:`advance` past
    deadlines between supervisor polls instead.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.sleeps: list = []

    def monotonic(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        self._now += float(seconds)

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(float(seconds))
        self._now += max(0.0, float(seconds))

    async def aio_sleep(self, seconds: float) -> None:
        self.sleeps.append(float(seconds))
        self._now += max(0.0, float(seconds))
        await asyncio.sleep(0)  # repro: allow(RPL106)

    async def wait_for(
        self, awaitable: Awaitable[T], timeout: Optional[float]
    ) -> Any:
        return await awaitable
