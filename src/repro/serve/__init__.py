"""Fault-tolerant simulation-as-a-service (DESIGN.md §17).

``repro.serve`` wraps the repo's deterministic experiment drivers in a
supervised HTTP job server: bounded admission (429), a certified
fingerprint-keyed result cache (byte-identical replays), a per-job
watchdog deadline ladder, seeded-backoff crash retries with a respawn
budget, and graceful drain that leaves resumable journals.  The layer
is chaos-tested against itself by :mod:`repro.serve.loadgen`.
"""

from repro.serve.cache import ResultCache
from repro.serve.clock import FakeServeClock, ServeClock
from repro.serve.loadgen import LoadGenerator, LoadPlan
from repro.serve.server import JobServer
from repro.serve.specs import JobSpec, execute_spec, parse_job_spec
from repro.serve.supervisor import (
    AdmissionError,
    DrainingError,
    Job,
    JobSupervisor,
    ProcessJobRunner,
    ServerPolicy,
)

__all__ = [
    "AdmissionError",
    "DrainingError",
    "FakeServeClock",
    "Job",
    "JobServer",
    "JobSpec",
    "JobSupervisor",
    "LoadGenerator",
    "LoadPlan",
    "ProcessJobRunner",
    "ResultCache",
    "ServeClock",
    "ServerPolicy",
    "execute_spec",
    "parse_job_spec",
]
