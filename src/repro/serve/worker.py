"""Child-process entry point for one supervised job.

The supervisor launches each attempt of a job as a separate OS process
running :func:`job_worker_main`.  The process boundary is the fault
isolation the service model needs: a worker that segfaults, gets
SIGKILLed by the chaos harness, or hits a deadline can be discarded
without taking the server down, and everything it had finished lives in
the job's journal, so the next attempt resumes instead of restarting.

Protocol with the supervisor (all files written via
:func:`~repro.durable.atomic_io.atomic_write`, so they are whole or
absent — never torn):

* ``result_path``: final outcome, ``{"status": "ok"|"interrupted"|
  "error", ...}``.  A *missing* result file after process exit means
  the worker crashed — the supervisor's retry ladder takes over.
* ``progress_path``: rewritten after every completed grid cell with
  ``{"cells_completed", "metrics"}``.  Doubles as the supervisor's
  heartbeat: a changing progress file beats the job's watchdog.

Exit codes: ``0`` ok, ``2`` deterministic error (no retry — the same
spec would fail the same way), ``3`` interrupted at a safe point
(journal is resumable), anything else (or a missing result file) is a
crash and re-enters the retry ladder.
"""

from __future__ import annotations

import json
import pathlib
import sys
import traceback
from typing import Any, Mapping, Optional


def _write_json(path: pathlib.Path, payload: Mapping[str, Any]) -> None:
    from repro.durable.atomic_io import atomic_write

    text = json.dumps(dict(payload), sort_keys=True, separators=(",", ":"))
    atomic_write(path, text.encode("utf-8"))


def job_worker_main(
    payload: Mapping[str, Any],
    journal_path: Optional[str],
    result_path: str,
    progress_path: str,
) -> None:
    """Run one job spec payload to completion inside this process."""
    from repro.durable.signals import GracefulShutdown
    from repro.errors import InterruptedRunError, ReproError
    from repro.obs.registry import MetricsRegistry
    from repro.serve.specs import journal_fingerprint, parse_job_spec

    result_file = pathlib.Path(result_path)
    progress_file = pathlib.Path(progress_path)
    metrics = MetricsRegistry()

    def on_progress(cells: int) -> None:
        _write_json(
            progress_file,
            {
                "cells_completed": cells,
                "metrics": metrics.snapshot(deterministic_only=False),
            },
        )

    journal = None
    try:
        spec = parse_job_spec(dict(payload))
        if journal_path is not None:
            from repro.durable.journal import RunJournal

            journal = RunJournal.open(
                journal_path, journal_fingerprint(spec), resume=True
            )
        from repro.serve.specs import execute_spec

        with GracefulShutdown(install=True) as shutdown:
            result = execute_spec(
                payload,
                journal=journal,
                shutdown=shutdown,
                metrics=metrics,
                progress=on_progress,
            )
        _write_json(result_file, {"status": "ok", "result": result})
    except InterruptedRunError as error:
        _write_json(
            result_file,
            {
                "status": "interrupted",
                "detail": str(error),
                "journal": journal_path,
            },
        )
        raise SystemExit(3)
    except ReproError as error:
        _write_json(
            result_file,
            {
                "status": "error",
                "category": type(error).__name__,
                "detail": str(error),
            },
        )
        raise SystemExit(2)
    except Exception:  # crash: no result file -> supervisor retries
        traceback.print_exc(file=sys.stderr)
        raise SystemExit(1)
    finally:
        if journal is not None:
            journal.close()
