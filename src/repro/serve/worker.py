"""Child-process entry point for one supervised job.

The supervisor launches each attempt of a job as a separate OS process
running :func:`job_worker_main`.  The process boundary is the fault
isolation the service model needs: a worker that segfaults, gets
SIGKILLed by the chaos harness, or hits a deadline can be discarded
without taking the server down, and everything it had finished lives in
the job's journal, so the next attempt resumes instead of restarting.

Protocol with the supervisor (all files written via
:func:`~repro.durable.atomic_io.atomic_write`, so they are whole or
absent — never torn):

* ``result_path``: final outcome, ``{"status": "ok"|"interrupted"|
  "error", ...}``.  A *missing* result file after process exit means
  the worker crashed — the supervisor's retry ladder takes over.
* ``progress_path``: rewritten after every completed grid cell with
  ``{"cells_completed", "metrics"}``.  Doubles as the supervisor's
  heartbeat: a changing progress file beats the job's watchdog.
* ``trace``: optional :class:`~repro.obs.causal.TraceContext` payload
  (also honored from the ``REPRO_TRACE_CONTEXT`` env var).  When
  present the worker appends its spans to the attempt's spill file —
  the ``worker.run`` span flows from the supervisor's attempt span,
  and ``run_ensemble`` emits per-seed/per-chunk records under it — and
  arms a :class:`~repro.obs.causal.FlightRecorder` that dumps the last
  N events on an in-process crash.

Exit codes: ``0`` ok, ``2`` deterministic error (no retry — the same
spec would fail the same way), ``3`` interrupted at a safe point
(journal is resumable), anything else (or a missing result file) is a
crash and re-enters the retry ladder.
"""

from __future__ import annotations

import json
import pathlib
import sys
import traceback
from contextlib import nullcontext
from typing import Any, Mapping, Optional


def _write_json(path: pathlib.Path, payload: Mapping[str, Any]) -> None:
    from repro.durable.atomic_io import atomic_write

    text = json.dumps(dict(payload), sort_keys=True, separators=(",", ":"))
    atomic_write(path, text.encode("utf-8"))


def job_worker_main(
    payload: Mapping[str, Any],
    journal_path: Optional[str],
    result_path: str,
    progress_path: str,
    trace: Optional[Mapping[str, Any]] = None,
) -> None:
    """Run one job spec payload to completion inside this process."""
    from repro.durable.signals import GracefulShutdown
    from repro.errors import InterruptedRunError, ReproError
    from repro.obs.causal import (
        CausalRecorder,
        FlightRecorder,
        TraceContext,
        install_causal_recorder,
        install_flight_recorder,
    )
    from repro.obs.registry import MetricsRegistry
    from repro.serve.clock import ServeClock
    from repro.serve.specs import journal_fingerprint, parse_job_spec

    result_file = pathlib.Path(result_path)
    progress_file = pathlib.Path(progress_path)
    metrics = MetricsRegistry()

    context = TraceContext.from_payload(trace)
    if context is None:
        context = TraceContext.from_env()
    causal = None
    flight = None
    if context is not None:
        flight = FlightRecorder(
            context={
                "trace": context.trace_id,
                "role": context.role,
                "attempt": context.attempt,
            }
        )
        install_flight_recorder(flight)
        if context.spill is not None:
            causal = CausalRecorder(
                context.spill,
                role=context.role,
                trace_id=context.trace_id,
                attempt=context.attempt,
                parent_id=context.parent_id,
                clock=ServeClock().monotonic,
                flight=flight,
            )
            install_causal_recorder(causal)
        flight.record(
            "health", "worker.start", attempt=context.attempt
        )

    def on_progress(cells: int) -> None:
        if flight is not None:
            flight.record(
                "metric", "worker.progress", volatile=True, cells=cells
            )
        _write_json(
            progress_file,
            {
                "cells_completed": cells,
                "metrics": metrics.snapshot(deterministic_only=False),
            },
        )

    def dump_flight(reason: str) -> None:
        if flight is not None and context is not None and context.flight:
            try:
                flight.dump(context.flight, reason)
            except OSError:
                pass  # a failed dump must never mask the real outcome

    run_span = (
        causal.span(
            "worker.run",
            key=f"attempt-{context.attempt}",
            flow=context.parent_id,
        )
        if causal is not None and context is not None
        else nullcontext()
    )
    journal = None
    try:
        spec = parse_job_spec(dict(payload))
        if journal_path is not None:
            from repro.durable.journal import RunJournal

            journal = RunJournal.open(
                journal_path, journal_fingerprint(spec), resume=True
            )
        from repro.serve.specs import execute_spec

        with GracefulShutdown(install=True) as shutdown:
            with run_span:
                result = execute_spec(
                    payload,
                    journal=journal,
                    shutdown=shutdown,
                    metrics=metrics,
                    progress=on_progress,
                )
        _write_json(result_file, {"status": "ok", "result": result})
    except InterruptedRunError as error:
        if flight is not None:
            flight.record("health", "worker.interrupted")
        _write_json(
            result_file,
            {
                "status": "interrupted",
                "detail": str(error),
                "journal": journal_path,
            },
        )
        raise SystemExit(3)
    except ReproError as error:
        if flight is not None:
            flight.record(
                "health", "worker.error", category=type(error).__name__
            )
        dump_flight("error")
        _write_json(
            result_file,
            {
                "status": "error",
                "category": type(error).__name__,
                "detail": str(error),
            },
        )
        raise SystemExit(2)
    except Exception as error:  # crash: no result file -> supervisor retries
        if flight is not None:
            flight.record(
                "health", "worker.crash", category=type(error).__name__
            )
        dump_flight("crash")
        traceback.print_exc(file=sys.stderr)
        raise SystemExit(1)
    finally:
        if journal is not None:
            journal.close()
        if causal is not None:
            causal.close()
