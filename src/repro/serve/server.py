"""Asyncio HTTP/JSON front end for the job supervisor.

A deliberately small HTTP/1.1 implementation on
``asyncio.start_server`` — stdlib only, one request per connection
(``Connection: close``), JSON in and out with sorted keys so response
bytes are deterministic.  The interesting behaviour all delegates to
:class:`~repro.serve.supervisor.JobSupervisor`; this layer only
translates outcomes to status codes:

========  ======================================  ====================
Method    Path                                    Outcome
========  ======================================  ====================
POST      ``/jobs``                               200 cache hit /
                                                  202 accepted /
                                                  400 bad spec /
                                                  429 + Retry-After /
                                                  503 draining
GET       ``/jobs``                               job list
GET       ``/jobs/<id>``                          job status + result
GET       ``/jobs/<id>/progress``                 worker obs snapshot
                                                  (``?wait=<s>`` holds
                                                  the reply until
                                                  progress advances)
GET       ``/jobs/<id>/trace``                    stitched causal trace
GET       ``/healthz``                            ok|draining + counts
GET       ``/metrics``                            Prometheus text
========  ======================================  ====================

``POST /jobs`` honors an ``X-Repro-Trace-Id`` header (8-64 hex chars);
absent one, the job's trace id is minted from its fingerprint.

Requests that trickle in slower than the policy's ``read_timeout``
(slow-loris) are answered 408 and closed — one stuck client never
pins a connection handler.  All timing runs through the injectable
:class:`~repro.serve.clock.ServeClock` (lint rule RPL106).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.serve.clock import ServeClock
from repro.serve.supervisor import (
    CANCELLED,
    DONE,
    FAILED,
    INTERRUPTED,
    RUNNING,
    AdmissionError,
    DrainingError,
    JobSupervisor,
)

_TERMINAL_STATES = (DONE, FAILED, INTERRUPTED, CANCELLED)


def _parse_query(query: str) -> Dict[str, str]:
    """Minimal query-string parse (last value wins; no unquoting needed
    for the numeric parameters this server accepts)."""
    params: Dict[str, str] = {}
    for piece in query.split("&"):
        if not piece:
            continue
        name, _, value = piece.partition("=")
        params[name] = value
    return params

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Request bodies past this are rejected 413 (spec payloads are small).
MAX_BODY = 1 << 20


class JobServer:
    """One listening socket in front of one supervisor."""

    def __init__(
        self,
        supervisor: JobSupervisor,
        host: str = "127.0.0.1",
        port: int = 0,
        clock: Optional[ServeClock] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        self.supervisor = supervisor
        self.host = host
        self.port = port
        self.clock = clock if clock is not None else supervisor.clock
        self._server: Optional[asyncio.AbstractServer] = None
        from repro.obs.registry import live_registry

        registry = live_registry(metrics)
        self._registry = registry
        if registry is not None:
            self._m_requests = registry.counter(
                "repro_serve_http_requests_total",
                "HTTP requests handled",
                deterministic=False,
            )
            self._m_latency = registry.histogram(
                "repro_serve_http_latency_seconds",
                buckets=(0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0),
                help="request handling latency",
                deterministic=False,
            )
        else:
            self._m_requests = None
            self._m_latency = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start serving (port 0 picks an ephemeral port,
        readable from :attr:`port` afterwards)."""
        self.supervisor.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def run_until_shutdown(self, shutdown: Any) -> None:
        """Serve until ``shutdown.requested`` flips, then drain."""
        if self._server is None:
            await self.start()
        while not shutdown.requested:
            await self.clock.aio_sleep(self.supervisor.policy.poll_interval)
        await self.stop()  # stop accepting before cancelling work
        await asyncio.get_event_loop().run_in_executor(
            None, self.supervisor.drain
        )

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        start = self.clock.monotonic()
        try:
            try:
                request = await self.clock.wait_for(
                    self._read_request(reader),
                    self.supervisor.policy.read_timeout,
                )
            except asyncio.TimeoutError:
                await self._respond(
                    writer, 408, {"error": "request read timed out"}
                )
                return
            except _BadRequest as error:
                await self._respond(writer, error.status, {"error": str(error)})
                return
            method, path, body, req_headers = request
            path, _, query = path.partition("?")
            response = await self._route_async(
                method, path, query, body, req_headers, start
            )
            status, payload, headers, raw = response
            await self._respond(writer, status, payload, headers, raw)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        except Exception as error:  # defensive: structured 500, no hang
            try:
                await self._respond(
                    writer, 500, {"error": f"internal error: {error!r}"}
                )
            except Exception:
                pass
        finally:
            if self._m_requests is not None:
                self._m_requests.inc()
                self._m_latency.observe(self.clock.monotonic() - start)
            try:
                writer.close()
            except Exception:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Optional[Dict[str, Any]], Dict[str, str]]:
        line = await reader.readline()
        if not line:
            raise _BadRequest(400, "empty request")
        try:
            method, path, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            raise _BadRequest(400, "malformed request line") from None
        headers: Dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            try:
                name, value = header.decode("latin-1").split(":", 1)
            except ValueError:
                raise _BadRequest(400, "malformed header") from None
            headers[name.strip().lower()] = value.strip()
        content_length = 0
        if "content-length" in headers:
            try:
                content_length = int(headers["content-length"])
            except ValueError:
                raise _BadRequest(400, "bad Content-Length") from None
        if content_length > MAX_BODY:
            raise _BadRequest(413, "request body too large")
        body: Optional[Dict[str, Any]] = None
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                body = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                raise _BadRequest(400, "request body is not valid JSON") from None
        return method.upper(), path, body, headers

    # ------------------------------------------------------------------
    async def _route_async(
        self,
        method: str,
        path: str,
        query: str,
        body: Optional[Dict[str, Any]],
        req_headers: Dict[str, str],
        start: float,
    ) -> Tuple[int, Optional[Dict[str, Any]], Dict[str, str], Optional[bytes]]:
        """Async routing shim: long-polls park here; everything else is
        the synchronous :meth:`_route` table."""
        if method == "GET" and path.startswith("/jobs/"):
            parts = path[len("/jobs/"):].split("/")
            if parts[1:] == ["progress"] and query:
                params = _parse_query(query)
                if "wait" in params:
                    job = self.supervisor.get(parts[0])
                    if job is None:
                        return (
                            404,
                            {"error": f"no such job {parts[0]!r}"},
                            {},
                            None,
                        )
                    return await self._progress_wait(job, params)
        return self._route(method, path, body, req_headers, start)

    async def _progress_wait(
        self, job: Any, params: Dict[str, str]
    ) -> Tuple[int, Optional[Dict[str, Any]], Dict[str, str], Optional[bytes]]:
        """``?wait=<seconds>`` long-poll: hold the request until the
        job's progress advances past ``since`` (default: its value at
        arrival), the job reaches a terminal state, or the clamped wait
        elapses — then answer with the normal progress body."""
        try:
            wait = float(params["wait"])
            since = int(params["since"]) if "since" in params else None
        except ValueError:
            return (
                400,
                {"error": "wait/since must be numeric"},
                {},
                None,
            )
        wait = max(0.0, min(wait, self.supervisor.policy.long_poll_max))
        deadline = self.clock.monotonic() + wait
        snapshot = self.supervisor.progress(job)
        baseline = (
            since
            if since is not None
            else int(snapshot.get("cells_completed", 0) or 0)
        )
        while True:
            snapshot = self.supervisor.progress(job)
            cells = int(snapshot.get("cells_completed", 0) or 0)
            if (
                job.state in _TERMINAL_STATES
                or cells > baseline
                or self.clock.monotonic() >= deadline
            ):
                snapshot["state"] = job.state
                return 200, snapshot, {}, None
            await self.clock.aio_sleep(self.supervisor.policy.poll_interval)

    def _route(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]],
        req_headers: Optional[Dict[str, str]] = None,
        start: Optional[float] = None,
    ) -> Tuple[int, Optional[Dict[str, Any]], Dict[str, str], Optional[bytes]]:
        headers: Dict[str, str] = {}
        req_headers = req_headers or {}
        if path == "/jobs" and method == "POST":
            if body is None:
                return 400, {"error": "POST /jobs requires a JSON body"}, headers, None
            try:
                job = self.supervisor.submit(
                    body, trace_id=req_headers.get("x-repro-trace-id")
                )
            except AdmissionError as error:
                headers["Retry-After"] = f"{error.retry_after:g}"
                return 429, {"error": str(error)}, headers, None
            except DrainingError as error:
                return 503, {"error": str(error)}, headers, None
            except ConfigurationError as error:
                return 400, {"error": str(error)}, headers, None
            status = 200 if job.cached else 202
            recorder = self.supervisor.causal
            if recorder is not None and job.trace_id is not None:
                # The request span is the root of the job's causal
                # timeline; admission/attempts flow from it by id.
                recorder.record(
                    "serve.request",
                    trace=job.trace_id,
                    role="server",
                    t0=start if start is not None else None,
                    t1=self.clock.monotonic(),
                    method=method,
                    path=path,
                    status=status,
                    job=job.id,
                )
            return status, {"job": job.view()}, headers, None
        if path == "/jobs" and method == "GET":
            return (
                200,
                {"jobs": [job.view() for job in self.supervisor.jobs()]},
                headers,
                None,
            )
        if path.startswith("/jobs/"):
            if method != "GET":
                return 405, {"error": "use GET"}, headers, None
            parts = path[len("/jobs/"):].split("/")
            job = self.supervisor.get(parts[0])
            if job is None:
                return 404, {"error": f"no such job {parts[0]!r}"}, headers, None
            if len(parts) == 1:
                return 200, {"job": job.view()}, headers, None
            if parts[1:] == ["progress"]:
                return 200, self.supervisor.progress(job), headers, None
            if parts[1:] == ["trace"]:
                stitched = self.supervisor.trace_view(job)
                if stitched is None:
                    return (
                        404,
                        {"error": "tracing disabled (no workdir)"},
                        headers,
                        None,
                    )
                return 200, stitched, headers, None
            return 404, {"error": f"no such endpoint {path!r}"}, headers, None
        if path == "/healthz" and method == "GET":
            counts = self.supervisor.counts()
            workers = [
                {"job": job.id, "pid": job.worker_pid}
                for job in self.supervisor.jobs()
                if job.state == RUNNING and job.worker_pid is not None
            ]
            return (
                200,
                {
                    "status": (
                        "draining" if self.supervisor.draining else "ok"
                    ),
                    "jobs": counts,
                    "workers": workers,
                    "cache": self.supervisor.cache.stats(),
                },
                headers,
                None,
            )
        if path == "/metrics" and method == "GET":
            if self._registry is None:
                return 404, {"error": "metrics registry disabled"}, headers, None
            text = self._registry.render_prometheus()
            if not text.endswith("\n"):
                text += "\n"  # scrapers require a trailing newline
            headers["Content-Type"] = (
                "text/plain; version=0.0.4; charset=utf-8"
            )
            return 200, None, headers, text.encode("utf-8")
        return 404, {"error": f"no such endpoint {method} {path}"}, headers, None

    # ------------------------------------------------------------------
    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Optional[Dict[str, Any]],
        headers: Optional[Dict[str, str]] = None,
        raw: Optional[bytes] = None,
    ) -> None:
        headers = dict(headers or {})
        if raw is None:
            raw = (
                json.dumps(payload, sort_keys=True, separators=(",", ":"))
                + "\n"
            ).encode("utf-8")
            headers.setdefault("Content-Type", "application/json")
        headers["Content-Length"] = str(len(raw))
        headers["Connection"] = "close"
        reason = _REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}"]
        head.extend(f"{name}: {value}" for name, value in headers.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(raw)
        await writer.drain()


class _BadRequest(Exception):
    def __init__(self, status: int, message: str) -> None:
        self.status = status
        super().__init__(message)
