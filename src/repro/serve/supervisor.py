"""Supervised job pool: admission control, retry ladder, drain.

This is the robustness core of ``repro.serve``.  The HTTP layer above
it is a thin translator; every guarantee the service makes lives here:

* **Bounded admission.**  The queue holds at most
  :attr:`ServerPolicy.max_queue` jobs.  A submission past that raises
  :class:`AdmissionError` (HTTP 429 + ``Retry-After``) instead of
  growing memory without bound — load is shed explicitly, never
  absorbed silently.
* **Coalescing.**  A submission whose fingerprint matches a queued or
  running job attaches to it instead of running twice; a fingerprint
  already in the :class:`~repro.serve.cache.ResultCache` is served
  instantly with ``cached: true``.  Duplicate floods therefore cost
  one run, total.
* **Supervision.**  Each attempt runs in a worker *process*
  (:mod:`repro.serve.worker`); one
  :class:`~repro.durable.watchdog.EnsembleWatchdog` per job spans all
  attempts, so the stall → reroute → abandon ladder and the wall-clock
  deadline cover the job, not the attempt.  A stalled worker is killed
  and rerouted (WD001); the spent budget abandons the job (WD002/
  WD003) as a structured timeout failure.
* **Retry ladder.**  Crashed attempts (missing result file — SIGKILL,
  segfault, OOM) respawn under a server-wide budget that mirrors
  ``run_with_recovery``'s lineage accounting, after a **seeded
  deterministic** exponential backoff
  (:func:`repro.experiments.ensemble.backoff_delay`, seeded from the
  job fingerprint — no wall-clock entropy).  Deterministic errors
  (``ReproError`` in the spec itself) fail immediately: the same spec
  would fail the same way.
* **Drain.**  :meth:`JobSupervisor.drain` stops admissions, cancels
  queued jobs with a structured outcome, and SIGTERMs running workers,
  whose :class:`~repro.durable.signals.GracefulShutdown` stops them at
  the next cell boundary with the journal flushed — the job reports
  ``interrupted`` with a journal path from which ``--resume``
  reproduces the finished report byte-identically.

All timing goes through the injectable
:class:`~repro.serve.clock.ServeClock` (lint rule RPL106), which is
what makes every one of these behaviours unit-testable without real
sleeping.
"""

from __future__ import annotations

import json
import pathlib
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional

from repro.errors import ConfigurationError, ReproError
from repro.obs.causal import (
    TRACE_ID_RE,
    CausalRecorder,
    FlightRecorder,
    find_spills,
    mint_trace_id,
    span_id,
    stitch_spills,
)
from repro.serve.cache import ResultCache
from repro.serve.clock import ServeClock
from repro.serve.specs import JobSpec, parse_job_spec

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
INTERRUPTED = "interrupted"
CANCELLED = "cancelled"

_TERMINAL = (DONE, FAILED, INTERRUPTED, CANCELLED)


class AdmissionError(ReproError):
    """Queue full — the HTTP layer maps this to 429 + Retry-After."""

    def __init__(self, retry_after: float) -> None:
        self.retry_after = retry_after
        super().__init__(
            f"admission queue full; retry after {retry_after:g}s"
        )


class DrainingError(ReproError):
    """Server is draining — the HTTP layer maps this to 503."""

    def __init__(self) -> None:
        super().__init__("server is draining; not accepting new jobs")


@dataclass(frozen=True)
class ServerPolicy:
    """Service-level limits (all wall-clock values in seconds).

    Attributes:
        max_queue: Bound on jobs waiting for a worker (429 past it).
        workers: Supervisor worker threads (= concurrent jobs).
        job_deadline: Total wall-clock budget per job across attempts
            (``None`` disables; maps to watchdog WD003).
        stall_timeout: Heartbeat window — no progress-file change for
            this long counts as a stall (``None`` disables; WD001).
        max_reroutes: Stalls answered with kill+respawn before the next
            stall abandons the job (WD002).
        max_attempts: Ceiling on attempts per job (crash respawns).
        respawn_budget: Server-wide crash respawn budget (lineage
            accounting: every crash anywhere draws from it).
        backoff_base: Base delay for the seeded exponential backoff
            between crash retries.
        poll_interval: Supervisor polling granularity.
        retry_after: Hint returned with 429 rejections.
        drain_grace: Seconds a SIGTERMed worker gets to reach a safe
            point before SIGKILL.
        read_timeout: HTTP request read budget (slow-loris cutoff).
        long_poll_max: Ceiling on ``GET /jobs/<id>/progress?wait=``
            long-poll holds (requests asking for more are clamped).
    """

    max_queue: int = 8
    workers: int = 2
    job_deadline: Optional[float] = None
    stall_timeout: Optional[float] = None
    max_reroutes: int = 1
    max_attempts: int = 3
    respawn_budget: int = 8
    backoff_base: float = 0.05
    poll_interval: float = 0.05
    retry_after: float = 1.0
    drain_grace: float = 5.0
    read_timeout: float = 5.0
    long_poll_max: float = 10.0


@dataclass
class Job:
    """One admitted submission and everything that happened to it."""

    id: str
    spec: JobSpec
    index: int
    state: str = QUEUED
    cached: bool = False
    attempts: int = 0
    result: Optional[Dict[str, Any]] = None
    digest: Optional[str] = None
    error: Optional[str] = None
    journal_path: Optional[str] = None
    progress_path: Optional[str] = None
    worker_pid: Optional[int] = None
    trace_id: Optional[str] = None
    findings: List[str] = field(default_factory=list)

    def view(self) -> Dict[str, Any]:
        """JSON-safe status view (the ``GET /jobs/<id>`` body)."""
        view: Dict[str, Any] = {
            "id": self.id,
            "kind": self.spec.kind,
            "fingerprint": self.spec.fingerprint,
            "state": self.state,
            "cached": self.cached,
            "attempts": self.attempts,
        }
        if self.digest is not None:
            view["digest"] = self.digest
        if self.result is not None:
            view["result"] = self.result
        if self.error is not None:
            view["error"] = self.error
        if self.journal_path is not None:
            view["journal"] = self.journal_path
        if self.worker_pid is not None:
            view["worker_pid"] = self.worker_pid
        if self.trace_id is not None:
            view["trace"] = self.trace_id
        if self.findings:
            view["findings"] = list(self.findings)
        return view


class ProcessJobRunner:
    """Runs one attempt in a child process under watchdog supervision.

    Returns an outcome dict: ``{"status": "ok"|"error"|"interrupted"|
    "crash"|"stalled"|"deadline", ...}``.  ``crash``/``stalled`` feed
    the supervisor's retry ladder; the rest are final for the job.
    """

    def __init__(self, policy: ServerPolicy, clock: ServeClock) -> None:
        self._policy = policy
        self._clock = clock

    def run(
        self,
        job: Job,
        watchdog: Any,
        should_stop: Callable[[], bool],
    ) -> Dict[str, Any]:
        import multiprocessing

        from repro.durable.watchdog import ABANDON, REROUTE
        from repro.serve.worker import job_worker_main

        jobdir = pathlib.Path(str(job.progress_path)).parent
        result_file = jobdir / f"result-{job.attempts}.json"
        if result_file.exists():
            result_file.unlink()
        # Trace context rides as an explicit Process arg (not the
        # environment) so concurrent jobs can never race each other's
        # context; ids are derivable on both sides of the fork.
        trace = None
        if job.trace_id is not None:
            trace = {
                "trace": job.trace_id,
                "role": "worker",
                "attempt": job.attempts,
                "parent": span_id(
                    job.trace_id, "serve.attempt", f"attempt-{job.attempts}"
                ),
                "spill": str(jobdir / f"attempt-{job.attempts}.spans.jsonl"),
                "flight": str(
                    jobdir / f"flight-worker-attempt-{job.attempts}.json"
                ),
            }
        context = multiprocessing.get_context()
        proc = context.Process(
            target=job_worker_main,
            args=(
                job.spec.payload(),
                job.journal_path,
                str(result_file),
                job.progress_path,
                trace,
            ),
            daemon=False,
        )
        proc.start()
        job.worker_pid = proc.pid
        progress_file = pathlib.Path(str(job.progress_path))
        last_progress = self._read_bytes(progress_file)
        stopped = False
        try:
            while proc.is_alive():
                if should_stop() and not stopped:
                    stopped = True
                    proc.terminate()  # SIGTERM -> GracefulShutdown
                    proc.join(self._policy.drain_grace)
                    if proc.is_alive():
                        proc.kill()
                    break
                proc.join(self._policy.poll_interval)
                current = self._read_bytes(progress_file)
                if current != last_progress:
                    last_progress = current
                    watchdog.beat()
                    continue
                if not proc.is_alive():
                    break
                decision = watchdog.on_wait_elapsed(pending=1)
                if decision == REROUTE:
                    proc.kill()
                    return {"status": "stalled"}
                if decision == ABANDON:
                    proc.kill()
                    return {"status": "deadline"}
            proc.join()
        finally:
            if proc.is_alive():
                proc.kill()
                proc.join()
        outcome = self._read_result(result_file)
        if outcome is None:
            return {"status": "crash", "exitcode": proc.exitcode}
        return outcome

    @staticmethod
    def _read_bytes(path: pathlib.Path) -> bytes:
        try:
            return path.read_bytes()
        except OSError:
            return b""

    @staticmethod
    def _read_result(path: pathlib.Path) -> Optional[Dict[str, Any]]:
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None


class JobSupervisor:
    """Admission queue + worker threads + per-job escalation ladder."""

    def __init__(
        self,
        policy: Optional[ServerPolicy] = None,
        cache: Optional[ResultCache] = None,
        workdir: Optional[pathlib.Path] = None,
        clock: Optional[ServeClock] = None,
        metrics: Optional[Any] = None,
        runner: Optional[Any] = None,
    ) -> None:
        self.policy = policy if policy is not None else ServerPolicy()
        self.clock = clock if clock is not None else ServeClock()
        self.workdir = pathlib.Path(workdir) if workdir else None
        if self.workdir is not None:
            self.workdir.mkdir(parents=True, exist_ok=True)
        if cache is not None:
            self.cache = cache
        else:
            cache_dir = (
                self.workdir / "cache" if self.workdir is not None else None
            )
            self.cache = ResultCache(cache_dir)
        self.runner = (
            runner
            if runner is not None
            else ProcessJobRunner(self.policy, self.clock)
        )
        # Causal tracing + flight recorder for the supervisor/server
        # process.  Both need a workdir (spill and dump files); without
        # one they stay None and every hook below is a no-op.
        self.causal: Optional[CausalRecorder] = None
        self.flight: Optional[FlightRecorder] = None
        if self.workdir is not None:
            self.causal = CausalRecorder(
                self.workdir / "trace" / "supervisor.spans.jsonl",
                role="supervisor",
                clock=self.clock.monotonic,
            )
            self.flight = FlightRecorder(context={"role": "supervisor"})
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: Deque[Job] = deque()
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, Job] = {}  # fingerprint -> active job
        self._counter = 0
        self._draining = False
        self._respawns_left = self.policy.respawn_budget
        self._threads: List[threading.Thread] = []
        from repro.obs.registry import live_registry

        registry = live_registry(metrics)
        self._metrics = registry
        if registry is not None:
            kwargs = {"deterministic": False}
            self._m = {
                "submitted": registry.counter(
                    "repro_serve_jobs_submitted_total",
                    "job submissions admitted", **kwargs),
                "rejected": registry.counter(
                    "repro_serve_jobs_rejected_total",
                    "submissions shed with 429", **kwargs),
                "completed": registry.counter(
                    "repro_serve_jobs_completed_total",
                    "jobs finished ok", **kwargs),
                "failed": registry.counter(
                    "repro_serve_jobs_failed_total",
                    "jobs failed terminally", **kwargs),
                "cancelled": registry.counter(
                    "repro_serve_jobs_cancelled_total",
                    "queued jobs cancelled by drain", **kwargs),
                "retries": registry.counter(
                    "repro_serve_job_retries_total",
                    "crash/stall respawns", **kwargs),
                "cache_hits": registry.counter(
                    "repro_serve_cache_hits_total",
                    "submissions served from the certified cache", **kwargs),
                "cache_mismatches": registry.gauge(
                    "repro_serve_cache_mismatches",
                    "write-once digest collisions (determinism alarms)",
                    **kwargs),
                "queued": registry.gauge(
                    "repro_serve_queue_depth", "jobs waiting", **kwargs),
                "running": registry.gauge(
                    "repro_serve_jobs_running", "jobs executing", **kwargs),
            }
        else:
            self._m = None

    # ------------------------------------------------------------------
    def _count(self, name: str, value: Optional[float] = None) -> None:
        if self._m is None:
            return
        if value is None:
            self._m[name].inc()
        else:
            self._m[name].set(value)

    def _gauges(self) -> None:
        if self._m is not None:
            self._m["queued"].set(len(self._queue))
            self._m["running"].set(
                sum(1 for j in self._jobs.values() if j.state == RUNNING)
            )
            self._m["cache_mismatches"].set(self.cache.mismatches)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spin up the worker threads (idempotent)."""
        if self._threads:
            return
        for index in range(self.policy.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def submit(
        self, payload: Mapping[str, Any], trace_id: Optional[str] = None
    ) -> Job:
        """Admit one submission (validation errors propagate as
        :class:`~repro.errors.ConfigurationError` → HTTP 400).

        ``trace_id`` is an externally supplied correlation id (the
        ``X-Repro-Trace-Id`` header); absent one, the job's trace id is
        minted deterministically from its fingerprint.
        """
        spec = parse_job_spec(dict(payload))
        if trace_id is not None and not TRACE_ID_RE.match(trace_id):
            raise ConfigurationError(
                f"invalid trace id {trace_id!r}: want 8-64 lowercase hex "
                f"characters"
            )
        tid = trace_id if trace_id is not None else mint_trace_id(
            spec.fingerprint
        )
        with self._lock:
            if self._draining:
                raise DrainingError()
            hit = self.cache.get(spec.fingerprint)
            if hit is not None:
                self._counter += 1
                job = Job(
                    id=f"job-{self._counter:04d}",
                    spec=spec,
                    index=self._counter,
                    state=DONE,
                    cached=True,
                    result=hit["result"],
                    digest=hit["digest"],
                    trace_id=tid,
                )
                self._jobs[job.id] = job
                self._count("cache_hits")
                return job
            existing = self._inflight.get(spec.fingerprint)
            if existing is not None:
                return existing
            if len(self._queue) >= self.policy.max_queue:
                self._count("rejected")
                raise AdmissionError(self.policy.retry_after)
            self._counter += 1
            job = Job(
                id=f"job-{self._counter:04d}",
                spec=spec,
                index=self._counter,
                trace_id=tid,
            )
            if self.workdir is not None:
                jobdir = self.workdir / "jobs" / job.id
                jobdir.mkdir(parents=True, exist_ok=True)
                job.progress_path = str(jobdir / "progress.json")
                journal_dir = self.workdir / "journal"
                journal_dir.mkdir(parents=True, exist_ok=True)
                job.journal_path = str(
                    journal_dir / f"{spec.fingerprint}.jsonl"
                )
            queue_depth = len(self._queue)
            self._jobs[job.id] = job
            self._inflight[spec.fingerprint] = job
            self._queue.append(job)
            self._count("submitted")
            self._gauges()
            self._wakeup.notify()
        if self.causal is not None:
            now = self.clock.monotonic()
            self.causal.record(
                "serve.admission",
                trace=tid,
                parent=span_id(tid, "serve.request"),
                flow=span_id(tid, "serve.request"),
                t0=now,
                t1=now,
                job=job.id,
                queue=queue_depth,
            )
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def progress(self, job: Job) -> Dict[str, Any]:
        """Latest worker progress snapshot (obs metrics included)."""
        base = {"id": job.id, "state": job.state, "cells_completed": 0}
        if job.progress_path is None:
            return base
        try:
            snapshot = json.loads(
                pathlib.Path(job.progress_path).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return base
        base.update(snapshot)
        return base

    def trace_view(self, job: Job) -> Optional[Dict[str, Any]]:
        """Stitch every spill touching ``job`` into one Chrome/Perfetto
        ``traceEvents`` payload (the ``GET /jobs/<id>/trace`` body).

        Merges the server/supervisor spill with the job's per-attempt
        worker spills and filters by the job's trace id, so a retried
        job comes back as one causal timeline.  ``None`` when tracing
        is off (no workdir or no trace id).
        """
        if job.trace_id is None or self.workdir is None:
            return None
        paths = list(find_spills(self.workdir / "trace"))
        if job.progress_path is not None:
            jobdir = pathlib.Path(str(job.progress_path)).parent
            paths.extend(find_spills(jobdir))
        return stitch_spills(paths, mode="wall", trace_id=job.trace_id)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            states = [job.state for job in self._jobs.values()]
        return {
            "queued": states.count(QUEUED),
            "running": states.count(RUNNING),
            "done": states.count(DONE),
            "failed": states.count(FAILED),
            "interrupted": states.count(INTERRUPTED),
            "cancelled": states.count(CANCELLED),
        }

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Stop admissions, cancel the queue, stop running workers at
        their next safe point, and wait for the worker threads."""
        with self._lock:
            if self._draining:
                return
            self._draining = True
            while self._queue:
                job = self._queue.popleft()
                job.state = CANCELLED
                job.error = "server draining; job cancelled before start"
                self._inflight.pop(job.spec.fingerprint, None)
                self._count("cancelled")
            self._gauges()
            self._wakeup.notify_all()
        for thread in self._threads:
            thread.join(self.policy.drain_grace + 10.0)

    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._draining:
                    self._wakeup.wait(0.2)
                if self._draining and not self._queue:
                    return
                job = self._queue.popleft()
                job.state = RUNNING
                self._gauges()
            try:
                self._run_job(job)
            except Exception as error:  # defensive: never kill the loop
                job.state = FAILED
                job.error = f"supervisor failure: {error!r}"
                self._count("failed")
            finally:
                with self._lock:
                    self._inflight.pop(job.spec.fingerprint, None)
                    self._gauges()

    def _run_job(self, job: Job) -> None:
        from repro.durable.watchdog import EnsembleWatchdog, WatchdogPolicy
        from repro.experiments.ensemble import backoff_delay

        watchdog = EnsembleWatchdog(
            WatchdogPolicy(
                heartbeat_timeout=self.policy.stall_timeout,
                deadline=self.policy.job_deadline,
                max_reroutes=self.policy.max_reroutes,
            ),
            clock=self.clock.monotonic,
            metrics=self._metrics,
        )
        watchdog.start()
        backoff_seed = int(job.spec.fingerprint[:8], 16)
        tid = job.trace_id
        admission = span_id(tid, "serve.admission") if tid else None
        while True:
            job.attempts += 1
            t0 = self.clock.monotonic()
            outcome = self.runner.run(job, watchdog, self._should_stop)
            t1 = self.clock.monotonic()
            job.findings.extend(str(f) for f in watchdog.findings)
            watchdog.findings.clear()
            status = outcome.get("status")
            if self.causal is not None and tid is not None:
                # Attempt N flows from attempt N-1 (retries chain into
                # one causal timeline); the first flows from admission.
                flow = (
                    admission
                    if job.attempts == 1
                    else span_id(
                        tid, "serve.attempt", f"attempt-{job.attempts - 1}"
                    )
                )
                self.causal.record(
                    "serve.attempt",
                    key=f"attempt-{job.attempts}",
                    trace=tid,
                    parent=admission,
                    flow=flow,
                    t0=t0,
                    t1=t1,
                    job=job.id,
                    attempt=job.attempts,
                    status=status,
                )
            if self.flight is not None:
                self.flight.record(
                    "health",
                    "serve.attempt",
                    job=job.id,
                    attempt=job.attempts,
                    status=status,
                )
            if status == "ok":
                result = outcome["result"]
                mismatches_before = self.cache.mismatches
                job.digest = self.cache.put(job.spec.fingerprint, result)
                if (
                    self.flight is not None
                    and self.cache.mismatches > mismatches_before
                ):
                    # Determinism alarm: the same fingerprint produced
                    # different bytes than the cached run.
                    self.flight.record(
                        "alarm", "cache.mismatch", job=job.id
                    )
                    self._dump_flight(job, "digest-mismatch")
                job.result = result
                job.state = DONE
                self._count("completed")
                return
            if status == "interrupted":
                job.state = INTERRUPTED
                job.error = outcome.get("detail", "interrupted")
                job.journal_path = outcome.get("journal", job.journal_path)
                return
            if status == "error":
                job.state = FAILED
                job.error = (
                    f"{outcome.get('category', 'ReproError')}: "
                    f"{outcome.get('detail', '')}"
                )
                self._count("failed")
                return
            if status == "deadline":
                job.state = FAILED
                job.error = (
                    "job exceeded its wall-clock deadline "
                    "(watchdog WD002/WD003); journal kept for --resume"
                )
                self._count("failed")
                return
            if self._should_stop():
                # Crash observed while draining: keep the journal.
                job.state = INTERRUPTED
                job.error = "server draining; attempt stopped"
                return
            # crash or stall: the retry ladder.
            with self._lock:
                self._respawns_left -= 1
                budget_left = self._respawns_left
            retryable = (
                job.attempts < self.policy.max_attempts and budget_left >= 0
            )
            if not retryable:
                job.state = FAILED
                reason = (
                    "respawn budget exhausted"
                    if budget_left < 0
                    else f"failed after {job.attempts} attempt(s)"
                )
                job.error = f"worker {status} ({reason}); journal kept"
                self._count("failed")
                self._dump_flight(job, f"{status}-ladder-exhausted")
                return
            self._count("retries")
            delay = backoff_delay(
                self.policy.backoff_base,
                job.attempts,
                chunk_index=job.index,
                seed=backoff_seed,
            )
            if self.flight is not None:
                # The backoff delay is seeded from the fingerprint, so
                # this event (and the dump below) is deterministic
                # given the job's seed, SIGKILL timing notwithstanding.
                self.flight.record(
                    "health",
                    "serve.retry",
                    job=job.id,
                    attempt=job.attempts,
                    status=status,
                    delay=round(delay, 6),
                )
            reason = (
                "stall-reroute" if status == "stalled" else "retry-escalation"
            )
            self._dump_flight(job, reason)
            self.clock.sleep(delay)

    def _dump_flight(self, job: Job, reason: str) -> None:
        """Auto-dump the flight recorder next to the job's artifacts."""
        if self.flight is None or job.progress_path is None:
            return
        jobdir = pathlib.Path(str(job.progress_path)).parent
        try:
            self.flight.dump(
                jobdir / f"flight-supervisor-attempt-{job.attempts}.json",
                reason,
            )
        except OSError:
            pass  # a failed dump must never take down the ladder

    def _should_stop(self) -> bool:
        with self._lock:
            return self._draining
