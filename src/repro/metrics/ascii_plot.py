"""Terminal line plots.

The paper's "figures" regenerate in a terminal: each benchmark prints an
ASCII chart of its measured series next to the theoretical curve, so the
shape comparison (linear vs √, crossovers) is visible without a display
server or plotting dependency.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.errors import ConfigurationError

_MARKERS = "*+x o#@%"


def ascii_plot(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    logy: bool = False,
    title: str = "",
) -> str:
    """Render one or more y-series against shared x values.

    Args:
        xs: Shared x coordinates (need not be evenly spaced).
        series: Name -> y values (same length as ``xs``); up to 8 series,
            each drawn with its own marker.
        width/height: Plot grid size in characters.
        logy: Plot log10(y) (non-positive values are dropped).
        title: Optional heading line.

    Returns:
        The chart plus a marker legend, as a string.
    """
    if not series:
        raise ConfigurationError("need at least one series")
    if len(series) > len(_MARKERS):
        raise ConfigurationError(f"at most {len(_MARKERS)} series supported")
    xs = [float(x) for x in xs]
    if len(xs) < 2:
        raise ConfigurationError("need at least two x values")

    points = []  # (x, y, marker_index)
    for index, (name, ys) in enumerate(series.items()):
        if len(ys) != len(xs):
            raise ConfigurationError(
                f"series {name!r} has {len(ys)} values for {len(xs)} xs"
            )
        for x, y in zip(xs, ys):
            y = float(y)
            if logy:
                if y <= 0:
                    continue
                y = math.log10(y)
            if math.isfinite(y):
                points.append((x, y, index))
    if not points:
        raise ConfigurationError("no plottable points (all non-finite/dropped)")

    x_lo, x_hi = min(xs), max(xs)
    y_lo = min(p[1] for p in points)
    y_hi = max(p[1] for p in points)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, marker_index in points:
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = _MARKERS[marker_index]

    y_label = "log10(y)" if logy else "y"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:>10.3g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{y_lo:>10.3g} +" + "-" * width + "+")
    lines.append(f"{'':>11} x: [{x_lo:.3g}, {x_hi:.3g}]   y-axis: {y_label}")
    legend = "   ".join(
        f"{_MARKERS[i]} = {name}" for i, name in enumerate(series.keys())
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)
