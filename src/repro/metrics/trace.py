"""Convergence-trajectory utilities.

Slowdown — the paper's central measured quantity — is a ratio of
iteration counts: how many iterations the attacked/asynchronous run
needs to reach a target distance, versus the sequential baseline.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError


def _trajectory(distances: Sequence[float], name: str) -> np.ndarray:
    """Validate a distance trajectory: empty input is a caller bug (there
    is no iteration 0 to compare against), surfaced as a clear
    ``ValueError`` rather than a silent ``None`` or a bare
    ``IndexError`` deep inside numpy.  Parameter errors (bad targets)
    stay :class:`ConfigurationError`; the two are deliberately distinct
    exception types."""
    array = np.asarray(list(distances), dtype=float)
    if array.size == 0:
        raise ValueError(
            f"empty {name} trajectory: need at least the starting point"
        )
    return array


def iterations_to_reach(
    distances: Sequence[float], target_distance: float
) -> Optional[int]:
    """First index t with distances[t] ≤ target, or ``None`` if never.

    ``distances`` is a distance-to-optimum trajectory indexed by
    iteration (entry 0 = starting point).  Raises ``ValueError`` for an
    empty trajectory.
    """
    if target_distance < 0:
        raise ConfigurationError(
            f"target_distance must be >= 0, got {target_distance}"
        )
    array = _trajectory(distances, "distances")
    hits = np.nonzero(array <= target_distance)[0]
    return int(hits[0]) if hits.size else None


def iterations_to_stay_below(
    distances: Sequence[float], target_distance: float
) -> Optional[int]:
    """First index t such that distances[s] ≤ target for *all* s ≥ t.

    Algorithm 1 only guarantees *visiting* the success region; an
    adversary can knock the iterate back out with stale updates (that is
    Theorem 5.1's whole point).  Sustained convergence — relevant for the
    lower-bound measurements — is this "stays below" time, immune to
    transient dips inside an attack round.
    """
    if target_distance < 0:
        raise ConfigurationError(
            f"target_distance must be >= 0, got {target_distance}"
        )
    array = _trajectory(distances, "distances")
    above = np.nonzero(array > target_distance)[0]
    if above.size == 0:
        return 0
    first = int(above[-1]) + 1
    return first if first < array.size else None


def slowdown_ratio(
    attacked_distances: Sequence[float],
    baseline_distances: Sequence[float],
    target_distance: float,
) -> Optional[float]:
    """Iterations-to-target ratio: attacked / baseline.

    Returns ``None`` when either trajectory never reaches the target
    (the attacked run "failing to converge" is reported as None rather
    than infinity so callers can count it separately).  Empty
    trajectories raise ``ValueError`` — there is no ratio to report and
    no run to have failed.
    """
    _trajectory(attacked_distances, "attacked_distances")
    _trajectory(baseline_distances, "baseline_distances")
    attacked = iterations_to_reach(attacked_distances, target_distance)
    baseline = iterations_to_reach(baseline_distances, target_distance)
    if attacked is None or baseline is None or baseline == 0:
        return None
    return attacked / baseline


def parallel_wallclock(thread_steps: Sequence[int]) -> int:
    """Idealized parallel wall-clock of an execution: the maximum number
    of steps any single thread executed.

    Section 8: "up to n iterations may happen in parallel at any time,
    reducing the wall-clock convergence time by up to a factor of n".
    Logical time in the simulator serializes every step; on a real
    machine the threads run concurrently, so the critical path is the
    busiest thread.
    """
    steps = [int(s) for s in thread_steps]
    if not steps:
        raise ConfigurationError("need at least one thread's step count")
    return max(steps)


def parallel_speedup(total_steps: int, thread_steps: Sequence[int]) -> float:
    """total work / critical path — the wall-clock speedup an ideal
    n-way parallel execution of this schedule would realize (≤ n, with
    equality only for perfectly balanced schedules)."""
    wallclock = parallel_wallclock(thread_steps)
    if total_steps < wallclock:
        raise ConfigurationError(
            f"total_steps ({total_steps}) < critical path ({wallclock})"
        )
    return total_steps / wallclock if wallclock else 1.0


def log_progress_rate(distances: Sequence[float]) -> float:
    """Average per-iteration log-contraction: −(log d_T − log d_0)/T.

    Larger is faster; the Theorem 5.1 analysis compares exactly these
    rates (log((1−α)^τ) vs log(α/2) per attack round).  Zero-distance
    entries are clipped to avoid −inf.
    """
    array = _trajectory(distances, "distances")
    if array.size < 2:
        raise ConfigurationError("need at least two trajectory points")
    clipped = np.maximum(array, 1e-300)
    return -(np.log(clipped[-1]) - np.log(clipped[0])) / (array.size - 1)
