"""Measurement, estimation and reporting utilities.

* :mod:`repro.metrics.stats` — Wilson confidence intervals and summary
  statistics for Monte-Carlo estimates.
* :mod:`repro.metrics.hitting` — success-region hitting times and
  failure-probability estimation over seeded run ensembles (the measured
  counterpart of every P(F_T) bound).
* :mod:`repro.metrics.trace` — convergence-trajectory utilities
  (iterations-to-target, empirical slowdown factors).
* :mod:`repro.metrics.report` — plain-text tables and the Figure-1
  applied/pending update matrix renderer.
* :mod:`repro.metrics.ascii_plot` — terminal line plots so "figures"
  regenerate without a display server.
"""

from repro.metrics.stats import Summary, mean_confidence_interval, summarize, wilson_interval
from repro.metrics.hitting import FailureEstimate, estimate_failure_probability
from repro.metrics.trace import iterations_to_reach, slowdown_ratio
from repro.metrics.report import Table, render_update_matrix
from repro.metrics.ascii_plot import ascii_plot
from repro.metrics.serialize import dump_records, load_records

__all__ = [
    "Summary",
    "summarize",
    "wilson_interval",
    "mean_confidence_interval",
    "FailureEstimate",
    "estimate_failure_probability",
    "iterations_to_reach",
    "slowdown_ratio",
    "Table",
    "render_update_matrix",
    "ascii_plot",
    "dump_records",
    "load_records",
]
