"""Plain-text reporting: benchmark tables and the Figure-1 matrix.

Benchmarks print the same rows the paper's claims describe;
:class:`Table` keeps that output aligned and diff-friendly.
:func:`render_update_matrix` regenerates Figure 1 — the applied/pending
update picture of a live execution — as ASCII, from real iteration
records rather than a drawing.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.runtime.events import IterationRecord


class Table:
    """A fixed-header, aligned plain-text table.

    Example:
        >>> table = Table(["tau", "slowdown"])
        >>> table.add_row([8, 3.91])
        >>> print(table.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        if not headers:
            raise ConfigurationError("a table needs at least one column")
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, values: Sequence) -> None:
        """Append a row; floats are rendered with 4 significant digits."""
        if len(values) != len(self.headers):
            raise ConfigurationError(
                f"expected {len(self.headers)} values, got {len(values)}"
            )
        rendered = []
        for value in values:
            if isinstance(value, bool):
                rendered.append("yes" if value else "no")
            elif isinstance(value, float):
                rendered.append(f"{value:.4g}")
            else:
                rendered.append(str(value))
        self.rows.append(rendered)

    def render(self) -> str:
        """The aligned table as a string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def render_update_matrix(
    records: Sequence[IterationRecord],
    dim: int,
    at_time: Optional[int] = None,
    max_rows: int = 40,
) -> str:
    """Figure 1 as ASCII: rows are iterations (in the first-update total
    order), columns are model components; each cell shows that
    component's update status as observed at ``at_time``:

    * ``#`` — update applied to shared memory (the paper's red),
    * ``o`` — update generated but still pending (the paper's black),
    * ``x`` — update rejected by an epoch guard,
    * ``.`` — the gradient was zero on this component (no update).

    The per-row ``<- t=...`` annotation marks each iteration's first
    update time; summing the ``#`` cells column-wise reproduces the
    "values in red on each column" construction of v_t in the caption.
    """
    if dim < 1:
        raise ConfigurationError(f"dim must be >= 1, got {dim}")
    ordered = sorted(records, key=lambda r: r.order_time)
    if at_time is None:
        at_time = max((r.end_time for r in ordered), default=0)
    lines = [f"update matrix at time {at_time} (rows = iterations in total order)"]
    shown = 0
    for rank, record in enumerate(ordered):
        if record.start_time > at_time:
            break
        if shown >= max_rows:
            lines.append(f"... ({len(ordered) - shown} more iterations)")
            break
        cells = []
        for j in range(dim):
            gradient = record.gradient
            if gradient is None or gradient[j] == 0.0:
                cells.append(".")
                continue
            update_time = (
                record.update_times[j] if record.update_times is not None else None
            )
            applied = (
                record.applied[j] if record.applied is not None else True
            )
            if update_time is not None and update_time <= at_time:
                cells.append("#" if applied else "x")
            else:
                cells.append("o")
        lines.append(
            f"t={rank + 1:>4} thread={record.thread_id} |{''.join(cells)}| "
            f"start={record.start_time} end={record.end_time}"
        )
        shown += 1
    lines.append("legend: # applied   o pending   x guard-rejected   . zero")
    return "\n".join(lines)
