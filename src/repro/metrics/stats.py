"""Statistical helpers for Monte-Carlo estimates.

The paper's results are probabilistic (P(F_T) bounds, expectations);
measuring them means repeated seeded runs plus honest uncertainty.  The
Wilson score interval is used for failure probabilities (well-behaved at
p near 0, where our estimates usually live) and normal-approximation
intervals for means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Args:
        successes: Number of successes observed.
        trials: Number of trials (must be >= 1).
        z: Normal quantile (1.96 = 95%).

    Returns:
        (low, high) bounds on the underlying probability.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    if not 0 <= successes <= trials:
        raise ConfigurationError(
            f"successes must be in [0, {trials}], got {successes}"
        )
    p_hat = successes / trials
    denom = 1.0 + z**2 / trials
    center = (p_hat + z**2 / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z**2 / (4 * trials**2))
        / denom
    )
    return max(0.0, center - half), min(1.0, center + half)


def mean_confidence_interval(
    values: Sequence[float], z: float = 1.96
) -> Tuple[float, float, float]:
    """(mean, low, high) via the normal approximation."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ConfigurationError("need at least one value")
    mean = float(array.mean())
    if array.size == 1:
        return mean, mean, mean
    half = z * float(array.std(ddof=1)) / math.sqrt(array.size)
    return mean, mean - half, mean + half


@dataclass
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} med={self.median:.4g} "
            f"max={self.maximum:.4g}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a non-empty sample."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ConfigurationError("need at least one value")
    return Summary(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
        minimum=float(array.min()),
        median=float(np.median(array)),
        maximum=float(array.max()),
    )
