"""Failure-probability estimation over seeded run ensembles.

Every P(F_T) statement in the paper is about the event "the iterate
sequence never entered the success region by time T".  We estimate it
the direct way: run the algorithm under many independent seeds, record
whether each run hit the region, and report the failure fraction with a
Wilson confidence interval.  The upper bounds then predict: measured
p_hat (indeed its upper confidence limit, up to Monte-Carlo luck) should
fall below the bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.metrics.stats import wilson_interval


@dataclass
class FailureEstimate:
    """Monte-Carlo estimate of P(F_T).

    Attributes:
        runs: Number of independent runs.
        failures: Runs that never hit the success region by time T.
        probability: failures / runs.
        confidence: (low, high) Wilson 95% interval.
        hit_times: Hitting times of the successful runs (iteration
            index), for hitting-time distribution plots.
    """

    runs: int
    failures: int
    probability: float
    confidence: Tuple[float, float]
    hit_times: List[int]

    def consistent_with_bound(self, bound: float) -> bool:
        """Whether the bound is not (statistically) violated: the lower
        confidence limit must not exceed the theoretical bound."""
        return self.confidence[0] <= bound

    def __str__(self) -> str:
        low, high = self.confidence
        return (
            f"P(fail) = {self.probability:.4f} "
            f"[{low:.4f}, {high:.4f}] over {self.runs} runs"
        )


def estimate_failure_probability(
    run_once: Callable[[int], Optional[int]],
    num_runs: int,
    base_seed: int = 0,
    jobs: int = 1,
) -> FailureEstimate:
    """Estimate P(F_T) by repeated seeded runs.

    Args:
        run_once: Maps a seed to the run's hitting time (iteration index
            at which the success region was first entered) or ``None``
            if the run failed.  Drivers' ``hit_time`` fields fit
            directly: ``lambda s: run(...).hit_time``.
        num_runs: Ensemble size.
        base_seed: Seeds used are ``base_seed .. base_seed+num_runs-1``.
        jobs: Worker processes for the ensemble (1 = serial).  With
            ``jobs != 1``, ``run_once`` must be picklable (a module-level
            function or ``functools.partial``); see
            :mod:`repro.experiments.ensemble`.  Results are merged in
            seed order, so the estimate is identical for any ``jobs``.

    Returns:
        A :class:`FailureEstimate`.
    """
    if num_runs < 1:
        raise ConfigurationError(f"num_runs must be >= 1, got {num_runs}")
    # Imported lazily: the ensemble runner lives in the experiments layer
    # (which imports metrics at module load), and the serial path must
    # not depend on it at all.
    from repro.experiments.ensemble import run_ensemble

    raw_hits = run_ensemble(
        run_once, range(base_seed, base_seed + num_runs), jobs=jobs
    )
    failures = 0
    hit_times: List[int] = []
    for hit in raw_hits:
        if hit is None:
            failures += 1
        else:
            hit_times.append(int(hit))
    probability = failures / num_runs
    return FailureEstimate(
        runs=num_runs,
        failures=failures,
        probability=probability,
        confidence=wilson_interval(failures, num_runs),
        hit_times=hit_times,
    )
