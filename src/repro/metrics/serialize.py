"""Trace serialization: iteration records <-> JSON lines.

Long experiments produce traces worth keeping (they feed the contention
analysis, Figure-1 rendering, and post-hoc debugging).  This module
round-trips :class:`~repro.runtime.events.IterationRecord` streams
through a line-oriented JSON format that is diff-able, append-able and
stable across library versions (unknown keys are ignored on load).
"""

from __future__ import annotations

import json
import pathlib
import warnings
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.events import IterationRecord

PathLike = Union[str, pathlib.Path]

#: Fields serialized verbatim (ints/floats/None).
_SCALAR_FIELDS = (
    "time",
    "thread_id",
    "index",
    "epoch",
    "start_time",
    "read_start_time",
    "read_end_time",
    "first_update_time",
    "end_time",
    "step_size",
)


def record_to_dict(record: IterationRecord) -> dict:
    """A JSON-safe dict for one iteration record.

    The opaque ``sample`` field is dropped (it may hold arbitrary
    objects); everything the analyses consume survives.
    """
    payload = {name: getattr(record, name) for name in _SCALAR_FIELDS}
    payload["view"] = None if record.view is None else [float(v) for v in record.view]
    payload["gradient"] = (
        None if record.gradient is None else [float(g) for g in record.gradient]
    )
    payload["applied"] = (
        None if record.applied is None else [bool(a) for a in record.applied]
    )
    payload["update_times"] = (
        None
        if record.update_times is None
        else [None if t is None else int(t) for t in record.update_times]
    )
    return payload


def record_from_dict(payload: dict) -> IterationRecord:
    """Inverse of :func:`record_to_dict` (unknown keys ignored)."""
    try:
        kwargs = {name: payload[name] for name in _SCALAR_FIELDS}
    except KeyError as missing:
        raise ConfigurationError(f"record payload missing field {missing}") from None
    view = payload.get("view")
    gradient = payload.get("gradient")
    return IterationRecord(
        view=None if view is None else np.asarray(view, dtype=float),
        gradient=None if gradient is None else np.asarray(gradient, dtype=float),
        applied=payload.get("applied"),
        update_times=payload.get("update_times"),
        **kwargs,
    )


def dump_records(
    records: Sequence[IterationRecord], path: PathLike
) -> int:
    """Write records as JSON lines; returns the number written.

    The write is atomic (temp file + fsync + rename via
    :func:`repro.durable.atomic_io.atomic_write`): readers never observe
    a half-written trace, and a crash mid-dump leaves any previous trace
    intact.
    """
    from repro.durable.atomic_io import atomic_write

    path = pathlib.Path(path)
    lines = [json.dumps(record_to_dict(record)) + "\n" for record in records]
    atomic_write(path, "".join(lines).encode("utf-8"))
    return len(records)


def load_records(
    path: PathLike, findings: Optional[List[object]] = None
) -> List[IterationRecord]:
    """Read a JSON-lines trace back into records (blank lines skipped).

    A truncated *final* line — the signature of a crash mid-append — is
    tolerated: the complete prefix is returned and the damage is
    reported as a warning :class:`~repro.analysis.report.Finding` (rule
    ``DUR002``) appended to ``findings`` (also raised as a
    :class:`UserWarning` when no ``findings`` list is given).  Truncation
    is recognized by its fingerprint: the file's final line is invalid
    JSON *and* missing its terminating newline (writers emit complete
    ``record\\n`` lines, so a crash can only tear the very end).
    Invalid JSON anywhere else — including a complete,
    newline-terminated final line — is real corruption and still raises
    :class:`~repro.errors.ConfigurationError`.
    """
    path = pathlib.Path(path)
    records: List[IterationRecord] = []
    with path.open() as handle:
        lines = handle.readlines()
    torn_tail_possible = bool(lines) and not lines[-1].endswith("\n")
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            if torn_tail_possible and line_number == len(lines):
                from repro.analysis.report import Finding

                finding = Finding(
                    source="trace",
                    rule="DUR002",
                    severity="warning",
                    message=(
                        f"{path}:{line_number}: truncated trailing record "
                        f"(torn write; {len(records)} complete record(s) "
                        "recovered)"
                    ),
                )
                if findings is not None:
                    findings.append(finding)
                else:
                    warnings.warn(str(finding), UserWarning, stacklevel=2)
                break
            raise ConfigurationError(
                f"{path}:{line_number}: not valid JSON ({error})"
            ) from None
        records.append(record_from_dict(payload))
    return records
