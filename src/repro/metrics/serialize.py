"""Trace serialization: iteration records <-> JSON lines.

Long experiments produce traces worth keeping (they feed the contention
analysis, Figure-1 rendering, and post-hoc debugging).  This module
round-trips :class:`~repro.runtime.events.IterationRecord` streams
through a line-oriented JSON format that is diff-able, append-able and
stable across library versions (unknown keys are ignored on load).
"""

from __future__ import annotations

import json
import pathlib
from typing import List, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.events import IterationRecord

PathLike = Union[str, pathlib.Path]

#: Fields serialized verbatim (ints/floats/None).
_SCALAR_FIELDS = (
    "time",
    "thread_id",
    "index",
    "epoch",
    "start_time",
    "read_start_time",
    "read_end_time",
    "first_update_time",
    "end_time",
    "step_size",
)


def record_to_dict(record: IterationRecord) -> dict:
    """A JSON-safe dict for one iteration record.

    The opaque ``sample`` field is dropped (it may hold arbitrary
    objects); everything the analyses consume survives.
    """
    payload = {name: getattr(record, name) for name in _SCALAR_FIELDS}
    payload["view"] = None if record.view is None else [float(v) for v in record.view]
    payload["gradient"] = (
        None if record.gradient is None else [float(g) for g in record.gradient]
    )
    payload["applied"] = (
        None if record.applied is None else [bool(a) for a in record.applied]
    )
    payload["update_times"] = (
        None
        if record.update_times is None
        else [None if t is None else int(t) for t in record.update_times]
    )
    return payload


def record_from_dict(payload: dict) -> IterationRecord:
    """Inverse of :func:`record_to_dict` (unknown keys ignored)."""
    try:
        kwargs = {name: payload[name] for name in _SCALAR_FIELDS}
    except KeyError as missing:
        raise ConfigurationError(f"record payload missing field {missing}") from None
    view = payload.get("view")
    gradient = payload.get("gradient")
    return IterationRecord(
        view=None if view is None else np.asarray(view, dtype=float),
        gradient=None if gradient is None else np.asarray(gradient, dtype=float),
        applied=payload.get("applied"),
        update_times=payload.get("update_times"),
        **kwargs,
    )


def dump_records(
    records: Sequence[IterationRecord], path: PathLike
) -> int:
    """Write records as JSON lines; returns the number written."""
    path = pathlib.Path(path)
    with path.open("w") as handle:
        for record in records:
            handle.write(json.dumps(record_to_dict(record)) + "\n")
    return len(records)


def load_records(path: PathLike) -> List[IterationRecord]:
    """Read a JSON-lines trace back into records (blank lines skipped)."""
    path = pathlib.Path(path)
    records: List[IterationRecord] = []
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"{path}:{line_number}: not valid JSON ({error})"
                ) from None
            records.append(record_from_dict(payload))
    return records
