"""A shared fetch&add counter.

Algorithm 1 coordinates termination through a shared iteration counter
``C``: each iteration begins with ``C.fetch&add(1)`` and the thread
returns once the pre-increment value reaches ``T``.  The same primitive
serves as Algorithm 2's epoch counter.
"""

from __future__ import annotations

from repro.shm.memory import SharedMemory
from repro.shm.ops import FetchAdd, Read
from repro.shm.register import AtomicRegister


class AtomicCounter(AtomicRegister):
    """A monotone counter built on ``fetch&add``.

    It is an :class:`AtomicRegister` specialization; the extra methods are
    named for intent at the call site.
    """

    @classmethod
    def allocate(
        cls, memory: SharedMemory, name: str = "", initial: float = 0.0
    ) -> "AtomicCounter":
        """Allocate a fresh counter initialized to ``initial``."""
        address = memory.allocate(1, name=name or None, initial=initial)
        return cls(memory, address)

    def increment_op(self, amount: float = 1.0) -> FetchAdd:
        """Descriptor for ``fetch&add(amount)``; result is the old value."""
        return FetchAdd(self.address, amount)

    def read_count_op(self) -> Read:
        """Descriptor for reading the current count."""
        return Read(self.address)

    def increment_direct(self, amount: float = 1.0) -> float:
        """Increment immediately; returns the pre-increment value."""
        return self.fetch_add_direct(amount)

    @property
    def count(self) -> int:
        """Current count observed without taking a step."""
        return int(self.value)
