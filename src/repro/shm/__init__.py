"""Asynchronous shared-memory substrate.

This package models the classic asynchronous shared-memory model of
distributed computing (Attiya & Welch): a collection of atomic memory
locations ("registers") on which threads perform atomic primitives —
``read``, ``write``, ``compare&swap``, ``fetch&add`` and
``double-compare-single-swap``.  Memory is *sequentially consistent*:
once a primitive completes, its effect is immediately visible to all
threads.

The substrate is deliberately simulator-friendly: operations are plain
descriptor objects (:mod:`repro.shm.ops`) which simulated threads *yield*
to the runtime, and :class:`repro.shm.memory.SharedMemory` applies them
one at a time, producing a totally ordered operation log.  That log is
exactly the sequentially-consistent witness the model postulates, and the
checkers in :mod:`repro.shm.history` verify it after the fact.
"""

from repro.shm.ops import (
    DISPATCH_TABLE,
    CompareAndSwap,
    DoubleCompareSingleSwap,
    FetchAdd,
    GuardedFetchAdd,
    Noop,
    Operation,
    Read,
    Write,
)
from repro.shm.memory import LogRecord, SharedMemory
from repro.shm.register import AtomicRegister
from repro.shm.array import AtomicArray
from repro.shm.counter import AtomicCounter
from repro.shm.history import (
    check_fetch_add_totals,
    check_log_replay,
    check_read_coherence,
)

__all__ = [
    "DISPATCH_TABLE",
    "Operation",
    "Read",
    "Write",
    "FetchAdd",
    "CompareAndSwap",
    "DoubleCompareSingleSwap",
    "GuardedFetchAdd",
    "Noop",
    "SharedMemory",
    "LogRecord",
    "AtomicRegister",
    "AtomicArray",
    "AtomicCounter",
    "check_log_replay",
    "check_fetch_add_totals",
    "check_read_coherence",
]
