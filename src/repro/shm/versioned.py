"""Versioned array + seqlock-style double-collect consistent scans.

Algorithm 1 reads the model entry by entry, so its views v_θ can be
*inconsistent* — that inconsistency is what the whole paper is about.
The classic shared-memory alternative is a **consistent scan** over a
seqlock-disciplined array: every entry carries a version counter;
writers bump it to *odd* before touching the value and to *even* after
(so an odd version means "write in flight"), and readers double-collect
(read all versions, read all values, read all versions again), retrying
unless the two version collects are identical and all even.

Correctness of a consistent collect (standard seqlock argument): if a
write to cell i were in flight while the reader collected cell i's
value, the version was odd at one of the collects; if a write completed
between the collects, the version advanced by 2 — either way the collects
differ and the scan retries.  Hence a successful collect equals the
memory state at some instant inside the scan.  (The naive
value-then-version protocol, without odd markers, admits a torn
``(old_0, new_1)`` collect whose versions still match — which is exactly
why seqlocks exist.)

This gives the substrate for the "price of consistency" ablation (A2):
consistent views remove the √d view-error blow-up, but each scan costs
≥ 3d steps instead of d, every *update* costs 3 steps instead of 1
(version-odd, value, version-even), retries burn steps under contention,
and an adversary can starve a scanner indefinitely (the scan is only
obstruction-free).  Algorithm 1's choice of cheap inconsistent reads +
analysis is exactly the other side of that trade.
"""

from __future__ import annotations

from typing import Generator, List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.shm.array import AtomicArray
from repro.shm.memory import SharedMemory


class VersionedArray:
    """An :class:`AtomicArray` of values with a parallel version array.

    Args:
        memory: Backing shared memory.
        length: Number of logical entries d.
        name: Optional base name; registers ``<name>`` and
            ``<name>.versions`` segments.
    """

    def __init__(
        self, memory: SharedMemory, length: int, name: str = ""
    ) -> None:
        if length < 1:
            raise ConfigurationError(f"length must be >= 1, got {length}")
        self.memory = memory
        self.values = AtomicArray.allocate(
            memory, length, name=name or None
        )
        self.versions = AtomicArray.allocate(
            memory, length, name=f"{name}.versions" if name else None
        )
        self.length = length

    def load(self, values: np.ndarray) -> None:
        """Initialize the value entries (setup helper; versions reset)."""
        self.values.load(values)
        self.versions.load(np.zeros(self.length))

    def snapshot(self) -> np.ndarray:
        """Omniscient value snapshot (metrics only; no steps)."""
        return self.values.snapshot()

    # ------------------------------------------------------------------
    # Protocols (sub-generators for simulated threads)
    # ------------------------------------------------------------------
    def update_ops(self, index: int, delta: float) -> Generator:
        """(generator) Add ``delta`` to entry ``index`` under the seqlock
        discipline: version fetch&add (→ odd, "write in flight"), value
        fetch&add, version fetch&add (→ even).  Three shared-memory
        steps."""
        yield self.versions.fetch_add_op(index, 1.0)
        yield self.values.fetch_add_op(index, delta)
        yield self.versions.fetch_add_op(index, 1.0)

    def scan_ops(
        self, max_retries: int = -1
    ) -> Generator[object, float, Tuple[np.ndarray, bool, int]]:
        """(generator) Seqlock double-collect consistent scan.

        Repeats (collect versions, collect values, collect versions)
        until the two version collects are identical *and all even*;
        returns ``(values, consistent, retries)``.  With
        ``max_retries >= 0`` the scan gives up after that many failed
        rounds and returns the last (possibly inconsistent) value collect
        with ``consistent=False`` — the fallback an implementation needs,
        because under an adversarial scheduler the pure scan can be
        starved forever (it is only obstruction-free).

        Drive with ``values, ok, retries = yield from arr.scan_ops()``.
        """
        retries = 0
        while True:
            before: List[float] = []
            for j in range(self.length):
                version = yield self.versions.read_op(j)
                before.append(version)
            collected = np.empty(self.length)
            for j in range(self.length):
                collected[j] = yield self.values.read_op(j)
            after: List[float] = []
            for j in range(self.length):
                version = yield self.versions.read_op(j)
                after.append(version)
            all_even = all(v % 2.0 == 0.0 for v in before)
            if before == after and all_even:
                return collected, True, retries
            retries += 1
            if 0 <= max_retries <= retries:
                return collected, False, retries
