"""Atomic operation descriptors.

Simulated threads do not touch memory directly.  Instead they *yield* one
of the descriptor objects defined here; the runtime hands the descriptor
to :class:`repro.shm.memory.SharedMemory`, which applies it atomically and
feeds the result back into the thread's coroutine.  One yielded descriptor
is one *shared-memory step* — the unit in which the paper measures time.

All descriptors are small frozen dataclasses so they can be logged,
compared and replayed.  ``address`` is an integer into the flat location
table managed by :class:`~repro.shm.memory.SharedMemory`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Operation:
    """Base class for every atomic shared-memory primitive.

    Attributes:
        address: Flat index of the memory location this operation targets.
    """

    address: int


@dataclass(frozen=True)
class Read(Operation):
    """Atomically read a location; the step result is its current value."""


@dataclass(frozen=True)
class Write(Operation):
    """Atomically overwrite a location with ``value``; the result is ``None``.

    The paper points out (Section 1) that whole-model ``write`` updates let
    a delayed thread obliterate all progress; Algorithm 1 therefore uses
    :class:`FetchAdd`.  ``Write`` is kept so the ablation benchmarks can
    demonstrate exactly that failure mode.
    """

    value: float


@dataclass(frozen=True)
class FetchAdd(Operation):
    """Atomic ``fetch&add``: add ``delta`` and return the *previous* value.

    This matches the paper's primitive: "The fetch&add operation takes one
    argument, and returns the value of the register before the increment
    was performed."
    """

    delta: float


@dataclass(frozen=True)
class CompareAndSwap(Operation):
    """Atomic compare-and-swap.

    If the location currently holds ``expected``, store ``new`` and return
    ``True``; otherwise leave it unchanged and return ``False``.
    """

    expected: float
    new: float


@dataclass(frozen=True)
class DoubleCompareSingleSwap(Operation):
    """DCAS as used by Algorithm 2's epoch isolation.

    Compares *two* locations — a guard (typically the epoch counter) and
    the target — and swaps only the target:

    if ``mem[guard_address] == guard_expected`` and
    ``mem[address] == expected`` then ``mem[address] = new`` and the result
    is ``True``; otherwise nothing changes and the result is ``False``.
    """

    expected: float
    new: float
    guard_address: int = -1
    guard_expected: float = 0.0


@dataclass(frozen=True)
class GuardedFetchAdd(Operation):
    """A ``fetch&add`` conditioned on a guard location.

    If ``mem[guard_address] == guard_expected``, performs
    ``fetch&add(address, delta)`` and returns ``(True, previous_value)``.
    Otherwise returns ``(False, current_value)`` and changes nothing.

    This is the primitive Algorithm 2 needs to ensure "a gradient update
    can only be applied to X in the same epoch when it was generated": the
    guard is the shared epoch counter.  It is implementable from the
    paper's DCAS via the standard read-then-DCAS retry loop; we provide it
    directly so that simulated runs don't spend steps on retries that a
    real DCAS loop would resolve, while preserving the same semantics (the
    add happens atomically iff the epoch still matches).
    """

    delta: float
    guard_address: int = -1
    guard_expected: float = 0.0


@dataclass(frozen=True)
class Noop(Operation):
    """A step that touches memory but changes nothing and returns ``None``.

    Useful for modeling busy-waiting or adversary-inserted padding steps;
    it still consumes one unit of logical time.
    """

    address: int = 0
