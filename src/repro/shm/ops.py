"""Atomic operation descriptors.

Simulated threads do not touch memory directly.  Instead they *yield* one
of the descriptor objects defined here; the runtime hands the descriptor
to :class:`repro.shm.memory.SharedMemory`, which applies it atomically and
feeds the result back into the thread's coroutine.  One yielded descriptor
is one *shared-memory step* — the unit in which the paper measures time.

All descriptors are small frozen dataclasses so they can be logged,
compared and replayed.  ``address`` is an integer into the flat location
table managed by :class:`~repro.shm.memory.SharedMemory`.

Dispatch: every concrete descriptor class carries a dense integer
:attr:`~Operation.opcode` and implements :meth:`~Operation.apply`, the
pure semantics of the primitive against a flat value table.  The memory
applies descriptors through :data:`DISPATCH_TABLE` — a tuple indexed by
opcode — instead of an ``isinstance`` chain, which is what keeps the
simulator's per-step cost flat (this is the innermost loop of every
Monte-Carlo run; see DESIGN.md "Performance architecture").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, ClassVar, List, Tuple

from repro.errors import UnknownAddressError

#: Dense opcodes, one per concrete descriptor class (indices into
#: :data:`DISPATCH_TABLE`).
OP_READ = 0
OP_WRITE = 1
OP_FETCH_ADD = 2
OP_COMPARE_AND_SWAP = 3
OP_DCSS = 4
OP_GUARDED_FETCH_ADD = 5
OP_NOOP = 6


@dataclass(frozen=True)
class Operation:
    """Base class for every atomic shared-memory primitive.

    Attributes:
        address: Flat index of the memory location this operation targets.
    """

    #: Dense dispatch index; concrete subclasses override it.  ``-1``
    #: marks the abstract base (never dispatchable).
    opcode: ClassVar[int] = -1

    address: int

    def apply(self, values: List[float]):
        """Apply this primitive to the flat location table ``values``.

        Mutates ``values`` in place and returns the step result fed back
        to the invoking thread.  Raises :class:`UnknownAddressError` for
        out-of-range addresses.  Subclasses must override.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement apply()"
        )


def _check(values: List[float], address: int) -> None:
    if not 0 <= address < len(values):
        raise UnknownAddressError(address)


@dataclass(frozen=True)
class Read(Operation):
    """Atomically read a location; the step result is its current value."""

    opcode: ClassVar[int] = OP_READ

    def apply(self, values: List[float]) -> float:
        _check(values, self.address)
        return values[self.address]


@dataclass(frozen=True)
class Write(Operation):
    """Atomically overwrite a location with ``value``; the result is ``None``.

    The paper points out (Section 1) that whole-model ``write`` updates let
    a delayed thread obliterate all progress; Algorithm 1 therefore uses
    :class:`FetchAdd`.  ``Write`` is kept so the ablation benchmarks can
    demonstrate exactly that failure mode.
    """

    opcode: ClassVar[int] = OP_WRITE

    value: float

    def apply(self, values: List[float]) -> None:
        _check(values, self.address)
        values[self.address] = self.value
        return None


@dataclass(frozen=True)
class FetchAdd(Operation):
    """Atomic ``fetch&add``: add ``delta`` and return the *previous* value.

    This matches the paper's primitive: "The fetch&add operation takes one
    argument, and returns the value of the register before the increment
    was performed."
    """

    opcode: ClassVar[int] = OP_FETCH_ADD

    delta: float

    def apply(self, values: List[float]) -> float:
        _check(values, self.address)
        previous = values[self.address]
        values[self.address] = previous + self.delta
        return previous


@dataclass(frozen=True)
class CompareAndSwap(Operation):
    """Atomic compare-and-swap.

    If the location currently holds ``expected``, store ``new`` and return
    ``True``; otherwise leave it unchanged and return ``False``.
    """

    opcode: ClassVar[int] = OP_COMPARE_AND_SWAP

    expected: float
    new: float

    def apply(self, values: List[float]) -> bool:
        _check(values, self.address)
        if values[self.address] == self.expected:
            values[self.address] = self.new
            return True
        return False


@dataclass(frozen=True)
class DoubleCompareSingleSwap(Operation):
    """DCAS as used by Algorithm 2's epoch isolation.

    Compares *two* locations — a guard (typically the epoch counter) and
    the target — and swaps only the target:

    if ``mem[guard_address] == guard_expected`` and
    ``mem[address] == expected`` then ``mem[address] = new`` and the result
    is ``True``; otherwise nothing changes and the result is ``False``.
    """

    opcode: ClassVar[int] = OP_DCSS

    expected: float
    new: float
    guard_address: int = -1
    guard_expected: float = 0.0

    def apply(self, values: List[float]) -> bool:
        _check(values, self.address)
        _check(values, self.guard_address)
        if (
            values[self.guard_address] == self.guard_expected
            and values[self.address] == self.expected
        ):
            values[self.address] = self.new
            return True
        return False


@dataclass(frozen=True)
class GuardedFetchAdd(Operation):
    """A ``fetch&add`` conditioned on a guard location.

    If ``mem[guard_address] == guard_expected``, performs
    ``fetch&add(address, delta)`` and returns ``(True, previous_value)``.
    Otherwise returns ``(False, current_value)`` and changes nothing.

    This is the primitive Algorithm 2 needs to ensure "a gradient update
    can only be applied to X in the same epoch when it was generated": the
    guard is the shared epoch counter.  It is implementable from the
    paper's DCAS via the standard read-then-DCAS retry loop; we provide it
    directly so that simulated runs don't spend steps on retries that a
    real DCAS loop would resolve, while preserving the same semantics (the
    add happens atomically iff the epoch still matches).
    """

    opcode: ClassVar[int] = OP_GUARDED_FETCH_ADD

    delta: float
    guard_address: int = -1
    guard_expected: float = 0.0

    def apply(self, values: List[float]) -> Tuple[bool, float]:
        _check(values, self.address)
        _check(values, self.guard_address)
        current = values[self.address]
        if values[self.guard_address] == self.guard_expected:
            values[self.address] = current + self.delta
            return (True, current)
        return (False, current)


@dataclass(frozen=True)
class Noop(Operation):
    """A step that touches memory but changes nothing and returns ``None``.

    Useful for modeling busy-waiting or adversary-inserted padding steps;
    it still consumes one unit of logical time.
    """

    opcode: ClassVar[int] = OP_NOOP

    address: int = 0

    def apply(self, values: List[float]) -> None:
        _check(values, self.address)
        return None


def _build_dispatch_table() -> Tuple[Callable, ...]:
    """The opcode-indexed dispatch table.

    Entry ``i`` is the unbound ``apply`` of the descriptor class whose
    opcode is ``i``; :meth:`SharedMemory._apply` indexes it with
    ``op.opcode`` instead of walking an ``isinstance`` chain.
    """
    classes = (
        Read,
        Write,
        FetchAdd,
        CompareAndSwap,
        DoubleCompareSingleSwap,
        GuardedFetchAdd,
        Noop,
    )
    table: List[Callable] = [Operation.apply] * len(classes)
    for cls in classes:
        if table[cls.opcode] is not Operation.apply:
            raise ValueError(f"duplicate opcode {cls.opcode} for {cls.__name__}")
        table[cls.opcode] = cls.apply
    return tuple(table)


#: Opcode-indexed tuple of ``apply`` functions, built once at import.
DISPATCH_TABLE: Tuple[Callable, ...] = _build_dispatch_table()
