"""Consistency checkers over recorded operation logs.

The simulator applies operations in a single total order, which makes the
log itself a sequential-consistency witness *if* the implementation is
correct.  These checkers validate exactly that: they replay the log on a
fresh memory image and verify every recorded result, check read coherence
(every read returns the latest preceding write/accumulated adds), and
verify the fetch&add accounting identity (final value = initial + sum of
applied deltas).  The property-based tests drive random programs through
the memory and assert these invariants.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Sequence

from repro.errors import HistoryViolationError
from repro.shm.memory import LogRecord
from repro.shm.ops import (
    CompareAndSwap,
    DoubleCompareSingleSwap,
    FetchAdd,
    GuardedFetchAdd,
    Noop,
    Read,
    Write,
)


def check_log_replay(
    log: Sequence[LogRecord], initial: Dict[int, float], size: int
) -> Dict[int, float]:
    """Replay ``log`` against an ``initial`` memory image of ``size`` cells.

    Verifies that every recorded result matches what a correct atomic
    memory would have returned at that point in the total order, i.e. that
    the log is a legal sequentially consistent history.  Returns the final
    memory image (address -> value).

    Raises:
        HistoryViolationError: If any recorded result disagrees with the
            replay, which would mean the memory implementation (or the
            log) is broken.
    """
    values: Dict[int, float] = defaultdict(float)
    values.update(initial)

    for record in log:
        op = record.op
        if isinstance(op, Read):
            expected = values[op.address]
            if record.result != expected:
                raise HistoryViolationError(
                    f"seq {record.seq}: Read({op.address}) returned "
                    f"{record.result!r}, replay says {expected!r}"
                )
        elif isinstance(op, FetchAdd):
            expected = values[op.address]
            if record.result != expected:
                raise HistoryViolationError(
                    f"seq {record.seq}: FetchAdd({op.address}) returned "
                    f"{record.result!r}, replay says {expected!r}"
                )
            values[op.address] = expected + op.delta
        elif isinstance(op, Write):
            values[op.address] = op.value
        elif isinstance(op, CompareAndSwap):
            success = values[op.address] == op.expected
            if record.result != success:
                raise HistoryViolationError(
                    f"seq {record.seq}: CAS({op.address}) returned "
                    f"{record.result!r}, replay says {success!r}"
                )
            if success:
                values[op.address] = op.new
        elif isinstance(op, GuardedFetchAdd):
            current = values[op.address]
            success = values[op.guard_address] == op.guard_expected
            expected_result = (success, current)
            if tuple(record.result) != expected_result:
                raise HistoryViolationError(
                    f"seq {record.seq}: GuardedFetchAdd({op.address}) returned "
                    f"{record.result!r}, replay says {expected_result!r}"
                )
            if success:
                values[op.address] = current + op.delta
        elif isinstance(op, DoubleCompareSingleSwap):
            success = (
                values[op.guard_address] == op.guard_expected
                and values[op.address] == op.expected
            )
            if record.result != success:
                raise HistoryViolationError(
                    f"seq {record.seq}: DCSS({op.address}) returned "
                    f"{record.result!r}, replay says {success!r}"
                )
            if success:
                values[op.address] = op.new
        elif isinstance(op, Noop):
            pass
        else:  # pragma: no cover - exhaustive over op types
            raise HistoryViolationError(f"unknown op in log: {op!r}")

    # Ensure the final image fits inside the declared size.
    for address in values:
        if not 0 <= address < size:
            raise HistoryViolationError(f"log references address {address} >= {size}")
    return dict(values)


def check_read_coherence(log: Sequence[LogRecord]) -> None:
    """Verify that every read returns the value left by the most recent
    preceding mutation of the same address (or the initial value 0.0).

    A slightly weaker but more targeted check than :func:`check_log_replay`;
    it exists so that tests exercising only reads and writes have a direct
    statement of register semantics.
    """
    latest: Dict[int, float] = defaultdict(float)
    for record in log:
        op = record.op
        if isinstance(op, Read):
            if record.result != latest[op.address]:
                raise HistoryViolationError(
                    f"seq {record.seq}: read of {op.address} returned "
                    f"{record.result!r} but latest value is {latest[op.address]!r}"
                )
        elif isinstance(op, Write):
            latest[op.address] = op.value
        elif isinstance(op, FetchAdd):
            latest[op.address] = latest[op.address] + op.delta
        elif isinstance(op, CompareAndSwap) and record.result:
            latest[op.address] = op.new
        elif isinstance(op, GuardedFetchAdd) and record.result[0]:
            latest[op.address] = latest[op.address] + op.delta
        elif isinstance(op, DoubleCompareSingleSwap) and record.result:
            latest[op.address] = op.new


def check_fetch_add_totals(
    log: Sequence[LogRecord],
    addresses: Iterable[int],
    initial: float,
    final_values: Dict[int, float],
    rel_tol: float = 1e-9,
) -> None:
    """Verify the fetch&add accounting identity per address.

    For each address in ``addresses``, the final value must equal
    ``initial`` plus the sum of all successfully applied add deltas (from
    ``FetchAdd`` and successful ``GuardedFetchAdd``), provided no
    write/CAS touched the address.  This is the linearizability content of
    fetch&add: no concurrent increment is ever lost.
    """
    sums: Dict[int, float] = {a: initial for a in addresses}
    overwritten: set = set()
    for record in log:
        op = record.op
        if op.address not in sums:
            continue
        if isinstance(op, FetchAdd):
            sums[op.address] += op.delta
        elif isinstance(op, GuardedFetchAdd) and record.result[0]:
            sums[op.address] += op.delta
        elif isinstance(op, (Write, CompareAndSwap, DoubleCompareSingleSwap)):
            overwritten.add(op.address)

    for address, expected in sums.items():
        if address in overwritten:
            continue
        actual = final_values.get(address, 0.0)
        scale = max(1.0, abs(expected), abs(actual))
        if abs(actual - expected) > rel_tol * scale:
            raise HistoryViolationError(
                f"address {address}: final value {actual!r} != initial + "
                f"sum of deltas {expected!r}; a fetch&add was lost"
            )


def thread_operation_counts(log: Sequence[LogRecord]) -> Dict[int, int]:
    """Number of logged operations per thread id (a trace utility)."""
    counts: Dict[int, int] = defaultdict(int)
    for record in log:
        counts[record.thread_id] += 1
    return dict(counts)
