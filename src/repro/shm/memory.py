"""The sequentially consistent shared memory.

:class:`SharedMemory` owns a flat table of atomic locations and applies
:class:`~repro.shm.ops.Operation` descriptors to it one at a time.  Because
operations are applied in a single total order, the memory *is* its own
sequential-consistency witness; the optional operation log records that
order so the checkers in :mod:`repro.shm.history` and the contention
analysis in :mod:`repro.theory.contention` can inspect it afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import InvalidOperationError, UnknownAddressError
from repro.shm.ops import DISPATCH_TABLE, Operation


@dataclass(frozen=True)
class LogRecord:
    """One entry of the totally ordered operation log.

    Attributes:
        seq: Position of the operation in the global total order (0-based).
        time: Logical time at which the operation was applied.  In the
            simulator this equals ``seq`` (time is measured in scheduled
            shared-memory steps), but direct (non-simulated) use may pass
            any monotone value.
        thread_id: Identifier of the invoking thread, or ``-1`` for direct
            (non-simulated) accesses.
        op: The operation descriptor that was applied.
        result: The value returned to the invoking thread.
    """

    seq: int
    time: int
    thread_id: int
    op: Operation
    result: Any


@dataclass
class _Segment:
    """Bookkeeping for one named allocation."""

    name: str
    base: int
    length: int


class SharedMemory:
    """A flat table of atomic locations with a total operation order.

    Args:
        record_log: When ``True`` (the default) every applied operation is
            appended to :attr:`log`.  Long simulations that only need final
            values can disable recording to save memory.

    Example:
        >>> mem = SharedMemory()
        >>> base = mem.allocate(2, name="X")
        >>> mem.execute(FetchAdd(base, 5.0))
        0.0
        >>> mem.execute(Read(base))
        5.0
    """

    #: Opcode → metric-name fragment for :meth:`attach_metrics`.
    _OP_NAMES = (
        "read",
        "write",
        "fetch_add",
        "compare_and_swap",
        "dcss",
        "guarded_fetch_add",
        "noop",
    )

    def __init__(self, record_log: bool = True) -> None:
        self._values: List[float] = []
        self._segments: Dict[str, _Segment] = {}
        self.record_log = record_log
        self.log: List[LogRecord] = []
        self._seq = 0
        self._op_counters: Optional[List[Any]] = None

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(
        self, length: int = 1, name: Optional[str] = None, initial: float = 0.0
    ) -> int:
        """Allocate ``length`` contiguous locations, all set to ``initial``.

        Returns the base address.  ``name`` registers the segment for
        later lookup via :meth:`segment`; names must be unique.
        """
        if length < 1:
            raise InvalidOperationError(f"allocation length must be >= 1, got {length}")
        base = len(self._values)
        self._values.extend([initial] * length)
        if name is not None:
            if name in self._segments:
                raise InvalidOperationError(f"segment name already in use: {name!r}")
            self._segments[name] = _Segment(name=name, base=base, length=length)
        return base

    def segment(self, name: str) -> _Segment:
        """Return the (name, base, length) record of a named allocation."""
        try:
            return self._segments[name]
        except KeyError:
            raise UnknownAddressError(-1) from None

    @property
    def size(self) -> int:
        """Total number of allocated locations."""
        return len(self._values)

    # ------------------------------------------------------------------
    # Non-step inspection (used by adversaries, metrics and tests; does
    # NOT consume logical time and is not part of the operation log).
    # ------------------------------------------------------------------
    def peek(self, address: int) -> float:
        """Inspect a location without taking a step."""
        self._check(address)
        return self._values[address]

    def peek_range(self, base: int, length: int) -> List[float]:
        """Inspect ``length`` consecutive locations without taking steps."""
        self._check(base)
        self._check(base + length - 1)
        return list(self._values[base : base + length])

    def poke(self, address: int, value: float) -> None:
        """Set a location directly (test/setup helper; not logged)."""
        self._check(address)
        self._values[address] = value

    # ------------------------------------------------------------------
    # Telemetry (repro.obs)
    # ------------------------------------------------------------------
    def attach_metrics(self, metrics: Any) -> None:
        """Wire per-opcode operation counters into :meth:`execute`.

        ``None``/null registry detaches.  Note the scope: the
        ``run_fast()`` elided path dispatches straight off the opcode
        table and bypasses :meth:`execute`, so opcode counters are only
        populated on the standard (logged) path — by design, the hot
        loop is never instrumented per step.
        """
        from repro.obs.registry import live_registry

        registry = live_registry(metrics)
        if registry is None:
            self._op_counters = None
            return
        self._op_counters = [
            registry.counter(
                f"repro_shm_op_{name}_total", f"{name} operations applied"
            )
            for name in self._OP_NAMES
        ]

    # ------------------------------------------------------------------
    # The one and only mutation path for simulated threads
    # ------------------------------------------------------------------
    def execute(self, op: Operation, time: int = -1, thread_id: int = -1) -> Any:
        """Apply ``op`` atomically and return its result.

        This is the linearization point of every primitive: operations are
        applied in the order :meth:`execute` is called, which the simulator
        drives one scheduled step at a time.
        """
        result = self._apply(op)
        if self._op_counters is not None:
            opcode = getattr(op, "opcode", -1)
            if 0 <= opcode < len(self._op_counters):
                self._op_counters[opcode].inc()
        if self.record_log:
            if time < 0:
                time = self._seq
            self.log.append(
                LogRecord(
                    seq=self._seq, time=time, thread_id=thread_id, op=op, result=result
                )
            )
        self._seq += 1
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check(self, address: int) -> None:
        if not 0 <= address < len(self._values):
            raise UnknownAddressError(address)

    def _apply(self, op: Operation) -> Any:
        # Opcode-table dispatch: one class-attribute lookup plus a tuple
        # index, instead of the former isinstance chain (up to 7 checks on
        # the hottest path of every simulation step).
        opcode = getattr(op, "opcode", -1)
        if 0 <= opcode < len(DISPATCH_TABLE):
            return DISPATCH_TABLE[opcode](op, self._values)
        if isinstance(op, Operation) and opcode >= 0:
            # Custom descriptor registered outside the built-in table:
            # fall back to its own apply().
            return op.apply(self._values)
        raise InvalidOperationError(f"unknown operation type: {type(op).__name__}")
