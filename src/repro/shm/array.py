"""A handle to a contiguous block of atomic locations — the model ``X[d]``.

Algorithm 1 shares the parameter vector as an array of *independently*
atomic entries: threads read and fetch&add entries one at a time, so views
can be inconsistent across components.  :class:`AtomicArray` provides the
per-entry operation constructors plus whole-array inspection helpers used
by metrics and adversaries (which are allowed to observe state without
taking steps).
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.errors import InvalidOperationError
from repro.shm.memory import SharedMemory
from repro.shm.ops import FetchAdd, GuardedFetchAdd, Read, Write
from repro.shm.register import AtomicRegister


class AtomicArray:
    """``length`` consecutive atomic locations treated as a vector.

    Args:
        memory: Backing shared memory.
        base: Address of entry 0.
        length: Number of entries (the model dimension ``d``).

    Use :meth:`allocate` to create and register a fresh named array::

        X = AtomicArray.allocate(mem, d, name="model")
        v0 = yield X.read_op(0)
        yield X.fetch_add_op(0, -alpha * g0)
    """

    __slots__ = ("memory", "base", "length")

    def __init__(self, memory: SharedMemory, base: int, length: int) -> None:
        if length < 1:
            raise InvalidOperationError(f"array length must be >= 1, got {length}")
        self.memory = memory
        self.base = base
        self.length = length

    @classmethod
    def allocate(
        cls,
        memory: SharedMemory,
        length: int,
        name: Optional[str] = None,
        initial: float = 0.0,
    ) -> "AtomicArray":
        """Allocate a fresh array of ``length`` entries, all ``initial``."""
        base = memory.allocate(length, name=name, initial=initial)
        return cls(memory, base, length)

    # -- addressing -------------------------------------------------------
    def address_of(self, index: int) -> int:
        """Flat address of entry ``index`` (bounds-checked)."""
        if not 0 <= index < self.length:
            raise InvalidOperationError(
                f"index {index} out of range for array of length {self.length}"
            )
        return self.base + index

    def register(self, index: int) -> AtomicRegister:
        """An :class:`AtomicRegister` handle for entry ``index``."""
        return AtomicRegister(self.memory, self.address_of(index))

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[AtomicRegister]:
        for i in range(self.length):
            yield self.register(i)

    def contains_address(self, address: int) -> bool:
        """Whether ``address`` falls inside this array."""
        return self.base <= address < self.base + self.length

    def index_of_address(self, address: int) -> int:
        """Inverse of :meth:`address_of`."""
        if not self.contains_address(address):
            raise InvalidOperationError(
                f"address {address} not inside array [{self.base}, "
                f"{self.base + self.length})"
            )
        return address - self.base

    # -- per-entry operation descriptors -----------------------------------
    def read_op(self, index: int) -> Read:
        """Descriptor for an atomic read of entry ``index``."""
        return Read(self.address_of(index))

    def write_op(self, index: int, value: float) -> Write:
        """Descriptor for an atomic write of entry ``index``."""
        return Write(self.address_of(index), value)

    def fetch_add_op(self, index: int, delta: float) -> FetchAdd:
        """Descriptor for ``fetch&add`` on entry ``index``."""
        return FetchAdd(self.address_of(index), delta)

    def guarded_fetch_add_op(
        self, index: int, delta: float, guard: AtomicRegister, guard_expected: float
    ) -> GuardedFetchAdd:
        """Descriptor for an epoch-guarded ``fetch&add`` on entry ``index``."""
        return GuardedFetchAdd(
            address=self.address_of(index),
            delta=delta,
            guard_address=guard.address,
            guard_expected=guard_expected,
        )

    # -- inspection (no logical time consumed) ------------------------------
    def snapshot(self) -> np.ndarray:
        """The whole vector as a numpy array, read without taking steps.

        Note this is an *omniscient* observation for metrics/adversaries;
        simulated threads must read entry-by-entry and may therefore see
        inconsistent views — that inconsistency is the object of study.
        """
        return np.array(
            self.memory.peek_range(self.base, self.length), dtype=np.float64
        )

    def load(self, values: np.ndarray) -> None:
        """Set the whole vector directly (setup helper; not logged)."""
        if len(values) != self.length:
            raise InvalidOperationError(
                f"expected {self.length} values, got {len(values)}"
            )
        for i, v in enumerate(values):
            self.memory.poke(self.base + i, float(v))

    def __repr__(self) -> str:
        return f"AtomicArray(base={self.base}, length={self.length})"
