"""A handle to a single atomic memory location.

:class:`AtomicRegister` is a thin convenience layer over
:class:`~repro.shm.memory.SharedMemory`: it builds operation descriptors
bound to its address (for simulated threads to yield) and offers *direct*
methods that execute immediately (for sequential algorithms and tests).
"""

from __future__ import annotations

from repro.shm.memory import SharedMemory
from repro.shm.ops import (
    CompareAndSwap,
    FetchAdd,
    GuardedFetchAdd,
    Noop,
    Read,
    Write,
)


class AtomicRegister:
    """One atomic location.

    Args:
        memory: The backing :class:`SharedMemory`.
        address: Flat address of the location, e.g. as returned by
            :meth:`SharedMemory.allocate`.

    Simulated threads use the ``*_op`` constructors and yield the result::

        value = yield register.read_op()
        old = yield register.fetch_add_op(-alpha * g)

    Sequential code uses the ``*_direct`` methods, which apply the same
    operations through the same :meth:`SharedMemory.execute` path (so they
    are logged identically) but without a scheduler in between.
    """

    __slots__ = ("memory", "address")

    def __init__(self, memory: SharedMemory, address: int) -> None:
        self.memory = memory
        self.address = address

    # -- descriptor constructors (yield these from simulated programs) --
    def read_op(self) -> Read:
        """Descriptor for an atomic read of this register."""
        return Read(self.address)

    def write_op(self, value: float) -> Write:
        """Descriptor for an atomic write of ``value``."""
        return Write(self.address, value)

    def fetch_add_op(self, delta: float) -> FetchAdd:
        """Descriptor for ``fetch&add(delta)``; result is the old value."""
        return FetchAdd(self.address, delta)

    def cas_op(self, expected: float, new: float) -> CompareAndSwap:
        """Descriptor for ``compare&swap(expected, new)``."""
        return CompareAndSwap(self.address, expected, new)

    def guarded_fetch_add_op(
        self, delta: float, guard: "AtomicRegister", guard_expected: float
    ) -> GuardedFetchAdd:
        """Descriptor for a fetch&add that applies only while ``guard``
        still holds ``guard_expected`` (epoch-isolated updates)."""
        return GuardedFetchAdd(
            address=self.address,
            delta=delta,
            guard_address=guard.address,
            guard_expected=guard_expected,
        )

    def noop_op(self) -> Noop:
        """Descriptor for a padding step on this register."""
        return Noop(self.address)

    # -- direct execution (sequential code / tests) ----------------------
    def read_direct(self) -> float:
        """Execute an atomic read immediately."""
        return self.memory.execute(self.read_op())

    def write_direct(self, value: float) -> None:
        """Execute an atomic write immediately."""
        self.memory.execute(self.write_op(value))

    def fetch_add_direct(self, delta: float) -> float:
        """Execute ``fetch&add`` immediately; returns the old value."""
        return self.memory.execute(self.fetch_add_op(delta))

    def cas_direct(self, expected: float, new: float) -> bool:
        """Execute ``compare&swap`` immediately."""
        return self.memory.execute(self.cas_op(expected, new))

    # -- inspection -------------------------------------------------------
    @property
    def value(self) -> float:
        """Current value, read without consuming a step (not logged)."""
        return self.memory.peek(self.address)

    def __repr__(self) -> str:
        return f"AtomicRegister(address={self.address}, value={self.value!r})"
