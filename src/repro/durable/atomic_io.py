"""Crash-safe filesystem primitives.

Every artifact the repo persists — experiment reports, campaign JSON,
trace dumps, checkpoints, journals — must never be observable torn: a
reader (or a resumed run) either sees the previous complete version or
the new complete version, regardless of where a crash or SIGKILL lands.
POSIX gives exactly one tool with that guarantee, ``rename(2)`` within a
filesystem, so :func:`atomic_write` is the standard write-temp → fsync →
``os.replace`` sequence, plus a best-effort directory fsync so the
rename itself survives a power cut.

Append-only files (the run journal) cannot use rename; they get
:func:`append_line`, which writes a full line and fsyncs, accepting that
the *last* line may be torn by a crash — readers are required to
tolerate exactly that (see :mod:`repro.durable.journal`).
"""

from __future__ import annotations

import os
import pathlib
import tempfile
from typing import IO, Union

PathLike = Union[str, pathlib.Path]


def fsync_dir(directory: PathLike) -> None:
    """Best-effort fsync of a directory (ignored on platforms/filesystems
    that refuse to open directories)."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(path: PathLike, data: Union[str, bytes]) -> pathlib.Path:
    """Write ``data`` to ``path`` so no reader can observe a torn file.

    The payload goes to a temporary file in the *same directory* (rename
    is only atomic within a filesystem), is flushed and fsynced, and then
    ``os.replace``-d over the destination; finally the directory entry is
    fsynced.  A crash at any point leaves either the old complete file or
    the new complete file.  Returns the destination path.
    """
    path = pathlib.Path(path)
    payload = data.encode("utf-8") if isinstance(data, str) else data
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fsync_dir(path.parent)
    return path


def append_line(handle: IO[str], line: str) -> None:
    """Append one line to an open text handle durably.

    The line is written with its newline, flushed, and fsynced before
    returning, so once this call completes the record survives a SIGKILL.
    A crash *during* the call may leave a truncated final line — the one
    corruption mode journal readers must (and do) tolerate.
    """
    handle.write(line + "\n")
    handle.flush()
    os.fsync(handle.fileno())
