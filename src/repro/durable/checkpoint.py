"""Checkpoints: consistent simulator cuts that restore byte-identically.

A simulation in this model is fully determined by (programs, seed,
schedule), and the engine only pauses at :meth:`Simulator.run_fast`
chunk boundaries — between steps, never inside one.  Those boundaries
(and, for Algorithm 2, the epoch turnovers Corollary 7.1 reasons about)
are therefore *consistent cuts*: every thread is exactly between two
shared-memory operations, and the global state is one model array, the
counters, the clock, each thread's lifecycle state, and the scheduler's
decision prefix.  :class:`Checkpoint` captures that cut and restores it
two ways:

* **by replay** (exact): rebuild the simulation from scratch and replay
  the recorded decision prefix through a
  :class:`~repro.sched.replay.PrefixReplayScheduler`.  In verify mode
  the inner scheduler is consulted on every prefix step and must agree
  with the recording — which simultaneously *certifies* determinism
  (any divergence raises) and restores the inner scheduler's own state
  (RNG draws, histories) to the cut, so the continuation is
  byte-identical to the uninterrupted run.
* **directly** (state-level): poke the captured memory image and clock
  into a freshly built simulator.  Thread-local coroutine positions are
  *not* restored, so this is only sound for stateless programs at
  iteration boundaries — exactly the lock-free property Algorithm 1 has
  and :func:`repro.faults.recovery.run_with_recovery` exploits.

Checkpoints serialize to deterministic JSON and are written with
:func:`~repro.durable.atomic_io.atomic_write`, so a crash mid-save
leaves the previous checkpoint intact.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import asdict, dataclass
from typing import Any, Callable, List, Optional, Tuple, Union

from repro.errors import CheckpointRestoreError, ConfigurationError

PathLike = Union[str, pathlib.Path]

_VERSION = 1


@dataclass(frozen=True)
class ThreadCut:
    """One thread's lifecycle state at a cut."""

    thread_id: int
    name: str
    state: str  # ThreadState.value: "runnable" | "finished" | "crashed"
    steps_taken: int


def _digest_payload(
    seed: int,
    time: int,
    memory_values: Tuple[float, ...],
    memory_seq: int,
    threads: Tuple[ThreadCut, ...],
) -> str:
    canonical = json.dumps(
        {
            "seed": seed,
            "time": time,
            "values": list(memory_values),
            "seq": memory_seq,
            "threads": [asdict(t) for t in threads],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def state_digest(sim: Any) -> str:
    """Deterministic sha256 of a simulator's cut state (shared memory,
    clock, thread lifecycles) — equal digests mean equal cuts."""
    return _digest_payload(
        seed=getattr(sim, "seed", 0),
        time=sim.clock.now,
        memory_values=tuple(sim.memory._values),
        memory_seq=sim.memory._seq,
        threads=tuple(
            ThreadCut(t.thread_id, t.name, t.state.value, t.steps_taken)
            for t in sim.threads
        ),
    )


@dataclass(frozen=True)
class Checkpoint:
    """A consistent simulator cut (see module docstring).

    Attributes:
        seed: Root seed the simulator was built with.
        time: Logical time of the cut (steps executed so far).
        memory_values: The full shared-memory image.
        memory_seq: The memory's operation sequence counter.
        threads: Per-thread lifecycle state at the cut.
        schedule: The scheduler decision prefix from t=0 to the cut
            (empty when the run was not recorded; replay restore then
            refuses).
        label: Free-form tag ("epoch=3", "chunk=12", ...).
    """

    seed: int
    time: int
    memory_values: Tuple[float, ...]
    memory_seq: int
    threads: Tuple[ThreadCut, ...]
    schedule: Tuple[int, ...] = ()
    label: str = ""

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls,
        sim: Any,
        schedule: Optional[Tuple[int, ...]] = None,
        label: str = "",
    ) -> "Checkpoint":
        """Snapshot ``sim`` at its current (between-steps) cut.

        ``schedule`` defaults to the decision prefix of a
        :class:`~repro.sched.replay.RecordingScheduler` when the
        simulator is driven by one (directly or as the outermost
        wrapper); otherwise the checkpoint is captured without a replay
        recipe and only supports direct restore / verification.
        """
        if schedule is None:
            from repro.sched.replay import PrefixReplayScheduler, RecordingScheduler

            scheduler = sim.scheduler
            if isinstance(scheduler, RecordingScheduler):
                schedule = tuple(scheduler.schedule)
            elif isinstance(scheduler, PrefixReplayScheduler):
                schedule = tuple(scheduler.decisions)
            else:
                schedule = ()
        return cls(
            seed=getattr(sim, "seed", 0),
            time=sim.clock.now,
            memory_values=tuple(sim.memory._values),
            memory_seq=sim.memory._seq,
            threads=tuple(
                ThreadCut(t.thread_id, t.name, t.state.value, t.steps_taken)
                for t in sim.threads
            ),
            schedule=tuple(int(s) for s in schedule),
            label=label,
        )

    # ------------------------------------------------------------------
    # Certification
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """Digest of the captured cut; equals ``state_digest(sim)`` of
        any simulator standing at the same cut."""
        return _digest_payload(
            self.seed, self.time, self.memory_values, self.memory_seq, self.threads
        )

    def verify(self, sim: Any, state_only: bool = False) -> List[Any]:
        """Compare ``sim``'s cut against this checkpoint.

        Returns determinism findings (rule ``CKPT001``..``CKPT004``),
        empty when the simulator stands exactly at the captured cut —
        the certificate the restore paths rely on.  ``state_only``
        restricts the comparison to shared state (memory image + clock),
        the contract :meth:`restore_direct` can honour.
        """
        from repro.analysis.report import Finding

        findings: List[Finding] = []

        def report(rule: str, message: str) -> None:
            findings.append(
                Finding(
                    source="checkpoint",
                    rule=rule,
                    message=message,
                    time=self.time,
                )
            )

        if sim.clock.now != self.time:
            report(
                "CKPT001",
                f"clock mismatch: simulator at t={sim.clock.now}, "
                f"checkpoint cut at t={self.time}",
            )
        values = tuple(sim.memory._values)
        if values != self.memory_values:
            diffs = [
                addr
                for addr, (a, b) in enumerate(zip(values, self.memory_values))
                if a != b
            ]
            if len(values) != len(self.memory_values):
                diffs.append(min(len(values), len(self.memory_values)))
            report(
                "CKPT002",
                "shared-memory image mismatch at address(es) "
                f"{diffs[:8]}{'...' if len(diffs) > 8 else ''}",
            )
        if not state_only and sim.memory._seq != self.memory_seq:
            report(
                "CKPT003",
                f"operation sequence mismatch: {sim.memory._seq} != "
                f"{self.memory_seq}",
            )
        if not state_only:
            cuts = tuple(
                ThreadCut(t.thread_id, t.name, t.state.value, t.steps_taken)
                for t in sim.threads
            )
            if cuts != self.threads:
                report(
                    "CKPT004",
                    f"thread states diverge: {cuts} != {self.threads}",
                )
        return findings

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------
    def restore_by_replay(
        self,
        build: Callable[[Any], Any],
        inner: Any,
        verify: bool = True,
    ) -> Any:
        """Rebuild the run and replay the decision prefix up to the cut.

        Args:
            build: Callback constructing a *fresh* simulator (memory
                allocated, programs spawned, same seed) around the
                scheduler it is given.  It must not execute any steps.
            inner: The run's real scheduler, freshly constructed exactly
                as at t=0; after the prefix it takes over seamlessly.
            verify: Consult ``inner`` on every prefix step and require
                agreement with the recording (certifies determinism and
                restores the inner scheduler's own state).  With
                ``False`` the prefix is forced blindly — faster, but the
                inner scheduler's state is *not* advanced; only sound
                for stateless schedulers.

        Returns the restored simulator, standing exactly at the cut
        (certified via :meth:`verify`; divergence raises
        :class:`~repro.errors.CheckpointRestoreError`).
        """
        if not self.schedule and self.time:
            raise ConfigurationError(
                "checkpoint has no recorded schedule prefix; replay "
                "restore needs one (capture under a RecordingScheduler)"
            )
        from repro.obs.spans import trace_span
        from repro.sched.replay import PrefixReplayScheduler

        scheduler = PrefixReplayScheduler(inner, self.schedule, verify=verify)
        sim = build(scheduler)
        if sim.clock.now != 0:
            raise ConfigurationError(
                "build() must return a fresh simulator at t=0, got "
                f"t={sim.clock.now}"
            )
        with trace_span(
            "checkpoint.replay", label=self.label, steps=len(self.schedule)
        ):
            sim.run_fast(max_steps=len(self.schedule))
        findings = self.verify(sim)
        if findings:
            raise CheckpointRestoreError(
                "replayed run diverged from the checkpointed cut: "
                + "; ".join(str(f) for f in findings),
                findings=findings,
            )
        return sim

    def restore_direct(self, sim: Any) -> Any:
        """Poke the captured shared state into a fresh simulator.

        Restores the memory image, operation counter and clock only.
        Thread coroutine positions are not (cannot be) restored, so the
        target's threads must be freshly spawned stateless programs that
        re-read shared state — and every thread of the checkpoint must
        have been runnable at the cut.  Certified with
        ``verify(sim, state_only=True)`` before returning.
        """
        if any(t.state != "runnable" for t in self.threads):
            raise ConfigurationError(
                "direct restore requires every checkpointed thread to be "
                "runnable at the cut (finished/crashed coroutine "
                "positions cannot be re-created); use restore_by_replay"
            )
        if sim.clock.now != 0:
            raise ConfigurationError(
                f"direct restore target must be fresh (t=0), got "
                f"t={sim.clock.now}"
            )
        if len(sim.memory._values) != len(self.memory_values):
            raise ConfigurationError(
                "direct restore target has a different memory layout: "
                f"{len(sim.memory._values)} != {len(self.memory_values)} "
                "locations"
            )
        sim.memory._values[:] = list(self.memory_values)
        sim.memory._seq = self.memory_seq
        sim.clock._now = self.time
        findings = self.verify(sim, state_only=True)
        if findings:  # pragma: no cover - poke-then-check safety net
            raise CheckpointRestoreError(
                "direct restore failed verification: "
                + "; ".join(str(f) for f in findings),
                findings=findings,
            )
        return sim

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Deterministic JSON (sorted keys, digest included)."""
        payload = {
            "version": _VERSION,
            "seed": self.seed,
            "time": self.time,
            "memory_values": list(self.memory_values),
            "memory_seq": self.memory_seq,
            "threads": [asdict(t) for t in self.threads],
            "schedule": list(self.schedule),
            "label": self.label,
            "digest": self.digest(),
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def _parse(cls, text: str) -> Tuple["Checkpoint", Optional[str]]:
        """Parse JSON into a checkpoint plus its *stored* digest (or
        ``None`` when the payload predates digests).  Raises
        :class:`~repro.errors.ConfigurationError` on malformed text;
        digest validation is left to the caller."""
        try:
            payload = json.loads(text)
            checkpoint = cls(
                seed=int(payload["seed"]),
                time=int(payload["time"]),
                memory_values=tuple(float(v) for v in payload["memory_values"]),
                memory_seq=int(payload["memory_seq"]),
                threads=tuple(
                    ThreadCut(
                        thread_id=int(t["thread_id"]),
                        name=str(t["name"]),
                        state=str(t["state"]),
                        steps_taken=int(t["steps_taken"]),
                    )
                    for t in payload["threads"]
                ),
                schedule=tuple(int(s) for s in payload["schedule"]),
                label=str(payload.get("label", "")),
            )
        except (ValueError, KeyError, TypeError) as error:
            raise ConfigurationError(f"not a checkpoint: {error}") from None
        stored = payload.get("digest")
        return checkpoint, None if stored is None else str(stored)

    @classmethod
    def from_json(cls, text: str) -> "Checkpoint":
        checkpoint, stored = cls._parse(text)
        if stored is not None and stored != checkpoint.digest():
            raise ConfigurationError(
                "checkpoint digest mismatch (corrupt or hand-edited file)"
            )
        return checkpoint

    def save(self, path: PathLike) -> pathlib.Path:
        """Write the checkpoint atomically (crash leaves the old one)."""
        from repro.durable.atomic_io import atomic_write

        return atomic_write(path, self.to_json())

    @classmethod
    def load(cls, path: PathLike) -> "Checkpoint":
        return cls.from_json(pathlib.Path(path).read_text())


def inspect_checkpoint(text: str) -> Tuple[Optional[Checkpoint], List[Any]]:
    """Triage an on-disk checkpoint without raising.

    Where :meth:`Checkpoint.from_json` treats damage as a hard
    configuration error, this returns ``(checkpoint, findings)`` in the
    sanitizer's vocabulary, so recovery tooling can *report* a damaged
    artifact and fall back instead of crashing:

    * ``CKPT005`` — the stored digest disagrees with the recomputed one
      (e.g. the digest field was truncated on disk); the parsed
      checkpoint is still returned for forensics, but must not be
      restored from.
    * ``CKPT006`` — the text is not a checkpoint at all (torn JSON,
      wrong schema); no checkpoint is returned.
    """
    from repro.analysis.report import Finding

    try:
        checkpoint, stored = Checkpoint._parse(text)
    except ConfigurationError as error:
        return None, [
            Finding(
                source="checkpoint",
                rule="CKPT006",
                message=f"unreadable checkpoint: {error}",
                time=0,
            )
        ]
    findings: List[Any] = []
    if stored is not None and stored != checkpoint.digest():
        findings.append(
            Finding(
                source="checkpoint",
                rule="CKPT005",
                message=(
                    "stored digest does not match the checkpoint contents "
                    f"(expected {checkpoint.digest()[:12]}..., file says "
                    f"{stored[:12] + '...' if stored else '<empty>'}); "
                    "truncated or corrupted on disk — do not restore"
                ),
                time=checkpoint.time,
            )
        )
    return checkpoint, findings
