"""repro.durable — durable, preemption-tolerant execution.

The chaos engine (PR 2) injects crashes *inside* the simulated model;
this package makes the harness that runs those campaigns survive crashes
of its own.  Four pieces, combinable but independently useful:

* :mod:`repro.durable.atomic_io` — :func:`atomic_write` (write-temp →
  fsync → ``os.replace``), so no report, trace or checkpoint is ever
  observable torn;
* :mod:`repro.durable.journal` — :class:`RunJournal`, an append-only
  JSONL record of completed seed-cells (payloads included) with a
  config fingerprint, giving ``run_ensemble``/``run_campaign``/
  ``run_sanitize`` a ``resume`` that skips finished work after a kill
  and reproduces the final report byte-identically;
* :mod:`repro.durable.checkpoint` — :class:`Checkpoint`, a consistent
  simulator cut at ``run_fast`` chunk / ``FullSGD`` epoch boundaries,
  restored exactly by scheduler-prefix replay (certified against the
  captured state) or state-directly for stateless programs;
* :mod:`repro.durable.watchdog` / :mod:`repro.durable.signals` —
  wall-clock stall → reroute → abandon escalation for pooled chunks,
  and SIGINT/SIGTERM handlers that stop at safe points instead of
  tearing artifacts.

See DESIGN.md §12 for the durability model.
"""

from repro.durable.atomic_io import append_line, atomic_write, fsync_dir
from repro.durable.checkpoint import Checkpoint, ThreadCut, state_digest
from repro.durable.journal import RunJournal, config_fingerprint
from repro.durable.signals import GracefulShutdown
from repro.durable.watchdog import (
    ABANDON,
    REROUTE,
    WAIT,
    EnsembleWatchdog,
    WatchdogPolicy,
)

__all__ = [
    "ABANDON",
    "Checkpoint",
    "EnsembleWatchdog",
    "GracefulShutdown",
    "REROUTE",
    "RunJournal",
    "ThreadCut",
    "WAIT",
    "WatchdogPolicy",
    "append_line",
    "atomic_write",
    "config_fingerprint",
    "fsync_dir",
    "state_digest",
]
