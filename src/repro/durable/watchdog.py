"""Watchdogs for pooled execution: stall → reroute → abandon.

A process pool can wedge in ways no exception reports: a worker OOM-
killed mid-chunk, a fork that never came up, a chunk whose adversarial
schedule runs pathologically long.  Before this layer, a wedged pool
either hung the campaign forever (``chunk_timeout=None``) or was
abandoned wholesale on the first stall.  The watchdog turns that into a
graded escalation ladder, reported as structured
:class:`~repro.analysis.report.Finding` objects instead of silence:

* **WD001 (stall, warning)** — no chunk completed a heartbeat within
  ``heartbeat_timeout`` seconds: the stalled chunks are *rerouted*
  (resubmitted to fresh workers; chunk results are pure functions of
  their seeds, so a duplicate in flight is harmless).
* **WD002 (abandon after reroutes, error)** — the pool stalled again
  with the reroute budget spent: the pool is abandoned and unfinished
  chunks fall back to the deterministic serial path.
* **WD003 (deadline, error)** — the pooled phase exceeded its total
  wall-clock ``deadline``: abandoned immediately, no reroute.

Watchdog timing is wall-clock by necessity, so its findings are
**harness diagnostics**: they are surfaced on stderr and via
:attr:`EnsembleWatchdog.findings`, and deliberately never enter the
deterministic reports (which must stay byte-identical across reruns,
machines and pool weather).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

#: Escalation decisions :meth:`EnsembleWatchdog.on_wait_elapsed` returns.
WAIT = "wait"
REROUTE = "reroute"
ABANDON = "abandon"


@dataclass(frozen=True)
class WatchdogPolicy:
    """Wall-clock limits for one pooled execution phase.

    Attributes:
        heartbeat_timeout: Seconds without any chunk completing before
            the pool counts as stalled; ``None`` disables stall
            detection.
        deadline: Total wall-clock budget for the pooled phase; ``None``
            disables the deadline.
        max_reroutes: Stalls answered with a reroute before the next
            stall abandons the pool.
    """

    heartbeat_timeout: Optional[float] = None
    deadline: Optional[float] = None
    max_reroutes: int = 1


class EnsembleWatchdog:
    """Tracks heartbeats and decides the escalation ladder.

    The driver calls :meth:`start` when the pooled phase begins,
    :meth:`beat` whenever any chunk completes, uses :meth:`wait_timeout`
    as its ``wait()`` timeout, and consults :meth:`on_wait_elapsed` when
    a wait round produced nothing.  Findings accumulate in
    :attr:`findings`.

    ``clock`` is injectable for deterministic tests; the default reads
    the wall clock (harness-level timing only — simulated time is
    :class:`~repro.runtime.clock.Clock` and never touched here).
    """

    def __init__(
        self,
        policy: WatchdogPolicy,
        clock: Optional[Callable[[], float]] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        self.policy = policy
        self._clock = clock if clock is not None else time.monotonic  # repro: allow(RPD201)
        self._started: Optional[float] = None
        self._last_beat: Optional[float] = None
        self.reroutes = 0
        self.findings: List[Any] = []
        # Escalations are wall-clock weather, so the counters are
        # non-deterministic telemetry (live view / exposition only).
        from repro.obs.registry import live_registry

        registry = live_registry(metrics)
        self._m_escalations = (
            None
            if registry is None
            else {
                rule: registry.counter(
                    f"repro_watchdog_{rule.lower()}_total",
                    f"watchdog {rule} escalations",
                    deterministic=False,
                )
                for rule in ("WD001", "WD002", "WD003")
            }
        )

    def _count(self, rule: str) -> None:
        if self._m_escalations is not None:
            self._m_escalations[rule].inc()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Mark the beginning of the pooled phase (resets heartbeats)."""
        now = self._clock()
        self._started = now
        self._last_beat = now

    def beat(self) -> None:
        """Record a heartbeat (some chunk completed)."""
        self._last_beat = self._clock()

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds since :meth:`start`."""
        if self._started is None:
            return 0.0
        return self._clock() - self._started

    def wait_timeout(self) -> Optional[float]:
        """How long the driver may block waiting for the next completion:
        the tighter of the stall window and the remaining deadline
        (``None`` when the policy sets no limits)."""
        if self._started is None:
            self.start()
        limits = []
        if self.policy.heartbeat_timeout is not None:
            beat = self._last_beat if self._last_beat is not None else self._started
            limits.append(beat + self.policy.heartbeat_timeout - self._clock())
        if self.policy.deadline is not None:
            limits.append(self._started + self.policy.deadline - self._clock())
        if not limits:
            return None
        return max(0.0, min(limits))

    # ------------------------------------------------------------------
    def on_wait_elapsed(self, pending: int) -> str:
        """Escalate after a wait round that completed nothing.

        Returns :data:`WAIT` (limits not actually hit — keep waiting),
        :data:`REROUTE` (resubmit the stalled chunks) or
        :data:`ABANDON` (give the pool up; unfinished chunks go serial).
        """
        from repro.analysis.report import Finding

        now = self._clock()
        if (
            self.policy.deadline is not None
            and self._started is not None
            and now - self._started >= self.policy.deadline
        ):
            self.findings.append(
                Finding(
                    source="watchdog",
                    rule="WD003",
                    severity="error",
                    message=(
                        f"pooled phase exceeded its {self.policy.deadline:g}s "
                        f"wall-clock deadline with {pending} chunk(s) "
                        "unfinished; abandoning the pool (serial fallback)"
                    ),
                )
            )
            self._count("WD003")
            return ABANDON
        stalled = (
            self.policy.heartbeat_timeout is not None
            and self._last_beat is not None
            and now - self._last_beat >= self.policy.heartbeat_timeout
        )
        if not stalled:
            return WAIT
        if self.reroutes < self.policy.max_reroutes:
            self.reroutes += 1
            self._last_beat = now  # the reroute restarts the stall window
            self.findings.append(
                Finding(
                    source="watchdog",
                    rule="WD001",
                    severity="warning",
                    message=(
                        f"no chunk heartbeat for "
                        f"{self.policy.heartbeat_timeout:g}s with {pending} "
                        f"chunk(s) pending; rerouting them to fresh workers "
                        f"(reroute {self.reroutes}/{self.policy.max_reroutes})"
                    ),
                )
            )
            self._count("WD001")
            return REROUTE
        self.findings.append(
            Finding(
                source="watchdog",
                rule="WD002",
                severity="error",
                message=(
                    f"pool stalled again with the reroute budget "
                    f"({self.policy.max_reroutes}) spent and {pending} "
                    "chunk(s) pending; abandoning the pool (serial fallback)"
                ),
            )
        )
        self._count("WD002")
        return ABANDON
