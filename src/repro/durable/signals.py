"""Graceful shutdown: turn SIGINT/SIGTERM into a safe-point stop.

A Ctrl-C or an orchestrator's SIGTERM should never cost a campaign its
completed work.  :class:`GracefulShutdown` installs handlers that merely
*request* a stop; the drivers (:func:`repro.experiments.ensemble.
run_ensemble` and everything built on it) poll the request between
seed-cells — the journal's natural durability points — and raise
:class:`~repro.errors.InterruptedRunError` once every completed cell is
safely journaled.  The CLI then flushes a valid partial report and
prints the exact ``--resume`` invocation.

A second SIGINT while the first is still being honoured restores the
default handler and re-raises ``KeyboardInterrupt`` — the user asked
twice; stop arguing.

The handlers are process-global state, so the context manager restores
whatever was installed before it on exit, and degrades to an inert
no-op object off the main thread (where ``signal.signal`` is illegal).
"""

from __future__ import annotations

import signal
from types import FrameType
from typing import Any, Optional

from repro.errors import InterruptedRunError

_HANDLED = (signal.SIGINT, signal.SIGTERM)


class GracefulShutdown:
    """Context manager collecting shutdown requests at safe points.

    Usage::

        with GracefulShutdown() as shutdown:
            report = run_campaign(config, journal=journal, shutdown=shutdown)

    Attributes:
        requested: True once SIGINT/SIGTERM arrived (drivers poll this).
        signal_name: Name of the first signal received ("SIGINT", ...).
    """

    def __init__(self, install: bool = True) -> None:
        self.requested = False
        self.signal_name: Optional[str] = None
        self._install = install
        self._previous: dict = {}

    # ------------------------------------------------------------------
    def _handler(self, signum: int, _frame: Optional[FrameType]) -> None:
        if self.requested and signum == signal.SIGINT:
            # Second Ctrl-C: the user wants out *now*.
            signal.signal(signal.SIGINT, signal.default_int_handler)
            raise KeyboardInterrupt
        self.requested = True
        self.signal_name = signal.Signals(signum).name

    def check(self) -> None:
        """Raise :class:`InterruptedRunError` if a stop was requested."""
        if self.requested:
            raise InterruptedRunError(
                f"run interrupted by {self.signal_name or 'request'} at a "
                "safe point (completed cells are journaled)",
                reason=self.signal_name or "shutdown",
            )

    # ------------------------------------------------------------------
    def __enter__(self) -> "GracefulShutdown":
        if self._install:
            try:
                for signum in _HANDLED:
                    self._previous[signum] = signal.signal(signum, self._handler)
            except ValueError:
                # Not the main thread: signals cannot be routed here.
                # Stay inert — `requested` just never flips.
                self._previous.clear()
        return self

    def __exit__(self, *_exc: Any) -> None:
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous.clear()
