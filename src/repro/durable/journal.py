"""The crash-safe run journal: which seed-cells already finished.

A long run — a chaos campaign, a sanitizer grid, any seed ensemble — is
a list of independent *(namespace, seed)* cells, each deterministic
given its seed.  The journal is an append-only JSONL file recording one
line per completed cell, payload included, durably (flush + fsync) the
moment the cell's result reaches the driver.  After a SIGKILL, OOM or
power cut, reopening the journal with ``resume=True`` tells the driver
exactly which cells to skip — and hands back their stored results, so a
resumed run's final report is **byte-identical** to the uninterrupted
one: completed cells are replayed from the journal, the rest recompute
from their seeds.

File format (one JSON object per line)::

    {"kind": "header", "version": 1, "fingerprint": "<sha256>"}
    {"kind": "result", "ns": "0:prob-crash", "seed": 3, "payload": {...}}

The header fingerprint hashes the run configuration (seeds, specs,
workload — everything except execution knobs like ``--jobs``), so a
journal can never silently resume a *different* run: a mismatch raises
:class:`~repro.errors.ResumeMismatchError`.

Because the journal is append-only, a crash mid-append can tear exactly
one line — the last.  The loader tolerates that: a malformed **final**
line is dropped and reported as a warning :class:`Finding` (rule
``DUR001``); a malformed line anywhere *else* is real corruption and
raises.  Unknown ``kind`` values are ignored for forward compatibility.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import IO, Any, Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError, ResumeMismatchError

PathLike = Union[str, pathlib.Path]

_VERSION = 1


def config_fingerprint(payload: Any) -> str:
    """Deterministic sha256 over a JSON-serializable config description.

    Canonical form: compact separators, sorted keys — the same config
    always hashes to the same hex digest, on any platform.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class RunJournal:
    """An open run journal (single writer, append-only).

    Use :meth:`open` rather than the constructor; it handles the
    fresh-start vs resume distinction and torn-tail recovery.  The
    object is a context manager — closing it closes the file handle
    (the on-disk journal of course persists).
    """

    def __init__(
        self,
        path: pathlib.Path,
        fingerprint: str,
        completed: Dict[Tuple[str, int], Any],
        findings: List[Any],
        handle: IO[str],
    ) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self._completed = completed
        #: Warning findings from loading (torn trailing line, if any).
        self.findings = findings
        self._handle = handle

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls, path: PathLike, fingerprint: str, resume: bool = False
    ) -> "RunJournal":
        """Open (and, unless resuming, reset) the journal at ``path``.

        With ``resume=False`` any existing journal is discarded and a
        fresh one is started.  With ``resume=True`` an existing journal
        is loaded — its completed cells become :meth:`completed` — after
        verifying its header fingerprint matches ``fingerprint``; a
        missing file simply starts fresh (there is nothing to resume,
        which is exactly what a first run looks like).
        """
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        completed: Dict[Tuple[str, int], Any] = {}
        findings: List[Any] = []
        if resume and path.exists():
            completed, findings = cls._load(path, fingerprint)
            handle = path.open("a")
        else:
            handle = path.open("w")
            header = {"kind": "header", "version": _VERSION, "fingerprint": fingerprint}
            from repro.durable.atomic_io import append_line

            append_line(handle, json.dumps(header, sort_keys=True))
        return cls(path, fingerprint, completed, findings, handle)

    @staticmethod
    def _load(
        path: pathlib.Path, fingerprint: str
    ) -> Tuple[Dict[Tuple[str, int], Any], List[Any]]:
        from repro.analysis.report import Finding

        completed: Dict[Tuple[str, int], Any] = {}
        findings: List[Finding] = []
        lines = path.read_text().splitlines()
        # Trailing blank fragments are not records.
        while lines and not lines[-1].strip():
            lines.pop()
        header_seen = False
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                if not isinstance(entry, dict):
                    raise ValueError("journal entries are JSON objects")
            except ValueError as error:
                if index == len(lines) - 1:
                    # Torn tail from a crashed writer: drop + report.
                    findings.append(
                        Finding(
                            source="journal",
                            rule="DUR001",
                            severity="warning",
                            message=(
                                "dropped torn trailing journal line "
                                f"(crashed writer): {error}"
                            ),
                            location=f"{path.name}:{index + 1}",
                        )
                    )
                    continue
                raise ConfigurationError(
                    f"{path}:{index + 1}: corrupt journal line mid-file "
                    f"({error})"
                ) from None
            kind = entry.get("kind")
            if kind == "header":
                header_seen = True
                if entry.get("fingerprint") != fingerprint:
                    raise ResumeMismatchError(
                        f"journal {path} was written by a different run "
                        f"configuration (fingerprint "
                        f"{entry.get('fingerprint')!r} != {fingerprint!r}); "
                        "refusing to resume"
                    )
            elif kind == "result":
                try:
                    key = (str(entry["ns"]), int(entry["seed"]))
                    payload = entry["payload"]
                except (KeyError, TypeError, ValueError) as error:
                    raise ConfigurationError(
                        f"{path}:{index + 1}: malformed result record "
                        f"({error})"
                    ) from None
                completed[key] = payload
            # Unknown kinds: skip (forward compatibility).
        if not header_seen:
            raise ConfigurationError(
                f"journal {path} has no header line; not a run journal"
            )
        return completed, findings

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def completed(self, namespace: str) -> Dict[int, Any]:
        """Stored payloads of finished cells in ``namespace``, by seed."""
        return {
            seed: payload
            for (ns, seed), payload in self._completed.items()
            if ns == namespace
        }

    @property
    def total_completed(self) -> int:
        """Number of finished cells recorded, across all namespaces."""
        return len(self._completed)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def record(self, namespace: str, seed: int, payload: Any) -> None:
        """Durably record one finished cell (idempotent per cell)."""
        key = (namespace, int(seed))
        if key in self._completed:
            return
        from repro.durable.atomic_io import append_line

        entry = {
            "kind": "result",
            "ns": namespace,
            "seed": int(seed),
            "payload": payload,
        }
        append_line(self._handle, json.dumps(entry, sort_keys=True))
        self._completed[key] = payload

    # ------------------------------------------------------------------
    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *_exc: Any) -> Optional[bool]:
        self.close()
        return None

    def __repr__(self) -> str:
        return (
            f"RunJournal(path={str(self.path)!r}, "
            f"completed={self.total_completed})"
        )
