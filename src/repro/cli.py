"""Command-line interface: ``python -m repro``.

Lets a downstream user regenerate any paper artifact without writing
code::

    python -m repro list
    python -m repro run E2                 # quick preset
    python -m repro run E5 --scale full    # EXPERIMENTS.md-scale
    python -m repro run all --out results/ # every experiment, files per id
    python -m repro chaos --seeds 4        # seeded fault campaign
    python -m repro zoo                    # every algorithm x every adversary
    python -m repro sanitize               # race/staleness sanitizer presets
    python -m repro lint src/repro         # program-DSL / determinism lint
    python -m repro serve --port 8321      # supervised job server (HTTP)
    python -m repro loadtest --self-host   # chaos-load the server
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Dict, Optional, Tuple

from repro.experiments import (
    a1_ablations,
    a2_consistency,
    e1_sequential,
    e2_lower_bound,
    e3_good_bad,
    e4_indicator_sum,
    e5_upper_bound,
    e6_bound_comparison,
    e7_full_sgd,
    e8_tradeoff,
    e9_staleness_aware,
    e10_momentum,
    e11_dense_gradients,
    e12_sparsity,
    e13_algorithm_zoo,
    e14_resilience,
    e15_verify,
    f1_figure,
)

#: Experiment id -> (driver module, config class).
REGISTRY: Dict[str, Tuple[object, type]] = {
    "E1": (e1_sequential, e1_sequential.E1Config),
    "E2": (e2_lower_bound, e2_lower_bound.E2Config),
    "E3": (e3_good_bad, e3_good_bad.E3Config),
    "E4": (e4_indicator_sum, e4_indicator_sum.E4Config),
    "E5": (e5_upper_bound, e5_upper_bound.E5Config),
    "E6": (e6_bound_comparison, e6_bound_comparison.E6Config),
    "E7": (e7_full_sgd, e7_full_sgd.E7Config),
    "E8": (e8_tradeoff, e8_tradeoff.E8Config),
    "E9": (e9_staleness_aware, e9_staleness_aware.E9Config),
    "E10": (e10_momentum, e10_momentum.E10Config),
    "E11": (e11_dense_gradients, e11_dense_gradients.E11Config),
    "E12": (e12_sparsity, e12_sparsity.E12Config),
    "E13": (e13_algorithm_zoo, e13_algorithm_zoo.E13Config),
    "E14": (e14_resilience, e14_resilience.E14Config),
    "E15": (e15_verify, e15_verify.E15Config),
    "F1": (f1_figure, f1_figure.F1Config),
    "A1": (a1_ablations, a1_ablations.A1Config),
    "A2": (a2_consistency, a2_consistency.A2Config),
}


def _experiment_title(module) -> str:
    """First sentence of the driver module's docstring."""
    doc = (module.__doc__ or "").strip().splitlines()
    return doc[0] if doc else ""


def cmd_list(_args: argparse.Namespace) -> int:
    """Print the experiment registry."""
    width = max(len(k) for k in REGISTRY)
    for key, (module, _config) in REGISTRY.items():
        print(f"{key.ljust(width)}  {_experiment_title(module)}")
    return 0


def _write_text_atomic(path: pathlib.Path, text: str) -> None:
    """Persist a CLI artifact via the durable temp+fsync+rename path, so
    an interrupt mid-write never leaves a torn file."""
    from repro.durable.atomic_io import atomic_write

    atomic_write(path, text.encode("utf-8"))


def _run_one(
    key: str,
    scale: str,
    out_dir: Optional[pathlib.Path],
    plot: bool,
    jobs: Optional[int] = None,
):
    module, config_cls = REGISTRY[key]
    config = config_cls.full() if scale == "full" else config_cls.quick()
    if jobs is not None and hasattr(config, "jobs"):
        config.jobs = jobs
    result = module.run(config)
    text = result.render(plot=plot)
    print(text)
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        _write_text_atomic(out_dir / f"{key}.txt", text + "\n")
    return result


def cmd_run(args: argparse.Namespace) -> int:
    """Run one experiment (or ``all``) and print/persist its artifact."""
    keys = list(REGISTRY) if args.experiment.lower() == "all" else [
        args.experiment.upper()
    ]
    unknown = [k for k in keys if k not in REGISTRY]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(choose from {', '.join(REGISTRY)})",
            file=sys.stderr,
        )
        return 2
    out_dir = pathlib.Path(args.out) if args.out else None
    all_passed = True
    obs_lines = []
    for key in keys:
        result = _run_one(key, args.scale, out_dir, not args.no_plot, args.jobs)
        all_passed = all_passed and result.passed
        obs = getattr(result, "obs", None)
        if obs is not None:
            obs_lines.append(
                {
                    "kind": "experiment",
                    "id": key,
                    "passed": result.passed,
                    "metrics": obs.get("aggregate", obs),
                }
            )
        print()
    if args.metrics is not None:
        from repro.obs.snapshot import write_snapshot_jsonl

        write_snapshot_jsonl(args.metrics, obs_lines)
        print(
            f"metric snapshot ({len(obs_lines)} line(s)) written to "
            f"{args.metrics}",
            file=sys.stderr,
        )
        if not obs_lines:
            print(
                "note: none of the selected experiments export "
                "observability metrics (currently E4 and E5 do)",
                file=sys.stderr,
            )
    return 0 if all_passed else 1


def cmd_report(args: argparse.Namespace) -> int:
    """Summarize verdicts from a directory of <id>.txt artifacts."""
    directory = pathlib.Path(args.dir)
    if not directory.is_dir():
        print(f"not a directory: {directory}", file=sys.stderr)
        return 2
    rows = []
    for key in REGISTRY:
        artifact = directory / f"{key}.txt"
        if not artifact.exists():
            rows.append((key, "missing"))
            continue
        text = artifact.read_text()
        if "verdict: PASS" in text:
            rows.append((key, "PASS"))
        elif "verdict: FAIL" in text:
            rows.append((key, "FAIL"))
        else:
            rows.append((key, "unknown"))
    width = max(len(k) for k, _ in rows)
    failures = 0
    for key, verdict in rows:
        print(f"{key.ljust(width)}  {verdict}")
        if verdict == "FAIL":
            failures += 1
    present = sum(1 for _k, v in rows if v in ("PASS", "FAIL"))
    print(f"\n{present} artifacts, {failures} failing")
    return 1 if failures else 0


def _open_journal(args: argparse.Namespace, fingerprint: str):
    """Open the ``--journal`` (honouring ``--resume``) or return an error
    exit code.  Returns ``(journal_or_None, exit_code_or_None)``."""
    from repro.errors import ReproError

    if args.journal is None:
        if args.resume:
            print("--resume requires --journal PATH", file=sys.stderr)
            return None, 2
        return None, None
    from repro.durable.journal import RunJournal

    try:
        journal = RunJournal.open(args.journal, fingerprint, resume=args.resume)
    except ReproError as error:
        print(str(error), file=sys.stderr)
        return None, 2
    for finding in journal.findings:
        print(str(finding), file=sys.stderr)
    if args.resume and journal.total_completed:
        print(
            f"resuming: {journal.total_completed} cell(s) already journaled "
            f"in {args.journal}",
            file=sys.stderr,
        )
    return journal, None


def _resume_invocation(command: str, args: argparse.Namespace) -> str:
    """The exact command line that resumes this interrupted run."""
    parts = ["python", "-m", "repro", command]
    if command == "chaos":
        parts += [
            "--specs", args.specs,
            "--seeds", str(args.seeds),
            "--base-seed", str(args.base_seed),
            "--threads", str(args.threads),
            "--iterations", str(args.iterations),
            "--check-interval", str(args.check_interval),
        ]
        if args.no_recovery:
            parts.append("--no-recovery")
        if args.no_monitors:
            parts.append("--no-monitors")
        # collect_obs is part of the journal fingerprint, so a --metrics
        # campaign must resume with --metrics as well.
        if args.metrics is not None:
            parts += ["--metrics", args.metrics]
    elif command == "zoo":
        parts += [
            "--algorithms", args.algorithms,
            "--adversaries", args.adversaries,
            "--seeds", str(args.seeds),
            "--base-seed", str(args.base_seed),
            "--threads", str(args.threads),
            "--iterations", str(args.iterations),
        ]
        if args.no_sanitize:
            parts.append("--no-sanitize")
        # collect_obs is part of the journal fingerprint (see chaos).
        if args.metrics is not None:
            parts += ["--metrics", args.metrics]
    elif command == "heal":
        parts += [
            "--algorithms", args.algorithms,
            "--plans", args.plans,
            "--seeds", str(args.seeds),
            "--base-seed", str(args.base_seed),
            "--threads", str(args.threads),
            "--iterations", str(args.iterations),
            "--adversary", args.adversary,
            "--retry-budget", str(args.retry_budget),
            "--check-interval", str(args.check_interval),
        ]
    elif command == "verify":
        parts += [
            "--variants", args.variants,
            "--seeds", str(args.seeds),
            "--base-seed", str(args.base_seed),
            "--threads", str(args.threads),
            "--iterations", str(args.iterations),
            "--max-steps", str(args.max_steps),
            "--smt-engine", args.smt_engine,
        ]
        if args.no_full_tree:
            parts.append("--no-full-tree")
        if args.memoize:
            parts.append("--memoize")
    else:
        parts += [
            "--presets", args.presets,
            "--seeds", str(args.seeds),
            "--base-seed", str(args.base_seed),
        ]
        if args.strict:
            parts.append("--strict")
    if args.jobs is not None:
        parts += ["--jobs", str(args.jobs)]
    if args.out is not None:
        parts += ["--out", args.out]
    parts += ["--journal", args.journal, "--resume"]
    return " ".join(parts)


def _interrupted(
    command: str,
    args: argparse.Namespace,
    error: Exception,
    journal,
    partial_report,
    basename: str,
) -> int:
    """Shared interrupt epilogue: flush a valid partial report + the
    journal, print the exact resume invocation, exit 130."""
    print(f"\ninterrupted: {error}", file=sys.stderr)
    if journal is not None:
        partial = partial_report()
        if args.out is not None:
            out_dir = pathlib.Path(args.out)
            out_dir.mkdir(parents=True, exist_ok=True)
            partial.write(str(out_dir / f"{basename}.partial.txt"), "txt")
            partial.write(str(out_dir / f"{basename}.partial.json"), "json")
            print(
                f"partial report written to {out_dir}/{basename}.partial.*",
                file=sys.stderr,
            )
        print(
            f"{journal.total_completed} completed cell(s) are journaled in "
            f"{journal.path}; resume with:\n  "
            + _resume_invocation(command, args),
            file=sys.stderr,
        )
    return 130


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a seeded fault campaign and print/persist the robustness report.

    Exit code 1 when any invariant monitor fired or any cell failed to
    converge (what the CI chaos job pins); 0 otherwise.  With
    ``--journal`` the campaign is durable: finished cells are journaled
    as they land, SIGINT/SIGTERM stops at the next cell boundary (exit
    130, valid partial report flushed), and ``--resume`` skips journaled
    cells while producing a byte-identical final report.
    """
    from repro.durable.signals import GracefulShutdown
    from repro.errors import InterruptedRunError
    from repro.faults.campaign import (
        CampaignConfig,
        ChaosWorkload,
        campaign_fingerprint,
        campaign_metrics_lines,
        partial_report,
        preset_specs,
        run_campaign,
    )
    from repro.obs.spans import SpanRecorder, set_span_recorder

    presets = preset_specs()
    names = [name.strip() for name in args.specs.split(",") if name.strip()]
    unknown = [name for name in names if name not in presets]
    if unknown or not names:
        print(
            f"unknown fault spec(s): {', '.join(unknown) or '(none given)'} "
            f"(choose from {', '.join(presets)})",
            file=sys.stderr,
        )
        return 2
    workload = ChaosWorkload(
        num_threads=args.threads, iterations=args.iterations
    )
    config = CampaignConfig(
        specs=tuple(presets[name] for name in names),
        seeds=tuple(range(args.base_seed, args.base_seed + args.seeds)),
        workload=workload,
        recover=not args.no_recovery,
        monitors=not args.no_monitors,
        check_interval=args.check_interval,
        jobs=args.jobs if args.jobs is not None else 1,
        collect_obs=args.metrics is not None,
    )
    registry = top = None
    if args.metrics is not None or args.metrics_interval is not None:
        from repro.obs.registry import MetricsRegistry
        from repro.obs.top import TopView

        registry = MetricsRegistry()
        if args.metrics_interval is not None:
            top = TopView(
                registry, interval=args.metrics_interval, title="repro chaos"
            )

    def on_cell(_seed, _outcome) -> None:
        if top is not None:
            top.maybe_render()

    recorder = None
    if args.trace is not None:
        recorder = SpanRecorder()
        set_span_recorder(recorder)
    journal, exit_code = _open_journal(args, campaign_fingerprint(config))
    if exit_code is not None:
        return exit_code
    try:
        with GracefulShutdown() as shutdown:
            report = run_campaign(
                config,
                journal=journal,
                shutdown=shutdown,
                metrics=registry,
                progress=on_cell,
            )
    except InterruptedRunError as error:
        return _interrupted(
            "chaos",
            args,
            error,
            journal,
            lambda: partial_report(config, journal),
            "chaos_report",
        )
    finally:
        if journal is not None:
            journal.close()
        if recorder is not None:
            set_span_recorder(None)
            recorder.write_chrome_trace(args.trace)
            print(f"chrome trace written to {args.trace}", file=sys.stderr)
    if top is not None:
        top.maybe_render(force=True)
    text = report.render()
    print(text)
    if args.metrics is not None:
        from repro.obs.snapshot import write_snapshot_jsonl

        lines = campaign_metrics_lines(config, report.outcomes)
        write_snapshot_jsonl(args.metrics, lines)
        print(
            f"metric snapshot ({len(lines)} line(s)) written to "
            f"{args.metrics}; inspect with: python -m repro obs "
            f"{args.metrics}",
            file=sys.stderr,
        )
    if args.out is not None:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        report.write(str(out_dir / "chaos_report.txt"), "txt")
        report.write(str(out_dir / "chaos_report.json"), "json")
    return 0 if report.passed else 1


def cmd_zoo(args: argparse.Namespace) -> int:
    """Run the algorithm zoo grid: every selected algorithm under every
    selected adversary, seed-ensembled, with lemma certificates and the
    race/staleness sanitizer attached.

    Exit code 1 when any applicable certificate is violated or the
    sanitizer flags anything (what the CI zoo job pins); 0 otherwise.
    ``--journal``/``--resume`` give durable kill/resume at cell
    granularity with byte-identical final reports, and ``--jobs``
    parallelizes without changing a byte either.
    """
    from repro.core.algorithm import algorithm_names
    from repro.durable.signals import GracefulShutdown
    from repro.errors import ConfigurationError, InterruptedRunError
    from repro.experiments.e13_algorithm_zoo import (
        ZooConfig,
        ZooWorkload,
        partial_zoo_report,
        run_zoo,
        zoo_fingerprint,
        zoo_metrics_lines,
    )

    algorithms = (
        algorithm_names()
        if args.algorithms == "all"
        else tuple(n.strip() for n in args.algorithms.split(",") if n.strip())
    )
    adversaries = tuple(
        n.strip() for n in args.adversaries.split(",") if n.strip()
    )
    try:
        config = ZooConfig(
            algorithms=algorithms,
            adversaries=adversaries,
            seeds=tuple(range(args.base_seed, args.base_seed + args.seeds)),
            workload=ZooWorkload(
                num_threads=args.threads, iterations=args.iterations
            ),
            sanitize=not args.no_sanitize,
            jobs=args.jobs if args.jobs is not None else 1,
            collect_obs=args.metrics is not None,
        )
    except ConfigurationError as error:
        print(str(error), file=sys.stderr)
        return 2
    registry = top = None
    if args.metrics is not None or args.metrics_interval is not None:
        from repro.obs.registry import MetricsRegistry
        from repro.obs.top import TopView

        registry = MetricsRegistry()
        if args.metrics_interval is not None:
            top = TopView(
                registry, interval=args.metrics_interval, title="repro zoo"
            )

    def on_cell(_seed, _outcome) -> None:
        if top is not None:
            top.maybe_render()

    journal, exit_code = _open_journal(args, zoo_fingerprint(config))
    if exit_code is not None:
        return exit_code
    try:
        with GracefulShutdown() as shutdown:
            report = run_zoo(
                config,
                journal=journal,
                shutdown=shutdown,
                metrics=registry,
                progress=on_cell,
            )
    except InterruptedRunError as error:
        return _interrupted(
            "zoo",
            args,
            error,
            journal,
            lambda: partial_zoo_report(config, journal),
            "zoo_report",
        )
    finally:
        if journal is not None:
            journal.close()
    if top is not None:
        top.maybe_render(force=True)
    text = report.render()
    print(text)
    if args.metrics is not None:
        from repro.obs.snapshot import write_snapshot_jsonl

        lines = zoo_metrics_lines(config, report.outcomes)
        write_snapshot_jsonl(args.metrics, lines)
        print(
            f"metric snapshot ({len(lines)} line(s)) written to "
            f"{args.metrics}; inspect with: python -m repro obs "
            f"{args.metrics}",
            file=sys.stderr,
        )
    if args.out is not None:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        report.write(str(out_dir / "zoo_report.txt"), "txt")
        report.write(str(out_dir / "zoo_report.json"), "json")
    return 0 if report.passed else 1


def cmd_verify(args: argparse.Namespace) -> int:
    """Run the verification tier: exhaustive schedule enumeration over
    the variant panel at small scope plus the SMT lemma queries.

    Exit code 1 when any clean variant has a counterexample schedule,
    any mutant lacks a replay-verified sanitizer-flagged one, or any
    SMT query is refuted (what the CI verify job pins); 0 otherwise.
    ``--journal``/``--resume`` give durable kill/resume at cell
    granularity, and ``--jobs`` parallelizes without changing a byte.
    """
    from repro.durable.signals import GracefulShutdown
    from repro.errors import ConfigurationError, InterruptedRunError
    from repro.verify.engine import (
        VERIFY_VARIANTS,
        VerifyConfig,
        VerifyScope,
        partial_verify_report,
        run_verify,
        verify_fingerprint,
        verify_variant_names,
    )
    from repro.verify.smt import SmtConfig

    variants = (
        verify_variant_names()
        if args.variants == "all"
        else (
            VERIFY_VARIANTS
            if args.variants == "default"
            else tuple(
                n.strip() for n in args.variants.split(",") if n.strip()
            )
        )
    )
    try:
        config = VerifyConfig(
            variants=variants,
            seeds=tuple(range(args.base_seed, args.base_seed + args.seeds)),
            scope=VerifyScope(
                threads=args.threads,
                iterations=args.iterations,
                max_steps=args.max_steps,
            ),
            measure_full_tree=not args.no_full_tree,
            memoize=args.memoize,
            smt=SmtConfig(engine=args.smt_engine),
            jobs=args.jobs if args.jobs is not None else 1,
        )
    except ConfigurationError as error:
        print(str(error), file=sys.stderr)
        return 2
    journal, exit_code = _open_journal(args, verify_fingerprint(config))
    if exit_code is not None:
        return exit_code
    try:
        with GracefulShutdown() as shutdown:
            report = run_verify(config, journal=journal, shutdown=shutdown)
    except InterruptedRunError as error:
        return _interrupted(
            "verify",
            args,
            error,
            journal,
            lambda: partial_verify_report(config, journal),
            "verify_report",
        )
    finally:
        if journal is not None:
            journal.close()
    print(report.render())
    if args.out is not None:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        report.write(str(out_dir / "verify_report.txt"), "txt")
        report.write(str(out_dir / "verify_report.json"), "json")
    return 0 if report.passed else 1


def cmd_heal(args: argparse.Namespace) -> int:
    """Run the E14 resilience grid: every selected algorithm under every
    selected corruption plan with the self-healing ladder on.

    Exit code 1 when any cell is abandoned or fails to converge (what
    the CI heal job pins); 0 otherwise.  ``--journal``/``--resume`` give
    durable kill/resume at cell granularity with byte-identical final
    reports, and ``--jobs`` parallelizes without changing a byte either.
    """
    from repro.durable.signals import GracefulShutdown
    from repro.errors import ConfigurationError, InterruptedRunError
    from repro.experiments.e14_resilience import (
        HEAL_ALGORITHMS,
        HealGridConfig,
        HealWorkload,
        heal_fingerprint,
        heal_metrics_lines,
        heal_plan_specs,
        partial_heal_report,
        run_heal_grid,
    )
    from repro.heal.rollback import HealPolicy

    algorithms = (
        HEAL_ALGORITHMS
        if args.algorithms == "default"
        else tuple(n.strip() for n in args.algorithms.split(",") if n.strip())
    )
    plans = (
        tuple(sorted(heal_plan_specs()))
        if args.plans == "all"
        else tuple(n.strip() for n in args.plans.split(",") if n.strip())
    )
    try:
        config = HealGridConfig(
            algorithms=algorithms,
            plans=plans,
            seeds=tuple(range(args.base_seed, args.base_seed + args.seeds)),
            workload=HealWorkload(
                num_threads=args.threads,
                iterations=args.iterations,
                adversary=args.adversary,
            ),
            policy=HealPolicy(
                check_interval=args.check_interval,
                retry_budget=args.retry_budget,
            ),
            jobs=args.jobs if args.jobs is not None else 1,
        )
    except ConfigurationError as error:
        print(str(error), file=sys.stderr)
        return 2
    registry = top = None
    if args.metrics is not None or args.metrics_interval is not None:
        from repro.obs.registry import MetricsRegistry
        from repro.obs.top import TopView

        registry = MetricsRegistry()
        if args.metrics_interval is not None:
            top = TopView(
                registry, interval=args.metrics_interval, title="repro heal"
            )

    def on_cell(_seed, _outcome) -> None:
        if top is not None:
            top.maybe_render()

    journal, exit_code = _open_journal(args, heal_fingerprint(config))
    if exit_code is not None:
        return exit_code
    try:
        with GracefulShutdown() as shutdown:
            report = run_heal_grid(
                config,
                journal=journal,
                shutdown=shutdown,
                metrics=registry,
                progress=on_cell,
            )
    except InterruptedRunError as error:
        return _interrupted(
            "heal",
            args,
            error,
            journal,
            lambda: partial_heal_report(config, journal),
            "heal_report",
        )
    finally:
        if journal is not None:
            journal.close()
    if top is not None:
        top.maybe_render(force=True)
    print(report.render())
    if args.metrics is not None:
        from repro.obs.snapshot import write_snapshot_jsonl

        lines = heal_metrics_lines(config, report.outcomes)
        write_snapshot_jsonl(args.metrics, lines)
        print(
            f"metric snapshot ({len(lines)} line(s)) written to "
            f"{args.metrics}; inspect with: python -m repro obs "
            f"{args.metrics}",
            file=sys.stderr,
        )
    if args.out is not None:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        report.write(str(out_dir / "heal_report.txt"), "txt")
        report.write(str(out_dir / "heal_report.json"), "json")
    return 0 if report.passed else 1


def cmd_sanitize(args: argparse.Namespace) -> int:
    """Run the race/staleness sanitizer over the named preset workloads.

    Exit code 1 when the aggregated report fails (any error-severity
    finding or violated lemma certificate; warnings too under
    ``--strict``); 0 when clean.  Reports are deterministic — rerunning
    the same presets/seeds/jobs produces byte-identical output.
    """
    from repro.analysis.presets import (
        partial_sanitize_report,
        run_sanitize,
        sanitize_fingerprint,
        sanitize_presets,
    )
    from repro.durable.signals import GracefulShutdown
    from repro.errors import InterruptedRunError

    presets = sanitize_presets()
    names = [name.strip() for name in args.presets.split(",") if name.strip()]
    unknown = [name for name in names if name not in presets]
    if unknown or not names:
        print(
            f"unknown sanitize preset(s): {', '.join(unknown) or '(none given)'} "
            f"(choose from {', '.join(presets)})",
            file=sys.stderr,
        )
        return 2
    chosen = tuple(presets[name] for name in names)
    seeds = tuple(range(args.base_seed, args.base_seed + args.seeds))
    registry = top = None
    if args.metrics is not None or args.metrics_interval is not None:
        from repro.obs.registry import MetricsRegistry
        from repro.obs.top import TopView

        registry = MetricsRegistry()
        if args.metrics_interval is not None:
            top = TopView(
                registry, interval=args.metrics_interval, title="repro sanitize"
            )

    def on_cell(_seed, _run) -> None:
        if top is not None:
            top.maybe_render()

    journal, exit_code = _open_journal(
        args, sanitize_fingerprint(chosen, seeds, strict=args.strict)
    )
    if exit_code is not None:
        return exit_code
    try:
        with GracefulShutdown() as shutdown:
            report = run_sanitize(
                chosen,
                seeds=seeds,
                jobs=args.jobs if args.jobs is not None else 1,
                strict=args.strict,
                journal=journal,
                shutdown=shutdown,
                metrics=registry,
                progress=on_cell,
            )
    except InterruptedRunError as error:
        return _interrupted(
            "sanitize",
            args,
            error,
            journal,
            lambda: partial_sanitize_report(
                chosen, seeds, journal, strict=args.strict
            ),
            "analysis_report",
        )
    finally:
        if journal is not None:
            journal.close()
    if top is not None:
        top.maybe_render(force=True)
    text = report.render()
    print(text)
    if args.metrics is not None:
        from repro.obs.snapshot import write_snapshot_jsonl

        lines = [
            {
                "kind": "run",
                "label": run.label,
                "steps": run.steps,
                "iterations": run.iterations,
                "findings": len(run.findings),
                "certificates_ok": all(c.holds for c in run.certificates),
            }
            for run in report.runs
        ]
        write_snapshot_jsonl(args.metrics, lines)
        print(
            f"metric snapshot ({len(lines)} line(s)) written to "
            f"{args.metrics}",
            file=sys.stderr,
        )
    if args.out is not None:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        report.write(str(out_dir / "analysis_report.txt"), "txt")
        report.write(str(out_dir / "analysis_report.json"), "json")
    return 0 if report.passed else 1


def cmd_obs(args: argparse.Namespace) -> int:
    """Render a metric-snapshot file (``--metrics`` output) for humans.

    ``--format text`` (default) prints per-cell summaries plus ASCII
    histogram bars; ``--format prom`` re-renders every metrics block as
    a Prometheus text exposition.  Pure rendering over a deterministic
    file — the output is deterministic too.
    """
    from repro.errors import ReproError
    from repro.obs.snapshot import load_snapshot_jsonl, prometheus_exposition
    from repro.obs.top import render_snapshot_lines

    path = pathlib.Path(args.path)
    if not path.exists():
        print(f"no such snapshot file: {path}", file=sys.stderr)
        return 2
    try:
        lines = load_snapshot_jsonl(path)
    except ReproError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.format == "prom":
        # Per-cell blocks would collide on metric names; the exposition
        # renders the roll-up lines only (aggregate / experiment).
        blocks = []
        for line in lines:
            if line.get("kind") not in ("aggregate", "experiment"):
                continue
            metrics = line.get("metrics")
            if not isinstance(metrics, dict) or not metrics:
                continue
            label = line.get("id")
            header = f"# {line['kind']}" + (f" {label}" if label else "")
            blocks.append(header + "\n" + prometheus_exposition(metrics))
        if not blocks:
            print("no aggregate metrics blocks in snapshot", file=sys.stderr)
            return 1
        print("\n".join(blocks), end="")
    else:
        print(render_snapshot_lines(lines))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Statically lint program/experiment sources for DSL misuse and
    determinism hazards.  Exit code 1 on any finding, 0 when clean."""
    from repro.analysis.lint import lint_paths, render_findings

    paths = [pathlib.Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    findings = lint_paths(paths)
    text = render_findings(findings)
    print(text)
    if args.out is not None:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        _write_text_atomic(out_dir / "lint_report.txt", text + "\n")
    return 1 if findings else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the supervised job server until SIGINT/SIGTERM, then drain.

    Exit codes: 0 clean drain, 2 configuration error.
    """
    import asyncio

    from repro.durable.signals import GracefulShutdown
    from repro.obs.registry import MetricsRegistry
    from repro.serve.server import JobServer
    from repro.serve.supervisor import JobSupervisor, ServerPolicy

    if args.workers < 1 or args.queue_size < 1 or args.max_attempts < 1:
        print(
            "--workers, --queue-size and --max-attempts must be >= 1",
            file=sys.stderr,
        )
        return 2
    policy = ServerPolicy(
        max_queue=args.queue_size,
        workers=args.workers,
        job_deadline=args.job_deadline,
        stall_timeout=args.stall_timeout,
        max_attempts=args.max_attempts,
        respawn_budget=args.respawn_budget,
    )
    workdir = pathlib.Path(args.workdir)
    metrics = MetricsRegistry()
    supervisor = JobSupervisor(policy, workdir=workdir, metrics=metrics)
    server = JobServer(
        supervisor, host=args.host, port=args.port, metrics=metrics
    )

    async def _serve() -> None:
        with GracefulShutdown() as shutdown:
            await server.start()
            print(
                f"serving on http://{server.host}:{server.port} "
                f"(workdir {workdir})",
                flush=True,
            )
            await server.run_until_shutdown(shutdown)

    asyncio.run(_serve())
    counts = supervisor.counts()
    print(
        f"drained: {counts['done']} done, {counts['failed']} failed, "
        f"{counts['interrupted']} interrupted (journals kept), "
        f"{counts['cancelled']} cancelled",
        flush=True,
    )
    return 0


def cmd_loadtest(args: argparse.Namespace) -> int:
    """Chaos-load a job server and check the acceptance property.

    With ``--self-host`` a private server is started (and drained) in
    process; otherwise an already-running ``--host``/``--port`` is the
    target.  Exit codes: 0 acceptance property held, 1 degraded, 2
    configuration error.
    """
    import asyncio
    import json as json_module
    import tempfile

    from repro.obs.registry import MetricsRegistry
    from repro.serve.loadgen import LoadGenerator, LoadPlan

    plan = LoadPlan(
        spec={
            "kind": "chaos",
            "params": {
                "specs": ["none"],
                "seeds": args.seeds,
                "iterations": args.iterations,
            },
        },
        requests=args.requests,
        duplicates=args.duplicates,
        malformed=args.malformed,
        slow_loris=args.slow_loris,
        kill_workers=args.kill_workers,
    )

    async def _run() -> "object":
        if not args.self_host:
            generator = LoadGenerator(args.host, args.port, plan)
            return await generator.run_async()
        from repro.serve.server import JobServer
        from repro.serve.supervisor import JobSupervisor, ServerPolicy

        workdir = pathlib.Path(
            args.workdir
            if args.workdir is not None
            else tempfile.mkdtemp(prefix="repro-loadtest-")
        )
        metrics = MetricsRegistry()
        supervisor = JobSupervisor(
            ServerPolicy(max_queue=args.queue_size, workers=args.workers),
            workdir=workdir,
            metrics=metrics,
        )
        server = JobServer(supervisor, metrics=metrics)
        await server.start()
        try:
            generator = LoadGenerator("127.0.0.1", server.port, plan)
            return await generator.run_async()
        finally:
            await server.stop()
            await asyncio.get_event_loop().run_in_executor(
                None, supervisor.drain
            )

    report = asyncio.run(_run())
    print(report.render())
    if args.out is not None:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        _write_text_atomic(
            out_dir / "loadtest_report.json",
            json_module.dumps(report.summary(), indent=2, sort_keys=True)
            + "\n",
        )
    return 0 if report.ok else 1


def cmd_trace(args: argparse.Namespace) -> int:
    """Stitch causal span spills into one Chrome/Perfetto trace file.

    ``path`` may be a single ``*.spans.jsonl`` spill, a directory (a
    serve workdir or one job's directory — spills are found
    recursively), or a job journal file (its serve workdir is scanned).
    Exit codes: 0 wrote a trace, 1 no spans found, 2 bad path.
    """
    from repro.obs.causal import (
        SPILL_SUFFIX,
        find_spills,
        read_spills,
        stitch_records,
        write_stitched_trace,
    )

    root = pathlib.Path(args.path)
    if not root.exists():
        print(f"no such path: {root}", file=sys.stderr)
        return 2
    if root.is_file():
        if root.name.endswith(SPILL_SUFFIX):
            spills = [root]
        else:
            # A journal (workdir/journal/<fp>.jsonl): scan its workdir.
            spills = find_spills(root.parent.parent)
    else:
        spills = find_spills(root)
    records = read_spills(spills)
    if args.trace_id is not None:
        records = [r for r in records if r.get("trace") == args.trace_id]
    if not records:
        print(
            f"no span records under {root} "
            f"(looked at {len(spills)} spill file(s))",
            file=sys.stderr,
        )
        return 1
    payload = stitch_records(records, mode=args.mode)
    out = pathlib.Path(args.out)
    write_stitched_trace(out, payload)
    traces = sorted({str(r.get("trace")) for r in records})
    lanes = sorted(
        {(str(r.get("role", "?")), int(r.get("attempt", 0) or 0)) for r in records}
    )
    flows = sum(1 for r in records if r.get("flow"))
    print(
        f"stitched {len(records)} span(s) from {len(spills)} spill(s) "
        f"across {len(lanes)} lane(s), {flows} flow link(s), "
        f"{len(traces)} trace(s) -> {out} [{args.mode}]"
    )
    return 0


def cmd_trend(args: argparse.Namespace) -> int:
    """Perf-trend observatory over ``benchmarks/results/BENCH_*.json``.

    Default: render the ledger (with per-metric deltas).  ``--update``
    ingests changed bench files first.  ``--check`` runs the regression
    gate: exit 1 if any throughput metric dropped more than
    ``--threshold`` against its ledger baseline.
    """
    from repro.obs.trend import (
        check_regressions,
        ingest,
        load_ledger,
        render_trend,
    )

    results_dir = pathlib.Path(args.results)
    if not results_dir.is_dir():
        print(f"no such results directory: {results_dir}", file=sys.stderr)
        return 2
    ledger_path = (
        pathlib.Path(args.ledger)
        if args.ledger is not None
        else results_dir / "TREND.jsonl"
    )
    if args.update:
        added, ledger = ingest(results_dir, ledger_path)
        print(f"ingested {added} new ledger entr(ies) -> {ledger_path}")
    else:
        ledger = load_ledger(ledger_path)
    print(render_trend(ledger), end="")
    if args.check:
        regressions = check_regressions(
            results_dir, ledger_path, threshold=args.threshold
        )
        if regressions:
            for message in regressions:
                print(f"REGRESSION {message}", file=sys.stderr)
            return 1
        print(
            f"trend gate ok: no throughput metric down more than "
            f"{args.threshold:.0%} vs ledger baseline"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'The Convergence of SGD in Asynchronous "
        "Shared Memory' (PODC 2018): run any of the paper's experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list the available experiments"
    )
    list_parser.set_defaults(func=cmd_list)

    run_parser = subparsers.add_parser(
        "run", help="run an experiment (or 'all') and print its artifact"
    )
    run_parser.add_argument(
        "experiment", help="experiment id (E1..E10, F1, A1) or 'all'"
    )
    run_parser.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="preset size: quick (seconds) or full (EXPERIMENTS.md scale)",
    )
    run_parser.add_argument(
        "--out", default=None, help="directory to write <id>.txt artifacts to"
    )
    run_parser.add_argument(
        "--no-plot", action="store_true", help="omit the ASCII figure"
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for Monte-Carlo ensembles on experiments "
        "that support them (1 = serial, 0 = one per CPU); results are "
        "identical for any value",
    )
    run_parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write a deterministic metric-snapshot JSONL of the "
        "experiments' observability exports (inspect with 'repro obs')",
    )
    run_parser.set_defaults(func=cmd_run)

    chaos_parser = subparsers.add_parser(
        "chaos",
        help="run a seeded fault campaign (fault specs x seeds) and "
        "report robustness",
    )
    chaos_parser.add_argument(
        "--specs",
        default="prob-crash,adaptive-crash,stall,torn-update",
        help="comma-separated fault spec presets (see repro.faults."
        "campaign.preset_specs): none, prob-crash, adaptive-crash, "
        "stall, torn-update, mixed",
    )
    chaos_parser.add_argument(
        "--seeds", type=int, default=4, metavar="N",
        help="seeds per spec (default 4)",
    )
    chaos_parser.add_argument(
        "--base-seed", type=int, default=1, metavar="S",
        help="first seed of the ensemble (default 1)",
    )
    chaos_parser.add_argument(
        "--threads", type=int, default=4, metavar="N",
        help="SGD threads per run (default 4)",
    )
    chaos_parser.add_argument(
        "--iterations", type=int, default=300, metavar="T",
        help="global iteration budget per run (default 300)",
    )
    chaos_parser.add_argument(
        "--check-interval", type=int, default=64, metavar="K",
        help="steps between invariant checks / crash-recovery polls",
    )
    chaos_parser.add_argument(
        "--no-recovery", action="store_true",
        help="do not respawn crashed threads",
    )
    chaos_parser.add_argument(
        "--no-monitors", action="store_true",
        help="disable invariant monitors (pure survival/convergence run)",
    )
    chaos_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the campaign grid (1 = serial, "
        "0 = one per CPU); results are identical for any value",
    )
    chaos_parser.add_argument(
        "--out", default=None,
        help="directory to write chaos_report.{txt,json} to",
    )
    chaos_parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="durable run journal (JSONL): completed cells are recorded "
        "as they finish, so a killed campaign can be resumed",
    )
    chaos_parser.add_argument(
        "--resume", action="store_true",
        help="resume from --journal, skipping already-completed cells; "
        "the final report is byte-identical to an uninterrupted run",
    )
    chaos_parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="collect paper-aligned run-time metrics (tau histogram, "
        "window contention, lemma indicators) and write a deterministic "
        "snapshot JSONL here (inspect with 'repro obs')",
    )
    chaos_parser.add_argument(
        "--metrics-interval", type=float, default=None, metavar="SECS",
        help="render a live 'repro top'-style text view to stderr at "
        "most every SECS seconds (wall clock; telemetry only)",
    )
    chaos_parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record harness spans (campaign cells, runs, replays) and "
        "dump a Chrome-trace JSON here (load in chrome://tracing)",
    )
    chaos_parser.set_defaults(func=cmd_chaos)

    zoo_parser = subparsers.add_parser(
        "zoo",
        help="run every registered algorithm under every adversary "
        "(lemma certificates + sanitizer per cell) and report the grid",
    )
    zoo_parser.add_argument(
        "--algorithms", default="all",
        help="comma-separated registry names (see repro.core.algorithm), "
        "or 'all' (default): epoch-sgd, full-sgd, hogwild, leashed, "
        "locked, momentum, staleness-aware",
    )
    zoo_parser.add_argument(
        "--adversaries",
        default="round-robin,random,bounded-delay,stale-attack,contention-max",
        help="comma-separated scheduler registry names "
        "(see repro.sched.registry)",
    )
    zoo_parser.add_argument(
        "--seeds", type=int, default=2, metavar="N",
        help="seeds per (algorithm, adversary) cell (default 2)",
    )
    zoo_parser.add_argument(
        "--base-seed", type=int, default=7000, metavar="S",
        help="first seed of each cell's ensemble (default 7000)",
    )
    zoo_parser.add_argument(
        "--threads", type=int, default=4, metavar="N",
        help="SGD threads per run (default 4)",
    )
    zoo_parser.add_argument(
        "--iterations", type=int, default=200, metavar="T",
        help="global iteration budget per run (default 200)",
    )
    zoo_parser.add_argument(
        "--no-sanitize", action="store_true",
        help="skip the race/staleness sanitizer (faster; certificates "
        "still checked)",
    )
    zoo_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the grid (1 = serial, 0 = one per "
        "CPU); reports are byte-identical for any value",
    )
    zoo_parser.add_argument(
        "--out", default=None,
        help="directory to write zoo_report.{txt,json} to",
    )
    zoo_parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="durable run journal (JSONL): completed cells are recorded "
        "as they finish, so a killed run can be resumed",
    )
    zoo_parser.add_argument(
        "--resume", action="store_true",
        help="resume from --journal, skipping already-completed cells; "
        "the final report is byte-identical to an uninterrupted run",
    )
    zoo_parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="collect each cell's paper-aligned metrics (tau histogram, "
        "window contention, lemma indicators) and write a deterministic "
        "snapshot JSONL here (inspect with 'repro obs')",
    )
    zoo_parser.add_argument(
        "--metrics-interval", type=float, default=None, metavar="SECS",
        help="render a live 'repro top'-style text view to stderr at "
        "most every SECS seconds (wall clock; telemetry only)",
    )
    zoo_parser.set_defaults(func=cmd_zoo)

    heal_parser = subparsers.add_parser(
        "heal",
        help="run the resilience grid: algorithms under silent-data-"
        "corruption plans with the detect/rollback/retry ladder on",
    )
    heal_parser.add_argument(
        "--algorithms", default="default",
        help="comma-separated registry names, or 'default' "
        "(epoch-sgd, hogwild, locked)",
    )
    heal_parser.add_argument(
        "--plans", default="none,bit-flip,nan-poison,dup-write",
        help="comma-separated corruption plan names "
        "(none, bit-flip, nan-poison, inf-poison, dup-write, "
        "drop-write), or 'all'",
    )
    heal_parser.add_argument(
        "--seeds", type=int, default=2, metavar="N",
        help="seeds per (algorithm, plan) cell (default 2)",
    )
    heal_parser.add_argument(
        "--base-seed", type=int, default=8000, metavar="S",
        help="first seed of each cell's ensemble (default 8000)",
    )
    heal_parser.add_argument(
        "--threads", type=int, default=4, metavar="N",
        help="SGD threads per run (default 4)",
    )
    heal_parser.add_argument(
        "--iterations", type=int, default=200, metavar="T",
        help="global iteration budget per run (default 200)",
    )
    heal_parser.add_argument(
        "--adversary", default="random",
        help="scheduler the grid runs under (default random)",
    )
    heal_parser.add_argument(
        "--retry-budget", type=int, default=8, metavar="N",
        help="rollback budget units per ladder level (default 8)",
    )
    heal_parser.add_argument(
        "--check-interval", type=int, default=64, metavar="STEPS",
        help="detector/checkpoint chunk size in logical steps "
        "(default 64)",
    )
    heal_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the grid (1 = serial, 0 = one per "
        "CPU); reports are byte-identical for any value",
    )
    heal_parser.add_argument(
        "--out", default=None,
        help="directory to write heal_report.{txt,json} to",
    )
    heal_parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="durable run journal (JSONL): completed cells are recorded "
        "as they finish, so a killed run can be resumed",
    )
    heal_parser.add_argument(
        "--resume", action="store_true",
        help="resume from --journal, skipping already-completed cells; "
        "the final report is byte-identical to an uninterrupted run",
    )
    heal_parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write a deterministic per-cell heal snapshot JSONL here "
        "(detections, rollbacks, degradations, recovery latencies; "
        "inspect with 'repro obs')",
    )
    heal_parser.add_argument(
        "--metrics-interval", type=float, default=None, metavar="SECS",
        help="render a live 'repro top'-style text view to stderr at "
        "most every SECS seconds (wall clock; telemetry only)",
    )
    heal_parser.set_defaults(func=cmd_heal)

    verify_parser = subparsers.add_parser(
        "verify",
        help="exhaustively enumerate every trace-distinct schedule of "
        "the variant panel at small scope (sleep-set POR) and run the "
        "SMT lemma queries; counterexamples replay deterministically",
    )
    verify_parser.add_argument(
        "--variants", default="default",
        help="comma-separated variant names (registered algorithms plus "
        "mutant-torn-counter / mutant-lost-update), 'default' (the "
        "fetch&add family + both mutants) or 'all'",
    )
    verify_parser.add_argument(
        "--seeds", type=int, default=1, metavar="N",
        help="seeds per variant cell (default 1; enumeration covers "
        "every schedule of each seed's workload)",
    )
    verify_parser.add_argument(
        "--base-seed", type=int, default=1, metavar="S",
        help="first seed of each cell's ensemble (default 1)",
    )
    verify_parser.add_argument(
        "--threads", type=int, default=2, metavar="N",
        help="threads at enumerable scope (default 2; the tree is "
        "exponential in threads x steps)",
    )
    verify_parser.add_argument(
        "--iterations", type=int, default=1, metavar="T",
        help="global iteration budget at enumerable scope (default 1; "
        "the lost-update mutant raises its own cell to 2)",
    )
    verify_parser.add_argument(
        "--max-steps", type=int, default=48, metavar="N",
        help="per-schedule step budget; any truncated schedule voids "
        "exhaustiveness and fails the cell (default 48)",
    )
    verify_parser.add_argument(
        "--no-full-tree", action="store_true",
        help="skip the unreduced walk that measures the POR reduction "
        "factor (halves the work; reduction reported as '-')",
    )
    verify_parser.add_argument(
        "--memoize", action="store_true",
        help="state-digest memoization in the reduced walk (see the "
        "soundness caveat in DESIGN.md §16; off for certification)",
    )
    verify_parser.add_argument(
        "--smt-engine", default="auto", choices=["auto", "z3", "finite"],
        help="lemma-query engine: z3 (the [verify] extra), the exact "
        "finite-domain fallback, or auto (z3 when installed)",
    )
    verify_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the grid (1 = serial, 0 = one per "
        "CPU); reports are byte-identical for any value",
    )
    verify_parser.add_argument(
        "--out", default=None,
        help="directory to write verify_report.{txt,json} to",
    )
    verify_parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="durable run journal (JSONL): completed cells are recorded "
        "as they finish, so a killed run can be resumed",
    )
    verify_parser.add_argument(
        "--resume", action="store_true",
        help="resume from --journal, skipping already-completed cells; "
        "the final report is byte-identical to an uninterrupted run",
    )
    verify_parser.set_defaults(func=cmd_verify)

    sanitize_parser = subparsers.add_parser(
        "sanitize",
        help="run the race/staleness sanitizer + lemma certifiers over "
        "preset workloads (deterministic report; non-zero exit on findings)",
    )
    sanitize_parser.add_argument(
        "--presets",
        default="e1,e5,e7",
        help="comma-separated sanitize presets (see repro.analysis."
        "presets.sanitize_presets): racy, e1, e5, e7",
    )
    sanitize_parser.add_argument(
        "--seeds", type=int, default=2, metavar="N",
        help="seeds per (preset, scheduler) cell (default 2)",
    )
    sanitize_parser.add_argument(
        "--base-seed", type=int, default=1, metavar="S",
        help="first seed of each cell's ensemble (default 1)",
    )
    sanitize_parser.add_argument(
        "--strict", action="store_true",
        help="treat warnings as failures",
    )
    sanitize_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the preset grid (1 = serial, "
        "0 = one per CPU); reports are byte-identical for any value",
    )
    sanitize_parser.add_argument(
        "--out", default=None,
        help="directory to write analysis_report.{txt,json} to",
    )
    sanitize_parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="durable run journal (JSONL): completed cells are recorded "
        "as they finish, so a killed run can be resumed",
    )
    sanitize_parser.add_argument(
        "--resume", action="store_true",
        help="resume from --journal, skipping already-completed cells; "
        "the final report is byte-identical to an uninterrupted run",
    )
    sanitize_parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write a deterministic per-cell summary snapshot JSONL "
        "(inspect with 'repro obs')",
    )
    sanitize_parser.add_argument(
        "--metrics-interval", type=float, default=None, metavar="SECS",
        help="render a live 'repro top'-style text view to stderr at "
        "most every SECS seconds (wall clock; telemetry only)",
    )
    sanitize_parser.set_defaults(func=cmd_sanitize)

    obs_parser = subparsers.add_parser(
        "obs",
        help="render a --metrics snapshot file (text summaries + ASCII "
        "histograms, or a Prometheus exposition)",
    )
    obs_parser.add_argument(
        "path", help="snapshot JSONL written by run/chaos/sanitize --metrics"
    )
    obs_parser.add_argument(
        "--format", choices=("text", "prom"), default="text",
        help="text (default): human summaries + histogram bars; "
        "prom: Prometheus text exposition of the roll-up blocks",
    )
    obs_parser.set_defaults(func=cmd_obs)

    lint_parser = subparsers.add_parser(
        "lint",
        help="statically lint sources for program-DSL misuse and "
        "determinism hazards",
    )
    lint_parser.add_argument(
        "paths", nargs="+",
        help="files or directories to lint (e.g. src/repro)",
    )
    lint_parser.add_argument(
        "--out", default=None,
        help="directory to write lint_report.txt to",
    )
    lint_parser.set_defaults(func=cmd_lint)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the supervised simulation job server (HTTP/JSON)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve_parser.add_argument(
        "--port", type=int, default=0,
        help="bind port (0 picks an ephemeral port, printed on start)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2,
        help="concurrent jobs (supervisor worker threads)",
    )
    serve_parser.add_argument(
        "--queue-size", type=int, default=8,
        help="admission queue bound (429 past it)",
    )
    serve_parser.add_argument(
        "--job-deadline", type=float, default=None,
        help="per-job wall-clock deadline in seconds (watchdog WD003)",
    )
    serve_parser.add_argument(
        "--stall-timeout", type=float, default=None,
        help="per-job heartbeat window in seconds (watchdog WD001)",
    )
    serve_parser.add_argument(
        "--max-attempts", type=int, default=3,
        help="attempts per job before a crash becomes a failure",
    )
    serve_parser.add_argument(
        "--respawn-budget", type=int, default=8,
        help="server-wide crash respawn budget",
    )
    serve_parser.add_argument(
        "--workdir", default="serve-data",
        help="journals, progress files and the result cache live here",
    )
    serve_parser.set_defaults(func=cmd_serve)

    loadtest_parser = subparsers.add_parser(
        "loadtest",
        help="chaos-load a job server and check the acceptance property",
    )
    loadtest_parser.add_argument(
        "--host", default="127.0.0.1", help="target server address"
    )
    loadtest_parser.add_argument(
        "--port", type=int, default=8321, help="target server port"
    )
    loadtest_parser.add_argument(
        "--self-host", action="store_true",
        help="start (and drain) a private in-process server to test",
    )
    loadtest_parser.add_argument(
        "--workers", type=int, default=2,
        help="self-hosted server worker threads",
    )
    loadtest_parser.add_argument(
        "--queue-size", type=int, default=8,
        help="self-hosted server admission bound",
    )
    loadtest_parser.add_argument(
        "--workdir", default=None,
        help="self-hosted server workdir (default: fresh temp dir)",
    )
    loadtest_parser.add_argument(
        "--requests", type=int, default=3, help="distinct valid submissions"
    )
    loadtest_parser.add_argument(
        "--duplicates", type=int, default=5,
        help="duplicate submissions of one spec (cache flood)",
    )
    loadtest_parser.add_argument(
        "--malformed", type=int, default=3,
        help="malformed submissions (must all answer 400)",
    )
    loadtest_parser.add_argument(
        "--slow-loris", type=int, default=2,
        help="connections that stall mid-request (must be cut off)",
    )
    loadtest_parser.add_argument(
        "--kill-workers", type=int, default=0,
        help="SIGKILL this many running workers mid-job",
    )
    loadtest_parser.add_argument(
        "--seeds", type=int, default=2, help="seeds per submitted job"
    )
    loadtest_parser.add_argument(
        "--iterations", type=int, default=60,
        help="iterations per submitted job",
    )
    loadtest_parser.add_argument(
        "--out", default=None,
        help="directory to write loadtest_report.json to",
    )
    loadtest_parser.set_defaults(func=cmd_loadtest)

    trace_parser = subparsers.add_parser(
        "trace",
        help="stitch causal span spills (serve workdir, job dir, spill "
        "file, or journal) into one Chrome/Perfetto trace",
    )
    trace_parser.add_argument(
        "path",
        help="spill file (*.spans.jsonl), serve workdir/job directory, "
        "or job journal",
    )
    trace_parser.add_argument(
        "--mode", choices=("wall", "logical"), default="wall",
        help="wall (default): causal timeline with flow arrows; "
        "logical: deterministic projection (byte-comparable across "
        "--jobs values and journal resumes)",
    )
    trace_parser.add_argument(
        "--trace-id", default=None,
        help="only stitch records of this trace id",
    )
    trace_parser.add_argument(
        "--out", default="trace.json",
        help="output file (default: trace.json)",
    )
    trace_parser.set_defaults(func=cmd_trace)

    trend_parser = subparsers.add_parser(
        "trend",
        help="perf-trend observatory: append-only ledger + regression "
        "gate over benchmarks/results/BENCH_*.json",
    )
    trend_parser.add_argument(
        "--results", default="benchmarks/results",
        help="bench results directory (default: benchmarks/results)",
    )
    trend_parser.add_argument(
        "--ledger", default=None,
        help="ledger file (default: <results>/TREND.jsonl)",
    )
    trend_parser.add_argument(
        "--update", action="store_true",
        help="ingest changed BENCH_*.json files into the ledger first",
    )
    trend_parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) if any throughput metric regressed more "
        "than --threshold vs its ledger baseline",
    )
    trend_parser.add_argument(
        "--threshold", type=float, default=0.2,
        help="relative regression tolerance for --check (default 0.2)",
    )
    trend_parser.set_defaults(func=cmd_trend)

    report_parser = subparsers.add_parser(
        "report", help="summarize verdicts from a directory of artifacts"
    )
    report_parser.add_argument(
        "dir",
        nargs="?",
        default="benchmarks/results",
        help="artifact directory (default: benchmarks/results)",
    )
    report_parser.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)
