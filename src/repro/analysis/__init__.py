"""repro.analysis — the repo's static and dynamic analysis layer.

Three analyzers share one report model (:mod:`repro.analysis.report`):

* :mod:`repro.analysis.sanitizer` — vector-clock race/staleness
  sanitizer over the simulator's operation stream (``repro sanitize``);
* :mod:`repro.analysis.lemmas` — post-hoc checkers certifying the
  paper's structural lemmas (6.1 total order, 6.2 window contention,
  6.4 indicator sums) on measured traces;
* :mod:`repro.analysis.lint` — static AST lint for program DSL misuse
  and determinism hazards (``repro lint``).

See DESIGN.md §11 for the architecture and the rule-id table.
"""

from repro.analysis.lemmas import (
    certificate_findings,
    certify_iteration_order,
    certify_lemma_6_2,
    certify_lemma_6_4,
    certify_run,
    iteration_order_findings,
)
from repro.analysis.lint import lint_paths, lint_source, render_findings
from repro.analysis.report import (
    AnalysisReport,
    Finding,
    LemmaCertificate,
    RunAnalysis,
    certificate_from_dict,
    finding_from_dict,
    finding_sort_key,
    merge_reports,
    run_analysis_from_dict,
)
from repro.analysis.sanitizer import Analyzer, RaceStalenessSanitizer

__all__ = [
    "AnalysisReport",
    "Analyzer",
    "Finding",
    "LemmaCertificate",
    "RaceStalenessSanitizer",
    "RunAnalysis",
    "certificate_findings",
    "certify_iteration_order",
    "certify_lemma_6_2",
    "certificate_from_dict",
    "certify_lemma_6_4",
    "certify_run",
    "finding_from_dict",
    "finding_sort_key",
    "run_analysis_from_dict",
    "iteration_order_findings",
    "lint_paths",
    "lint_source",
    "merge_reports",
    "render_findings",
]
