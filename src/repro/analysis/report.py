"""The shared finding/report model of the analysis layer.

Every checker in the repo — the runtime invariant monitors of
:mod:`repro.faults.monitors`, the race/staleness sanitizer, the lemma
certifiers and the static linter — reports problems in one shape:
:class:`Finding`.  One dataclass, one serializer, so a chaos robustness
report and a sanitizer report read the same and diff cleanly.

Reports are **deterministic by construction**: rendering and JSON
serialization sort keys, never embed timestamps or absolute paths, and
findings order by :func:`finding_sort_key` — rerunning the same seeded
analysis produces byte-identical output (the property CI pins).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

#: Finding severities, in increasing order of badness.  ``error``
#: findings fail a run; ``warning`` findings are surfaced but do not
#: flip the exit code on their own unless strict mode asks for it.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One detected problem, from any analyzer in the repo.

    Attributes:
        source: The analyzer that produced it (``"sanitizer"``,
            ``"monitor:<name>"``, ``"lint"``, ``"lemma"``).
        rule: Stable machine-readable rule id (``"RS001"``, ``"RPD201"``,
            ``"LEM62"``, a monitor name, ...).  Rule ids never change
            meaning across versions; see DESIGN.md §11 for the table.
        message: Human-readable description of what was found.
        severity: ``"error"`` or ``"warning"``.
        time: Logical simulation time of the finding, or ``-1`` when the
            finding is not tied to a step (static lint, final checks).
        thread_id: Offending simulated thread, or ``-1``.
        location: Where: ``"path.py:12"`` for static findings,
            ``"addr=5"`` / ``"segment[2]"`` for memory findings, empty
            when not applicable.
    """

    source: str
    rule: str
    message: str
    severity: str = "error"
    time: int = -1
    thread_id: int = -1
    location: str = ""

    def __str__(self) -> str:  # compact form for reports/CLI
        if self.time >= 0:
            return f"[{self.source} @ t={self.time}] {self.message}"
        if self.location:
            return f"{self.location}: {self.rule} {self.message}"
        return f"[{self.source}] {self.rule}: {self.message}"

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form (the one serializer every report shares)."""
        return asdict(self)


def finding_from_dict(payload: Dict[str, object]) -> Finding:
    """Inverse of :meth:`Finding.as_dict` (unknown keys ignored) — the
    journal codec for resumable analysis runs."""
    return Finding(
        source=str(payload["source"]),
        rule=str(payload["rule"]),
        message=str(payload["message"]),
        severity=str(payload.get("severity", "error")),
        time=int(payload.get("time", -1)),
        thread_id=int(payload.get("thread_id", -1)),
        location=str(payload.get("location", "")),
    )


def finding_sort_key(finding: Finding) -> Tuple:
    """The canonical report order: by location, time, rule, thread,
    message — total, so equal finding sets render identically."""
    return (
        finding.location,
        finding.time,
        finding.rule,
        finding.thread_id,
        finding.message,
    )


@dataclass(frozen=True)
class LemmaCertificate:
    """A per-run certificate that one of the paper's structural lemmas
    held (or did not) on a measured trace.

    Attributes:
        lemma: Which lemma (``"6.1"``, ``"6.2"``, ``"6.4"``).
        holds: Whether the measured quantity respects the bound.
        measured: The measured extremal quantity (worst bad-window count
            for 6.2, max indicator sum for 6.4, violation count for 6.1).
        bound: The lemma's bound on that quantity.
        detail: Parameters the certificate was computed under, as a
            deterministic string (e.g. ``"n=4 K=2 windows=12"``).
    """

    lemma: str
    holds: bool
    measured: float
    bound: float
    detail: str = ""

    def __str__(self) -> str:
        verdict = "holds" if self.holds else "VIOLATED"
        return (
            f"lemma {self.lemma} {verdict}: measured {self.measured:g} "
            f"vs bound {self.bound:g}"
            + (f" ({self.detail})" if self.detail else "")
        )

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


def certificate_from_dict(payload: Dict[str, object]) -> LemmaCertificate:
    """Inverse of :meth:`LemmaCertificate.as_dict`."""
    return LemmaCertificate(
        lemma=str(payload["lemma"]),
        holds=bool(payload["holds"]),
        measured=float(payload["measured"]),
        bound=float(payload["bound"]),
        detail=str(payload.get("detail", "")),
    )


@dataclass
class RunAnalysis:
    """Everything the analysis layer measured about one seeded run."""

    label: str  # "<preset>/<scheduler>/seed=<s>" — unique within a report
    steps: int
    iterations: int
    findings: List[Finding] = field(default_factory=list)
    certificates: List[LemmaCertificate] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and all(c.holds for c in self.certificates)

    def as_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "steps": self.steps,
            "iterations": self.iterations,
            "findings": [f.as_dict() for f in sorted(self.findings, key=finding_sort_key)],
            "certificates": [c.as_dict() for c in self.certificates],
            "clean": self.clean,
        }


def run_analysis_from_dict(payload: Dict[str, object]) -> RunAnalysis:
    """Inverse of :meth:`RunAnalysis.as_dict` — reconstructs a run from
    its journaled payload.  Findings come back in canonical sorted order
    (the order ``as_dict`` emits), which renders and serializes
    identically to the original."""
    return RunAnalysis(
        label=str(payload["label"]),
        steps=int(payload["steps"]),
        iterations=int(payload["iterations"]),
        findings=[finding_from_dict(f) for f in payload.get("findings", [])],
        certificates=[
            certificate_from_dict(c) for c in payload.get("certificates", [])
        ],
    )


@dataclass
class AnalysisReport:
    """An aggregated, deterministic analysis report over one or more runs.

    ``passed`` is what the CLI exit code and CI pin: no findings at
    ``error`` severity anywhere and every lemma certificate holding.
    ``strict`` promotes warnings to failures.
    """

    runs: List[RunAnalysis] = field(default_factory=list)
    strict: bool = False

    @property
    def findings(self) -> List[Finding]:
        """All findings across runs, in canonical order."""
        collected = [f for run in self.runs for f in run.findings]
        collected.sort(key=finding_sort_key)
        return collected

    @property
    def certificates(self) -> List[LemmaCertificate]:
        return [c for run in self.runs for c in run.certificates]

    def count(self, severity: str) -> int:
        return sum(1 for f in self.findings if f.severity == severity)

    @property
    def passed(self) -> bool:
        if any(not c.holds for c in self.certificates):
            return False
        if self.count("error"):
            return False
        if self.strict and self.count("warning"):
            return False
        return True

    def render(self) -> str:
        """ASCII report (the CLI artifact); deterministic line order."""
        lines: List[str] = []
        width = max((len(r.label) for r in self.runs), default=0)
        for run in self.runs:
            status = "clean" if run.clean else (
                f"{len(run.findings)} finding(s)"
                if run.findings
                else "certificate violated"
            )
            lines.append(
                f"{run.label.ljust(width)}  steps={run.steps} "
                f"iterations={run.iterations}  {status}"
            )
            for certificate in run.certificates:
                lines.append(f"  {certificate}")
            for finding in sorted(run.findings, key=finding_sort_key):
                lines.append(f"  {finding.severity.upper()} {finding.rule}: {finding}")
        lines.append(
            f"{len(self.runs)} run(s), {self.count('error')} error(s), "
            f"{self.count('warning')} warning(s), "
            f"{sum(1 for c in self.certificates if not c.holds)} "
            f"certificate violation(s)"
        )
        lines.append(f"verdict: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)

    def to_json(self) -> str:
        """Deterministic JSON (sorted keys, no timestamps): reruns with
        the same config produce identical bytes."""
        payload = {
            "runs": [run.as_dict() for run in self.runs],
            "errors": self.count("error"),
            "warnings": self.count("warning"),
            "strict": self.strict,
            "passed": self.passed,
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def write(self, path: str, fmt: str = "json") -> None:
        """Atomically persist the report (``fmt`` = ``"json"``/``"txt"``)
        via :func:`repro.durable.atomic_io.atomic_write` — a crash
        mid-write never leaves a torn report on disk."""
        from repro.durable.atomic_io import atomic_write

        text = self.to_json() if fmt == "json" else self.render() + "\n"
        atomic_write(path, text.encode("utf-8"))


def merge_reports(
    reports: List[AnalysisReport], strict: Optional[bool] = None
) -> AnalysisReport:
    """Concatenate per-preset reports into one, preserving run order."""
    merged = AnalysisReport(strict=bool(strict) if strict is not None else any(
        r.strict for r in reports
    ))
    for report in reports:
        merged.runs.extend(report.runs)
    return merged
