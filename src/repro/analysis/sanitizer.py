"""Race/staleness sanitizer — a FastTrack-style happens-before tracker
over the simulator's operation stream.

Every operation in this model executes atomically in one total order, so
memory never *tears* — what can still go wrong is algorithmic: a program
that reads ``X[k]``, computes locally, and then **writes** ``X[k]``
silently discards every update other threads landed in between.  That is
the classic lost-update hazard ("Taming the Wild", De Sa et al.,
NIPS'15) that Algorithm 1 avoids by using ``fetch&add`` and that
CAS-consistent variants (Bäckström et al., 2021) avoid by validating.
Nothing in a program's *types* prevents it, so the sanitizer watches
executions for it.

Mechanism (FastTrack adapted to sequentially consistent memory):

* every thread carries a **vector clock**, advanced on each of its
  operations;
* atomic read-modify-writes (``FetchAdd``, ``CompareAndSwap``, DCAS,
  guarded fetch&add) act as release+acquire on their address — each
  address accumulates a synchronization clock that RMWs join both ways,
  building the happens-before relation;
* plain ``Read``/``Write`` are tracked as last-read/last-write epochs
  per address.  A plain write by thread *t* whose value basis is a read
  that other threads have written past — with no happens-before edge
  ordering the intervening write before *t*'s — is a **lost update**
  (rule ``RS001``).
* at quiescence the sanitizer additionally flags **torn multi-entry
  updates** — threads that crashed mid-update with a partially applied
  gradient (``RS002``) — and checks **Lemma 6.1's total order** over the
  run's iteration records (``LEM61``, shared with the chaos monitors).

Cost model: the sanitizer consumes the shared memory's operation log at
**chunk boundaries** (:meth:`~repro.runtime.simulator.Simulator.
run_analyzed`), exactly like the chaos monitors — the ``run_fast`` hot
loop is untouched, and a simulation without analyzers attached pays
nothing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.lemmas import iteration_order_findings
from repro.analysis.report import Finding
from repro.errors import ConfigurationError
from repro.runtime.events import IterationRecord
from repro.runtime.thread import ThreadState
from repro.shm.ops import (
    OP_COMPARE_AND_SWAP,
    OP_DCSS,
    OP_FETCH_ADD,
    OP_GUARDED_FETCH_ADD,
    OP_NOOP,
    OP_READ,
    OP_WRITE,
)

#: Rule ids emitted by the sanitizer (see DESIGN.md §11).
RULE_LOST_UPDATE = "RS001"
RULE_TORN_UPDATE = "RS002"

#: A vector clock: thread id -> last-seen operation count of that thread.
VectorClock = Dict[int, int]


class Analyzer:
    """Base protocol for chunk-boundary execution analyzers.

    Attach with :meth:`~repro.runtime.simulator.Simulator.
    attach_analyzer`; the simulator calls :meth:`drain` between
    ``run_fast`` chunks and :meth:`finish` once at quiescence.  Draining
    is cursor-based and idempotent, so a single drain at the end of a
    run observes exactly what incremental drains would have.
    """

    name = "analyzer"
    #: Whether the analyzer consumes the shared-memory operation log
    #: (``SharedMemory(record_log=True)`` must be set before the run).
    requires_log = True

    def __init__(self) -> None:
        self.findings: List[Finding] = []

    @property
    def clean(self) -> bool:
        """Whether nothing has been flagged so far."""
        return not self.findings

    def on_attach(self, sim) -> None:
        """Validate the simulator configuration once, at attach time."""
        if self.requires_log and not sim.memory.record_log:
            raise ConfigurationError(
                f"{type(self).__name__} consumes the operation log; "
                "construct the SharedMemory with record_log=True"
            )

    def drain(self, sim) -> None:
        """Consume simulation state produced since the last drain."""

    def finish(self, sim) -> None:
        """Run final checks once the simulation is quiescent."""


class _AddressState:
    """Per-address happens-before bookkeeping (FastTrack epochs)."""

    __slots__ = ("sync", "last_write", "write_count", "last_read")

    def __init__(self) -> None:
        #: Clock joined by atomic RMWs (the release/acquire channel).
        self.sync: VectorClock = {}
        #: Epoch of the most recent write-like op: (tid, clk, time).
        self.last_write: Optional[Tuple[int, int, int]] = None
        #: Total write-like operations applied to this address.
        self.write_count = 0
        #: Per-thread most recent plain read: tid -> (time, write_count).
        self.last_read: Dict[int, Tuple[int, int]] = {}


def _join(into: VectorClock, other: VectorClock) -> None:
    for tid, clk in other.items():
        if into.get(tid, 0) < clk:
            into[tid] = clk


class RaceStalenessSanitizer(Analyzer):
    """The race/staleness sanitizer (rules ``RS001``, ``RS002``,
    ``LEM61``).

    Args:
        check_iteration_order: Run the Lemma 6.1 total-order check over
            the trace's iteration records at quiescence.
        max_findings_per_rule: Report at most this many findings per
            rule (the totals stay exact — a summary finding reports the
            suppressed count), keeping reports readable on pathological
            programs.  Suppression is deterministic: the first N findings
            in execution order survive.
    """

    name = "race-staleness"

    def __init__(
        self,
        check_iteration_order: bool = True,
        max_findings_per_rule: int = 50,
    ) -> None:
        super().__init__()
        if max_findings_per_rule < 1:
            raise ConfigurationError(
                f"max_findings_per_rule must be >= 1, got {max_findings_per_rule}"
            )
        self.check_iteration_order = check_iteration_order
        self.max_findings_per_rule = max_findings_per_rule
        self._cursor = 0
        self._clocks: Dict[int, VectorClock] = {}
        self._addresses: Dict[int, _AddressState] = {}
        self._suppressed: Dict[str, int] = {}
        self._emitted: Dict[str, int] = {}
        self._segment_map: List[str] = []
        #: Exact per-rule totals, suppression included.
        self.counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Finding plumbing
    # ------------------------------------------------------------------
    def _emit(self, finding: Finding) -> None:
        self.counts[finding.rule] = self.counts.get(finding.rule, 0) + 1
        emitted = self._emitted.get(finding.rule, 0)
        if emitted >= self.max_findings_per_rule:
            self._suppressed[finding.rule] = (
                self._suppressed.get(finding.rule, 0) + 1
            )
            return
        self._emitted[finding.rule] = emitted + 1
        self.findings.append(finding)

    def _locate(self, sim, address: int) -> str:
        """Human-readable location: ``segment[offset]`` when the address
        belongs to a named segment, ``addr=N`` otherwise."""
        if len(self._segment_map) != sim.memory.size:
            table = ["" for _ in range(sim.memory.size)]
            for segment in sim.memory._segments.values():
                for offset in range(segment.length):
                    table[segment.base + offset] = f"{segment.name}[{offset}]"
            self._segment_map = table
        label = (
            self._segment_map[address]
            if 0 <= address < len(self._segment_map)
            else ""
        )
        return label or f"addr={address}"

    # ------------------------------------------------------------------
    # The happens-before tracker
    # ------------------------------------------------------------------
    def _clock(self, tid: int) -> VectorClock:
        clock = self._clocks.get(tid)
        if clock is None:
            clock = {tid: 0}
            self._clocks[tid] = clock
        return clock

    def _state(self, address: int) -> _AddressState:
        state = self._addresses.get(address)
        if state is None:
            state = _AddressState()
            self._addresses[address] = state
        return state

    def _happens_before(self, epoch: Tuple[int, int, int], tid: int) -> bool:
        writer, clk, _time = epoch
        return self._clocks.get(tid, {}).get(writer, 0) >= clk

    def _atomic(self, sim, tid: int, address: int, time: int, write: bool) -> None:
        clock = self._clock(tid)
        state = self._state(address)
        _join(clock, state.sync)
        _join(state.sync, clock)
        if write:
            state.last_write = (tid, clock[tid], time)
            state.write_count += 1
            state.last_read.pop(tid, None)

    def _plain_read(self, tid: int, address: int, time: int) -> None:
        state = self._state(address)
        state.last_read[tid] = (time, state.write_count)

    def _plain_write(self, sim, tid: int, address: int, time: int) -> None:
        state = self._state(address)
        read = state.last_read.get(tid)
        if read is not None:
            read_time, writes_at_read = read
            intervening = state.write_count - writes_at_read
            last = state.last_write
            if (
                intervening > 0
                and last is not None
                and last[0] != tid
                and not self._happens_before(last, tid)
            ):
                self._emit(
                    Finding(
                        source=self.name,
                        rule=RULE_LOST_UPDATE,
                        severity="error",
                        time=time,
                        thread_id=tid,
                        location=self._locate(sim, address),
                        message=(
                            f"lost update: thread {tid} wrote a value based "
                            f"on its read at t={read_time}, overwriting "
                            f"{intervening} concurrent update(s), most "
                            f"recently by thread {last[0]} at t={last[2]} "
                            f"(use fetch&add or CAS-validate instead of "
                            f"write)"
                        ),
                    )
                )
        clock = self._clock(tid)
        state.last_write = (tid, clock[tid], time)
        state.write_count += 1
        # The write supersedes the thread's read basis: a later write
        # without a fresh read is measured against this write instead.
        state.last_read[tid] = (time, state.write_count)

    def _process(self, sim, record) -> None:
        tid = record.thread_id
        op = record.op
        time = record.time
        clock = self._clock(tid)
        clock[tid] = clock.get(tid, 0) + 1
        opcode = getattr(op, "opcode", -1)
        if opcode == OP_READ:
            self._plain_read(tid, op.address, time)
        elif opcode == OP_WRITE:
            self._plain_write(sim, tid, op.address, time)
        elif opcode == OP_FETCH_ADD:
            self._atomic(sim, tid, op.address, time, write=True)
        elif opcode == OP_COMPARE_AND_SWAP:
            self._atomic(sim, tid, op.address, time, write=bool(record.result))
        elif opcode == OP_DCSS:
            self._atomic(sim, tid, op.guard_address, time, write=False)
            self._atomic(sim, tid, op.address, time, write=bool(record.result))
        elif opcode == OP_GUARDED_FETCH_ADD:
            landed = bool(record.result[0]) if record.result else False
            self._atomic(sim, tid, op.guard_address, time, write=False)
            self._atomic(sim, tid, op.address, time, write=landed)
        elif opcode == OP_NOOP:
            pass
        else:
            # Unknown custom primitive: conservatively treat it as an
            # atomic RMW on its address (never a false positive).
            self._atomic(sim, tid, op.address, time, write=True)

    # ------------------------------------------------------------------
    # Analyzer protocol
    # ------------------------------------------------------------------
    def drain(self, sim) -> None:
        """Process operation-log entries appended since the last drain."""
        log = sim.memory.log
        for index in range(self._cursor, len(log)):
            self._process(sim, log[index])
        self._cursor = len(log)

    def finish(self, sim) -> None:
        """Drain the tail, then run the quiescence-only checks."""
        self.drain(sim)
        self._check_torn_updates(sim)
        if self.check_iteration_order:
            records = [
                e for e in sim.trace if isinstance(e, IterationRecord)
            ]
            for finding in iteration_order_findings(records, source=self.name):
                self._emit(finding)
        for rule in sorted(self._suppressed):
            self.findings.append(
                Finding(
                    source=self.name,
                    rule=rule,
                    severity="warning",
                    message=(
                        f"{self._suppressed[rule]} further {rule} finding(s) "
                        f"suppressed (showing first "
                        f"{self.max_findings_per_rule}; exact total: "
                        f"{self.counts[rule]})"
                    ),
                )
            )
        self._suppressed.clear()

    def _check_torn_updates(self, sim) -> None:
        """Crashed threads holding a partially applied multi-component
        gradient left a torn model update behind."""
        for thread in sim.threads:
            if thread.state is not ThreadState.CRASHED:
                continue
            annotations = thread.context.annotations
            pending = annotations.get("pending_gradient")
            if annotations.get("phase") == "update" and pending is not None:
                self._emit(
                    Finding(
                        source=self.name,
                        rule=RULE_TORN_UPDATE,
                        severity="warning",
                        time=sim.now,
                        thread_id=thread.thread_id,
                        message=(
                            f"torn update: thread {thread.thread_id} "
                            f"({thread.name}) crashed mid-update with a "
                            f"partially applied gradient (model components "
                            f"may hold a mix of old and new updates)"
                        ),
                    )
                )
