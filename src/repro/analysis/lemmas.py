"""Post-hoc lemma checkers: certify the paper's structural lemmas on
the measured trace of any run.

The convergence proof rests on three structural facts about executions,
all checkable from the :class:`~repro.runtime.events.IterationRecord`
stream alone:

* **Lemma 6.1** — iterations are totally ordered by their first model
  update, every claimed counter index is unique, and each record's
  internal timestamps are consistent (claim ≤ reads ≤ first update).
* **Lemma 6.2** — in every window of K·n consecutive iteration starts,
  fewer than n iterations are *bad* (overlap more than K·n starts).
* **Lemma 6.4** — the delay-sequence indicator sums satisfy
  ``Σ_m 1{τ_{t+m} ≥ m} ≤ 2√(τ_max·n)`` for every t.

:func:`certify_run` bundles the three into per-run
:class:`~repro.analysis.report.LemmaCertificate` objects; experiments
E4/E5 and the ``sanitize`` CLI attach them to their artifacts so every
published number ships with a machine-checked witness that the
execution it came from had the structure the theory assumes.

The Lemma 6.1 structural check is shared with the chaos engine: the
:class:`~repro.faults.monitors.IterationOrderMonitor` delegates to
:func:`iteration_order_findings`, so both layers flag the identical
conditions with the identical messages.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.analysis.report import Finding, LemmaCertificate
from repro.runtime.events import IterationRecord
from repro.theory.contention import (
    delay_sequence,
    lemma_6_2_max_bad,
    lemma_6_4_sums,
    tau_max,
    thread_count,
)

#: Rule ids of the lemma checkers (see DESIGN.md §11 for the table).
RULE_ITERATION_ORDER = "LEM61"
RULE_WINDOW_CONTENTION = "LEM62"
RULE_INDICATOR_SUM = "LEM64"


def iteration_order_findings(
    records: Sequence[IterationRecord], source: str = "lemma"
) -> List[Finding]:
    """Lemma 6.1's structural conditions, checked record by record.

    Returns one :class:`Finding` per violated condition: duplicated
    order times (total order broken), doubly claimed counter indices,
    and internally inconsistent timestamps.  An empty list certifies
    the total order.
    """
    findings: List[Finding] = []

    def flag(record: IterationRecord, message: str) -> None:
        findings.append(
            Finding(
                source=source,
                rule=RULE_ITERATION_ORDER,
                message=message,
                time=record.order_time,
                thread_id=record.thread_id,
            )
        )

    seen_orders: dict = {}
    seen_indices: dict = {}
    for record in records:
        order = record.order_time
        if order in seen_orders:
            flag(
                record,
                f"iterations {seen_orders[order]} and {record.index} "
                f"share order time {order} (total order broken)",
            )
        seen_orders[order] = record.index
        if record.index in seen_indices:
            flag(record, f"iteration index {record.index} claimed twice")
        seen_indices[record.index] = True
        if record.read_start_time < record.start_time:
            flag(
                record,
                f"iteration {record.index} read before its claim "
                f"({record.read_start_time} < {record.start_time})",
            )
        if record.read_end_time < record.read_start_time:
            flag(
                record,
                f"iteration {record.index} read window inverted "
                f"({record.read_end_time} < {record.read_start_time})",
            )
        if (
            record.first_update_time is not None
            and record.first_update_time <= record.read_end_time
        ):
            flag(
                record,
                f"iteration {record.index} updated at "
                f"{record.first_update_time} before finishing its reads "
                f"at {record.read_end_time}",
            )
    return findings


def certify_iteration_order(
    records: Sequence[IterationRecord],
) -> LemmaCertificate:
    """Certificate form of Lemma 6.1: measured = violation count,
    bound = 0."""
    violations = iteration_order_findings(records)
    return LemmaCertificate(
        lemma="6.1",
        holds=not violations,
        measured=float(len(violations)),
        bound=0.0,
        detail=f"records={len(records)}",
    )


def certify_lemma_6_2(
    records: Sequence[IterationRecord],
    num_threads: int,
    window_multiplier: int = 2,
) -> LemmaCertificate:
    """Certify Lemma 6.2's "< n bad iterations per K·n window" bound.

    ``measured`` is the worst window's bad-iteration count; the lemma
    bounds it strictly below ``num_threads``.  Traces too short for a
    single window certify vacuously (0 windows, measured 0).
    """
    worst, windows = lemma_6_2_max_bad(
        records, window_multiplier=window_multiplier, num_threads=num_threads
    )
    return LemmaCertificate(
        lemma="6.2",
        holds=worst < num_threads,
        measured=float(worst),
        bound=float(num_threads),
        detail=f"n={num_threads} K={window_multiplier} windows={windows}",
    )


def certify_lemma_6_4(
    records: Sequence[IterationRecord],
) -> LemmaCertificate:
    """Certify Lemma 6.4's indicator-sum bound ``2√(τ_max·n)``.

    ``measured`` is ``max_t Σ_m 1{τ_{t+m} ≥ m}`` over the run's delay
    sequence; the bound uses the *measured* τ_max and thread count, so
    the certificate is honest about the execution it describes.
    """
    delays = delay_sequence(records)
    if delays.size == 0:
        return LemmaCertificate(
            lemma="6.4", holds=True, measured=0.0, bound=0.0, detail="records=0"
        )
    sums = lemma_6_4_sums(delays)
    measured_tau_max = max(1, tau_max(records))
    n = max(1, thread_count(records))
    bound = 2.0 * math.sqrt(measured_tau_max * n)
    worst = float(sums.max())
    return LemmaCertificate(
        lemma="6.4",
        holds=worst <= bound + 1e-9,
        measured=worst,
        bound=float(bound),
        detail=f"tau_max={measured_tau_max} n={n}",
    )


def certify_run(
    records: Sequence[IterationRecord],
    num_threads: int,
    window_multiplier: int = 2,
) -> List[LemmaCertificate]:
    """The standard per-run certificate bundle: Lemmas 6.1, 6.2, 6.4."""
    return [
        certify_iteration_order(records),
        certify_lemma_6_2(
            records, num_threads=num_threads, window_multiplier=window_multiplier
        ),
        certify_lemma_6_4(records),
    ]


def certificate_findings(
    certificates: Sequence[LemmaCertificate], source: str = "lemma"
) -> List[Finding]:
    """One error finding per violated certificate (how certificate
    failures enter the shared report model)."""
    rules = {
        "6.1": RULE_ITERATION_ORDER,
        "6.2": RULE_WINDOW_CONTENTION,
        "6.4": RULE_INDICATOR_SUM,
    }
    return [
        Finding(
            source=source,
            rule=rules.get(c.lemma, "LEM"),
            message=str(c),
        )
        for c in certificates
        if not c.holds
    ]
