"""Sanitize presets: named workloads the ``repro sanitize`` CLI runs
under the race/staleness sanitizer.

A preset is a small seeded workload grid — (scheduler kind × seed) —
whose every cell runs with a :class:`~repro.analysis.sanitizer.
RaceStalenessSanitizer` attached and its lemma certificates computed.
Cells go through :func:`repro.experiments.ensemble.run_ensemble`, so
``--jobs`` parallelizes them across processes with reports byte-identical
to serial execution (the property the acceptance tests pin).

Presets:

* ``racy`` — the deliberately broken workload: Algorithm 1 with
  ``use_write=True`` (read the entry, write back ``view + delta``).
  The sanitizer must flag lost updates here; the CLI exits non-zero.
* ``e1`` — the E1-shaped sequential baseline (one thread); trivially
  clean, certifies the lemma checkers on uncontended traces.
* ``e5`` — the E5-shaped adversarial workload: Algorithm 1 under the
  random, stale-attack and contention-maximizing schedulers; clean, with
  Lemma 6.2/6.4 certificates exercised under real adversaries.
* ``e7`` — the E7-shaped Algorithm 2 (FullSGD) run with epoch guards;
  clean, certifies the guarded-fetch&add path through the sanitizer.
"""

from __future__ import annotations

import functools
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.analysis.lemmas import certificate_findings, certify_run
from repro.analysis.report import (
    AnalysisReport,
    RunAnalysis,
    run_analysis_from_dict,
)
from repro.analysis.sanitizer import RaceStalenessSanitizer
from repro.core.epoch_sgd import EpochSGDProgram, collect_iteration_records
from repro.core.full_sgd import FullSGD
from repro.errors import ConfigurationError
from repro.experiments.ensemble import run_ensemble
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.runtime.simulator import Simulator
from repro.sched.base import Scheduler
from repro.sched.registry import build_scheduler as _build_registered_scheduler
from repro.shm.array import AtomicArray
from repro.shm.counter import AtomicCounter
from repro.shm.memory import SharedMemory


@dataclass(frozen=True)
class SanitizePreset:
    """One named sanitize workload (a scheduler × seed grid)."""

    name: str
    program: str  # "sgd" | "racy" | "full"
    dim: int
    num_threads: int
    iterations: int
    step_size: float
    schedulers: Tuple[str, ...]
    noise_sigma: float = 0.2
    x0_scale: float = 2.0
    window_multiplier: int = 2


def sanitize_presets() -> Dict[str, SanitizePreset]:
    """The presets ``repro sanitize --presets name,name`` accepts."""
    return {
        "racy": SanitizePreset(
            name="racy",
            program="racy",
            dim=2,
            num_threads=4,
            iterations=60,
            step_size=0.05,
            schedulers=("random",),
        ),
        "e1": SanitizePreset(
            name="e1",
            program="sgd",
            dim=1,
            num_threads=1,
            iterations=120,
            step_size=0.1,
            schedulers=("random",),
            noise_sigma=1.0,
            x0_scale=3.0,
        ),
        "e5": SanitizePreset(
            name="e5",
            program="sgd",
            dim=2,
            num_threads=4,
            iterations=160,
            step_size=0.05,
            schedulers=("random", "stale-attack", "contention-max"),
        ),
        "e7": SanitizePreset(
            name="e7",
            program="full",
            dim=2,
            num_threads=4,
            iterations=80,  # per epoch
            step_size=0.05,
            schedulers=("random",),
        ),
    }


def build_scheduler(kind: str, seed: int) -> Scheduler:
    """Instantiate one of the sanitize grid's scheduler kinds.

    Thin delegate to the shared :mod:`repro.sched.registry` factory —
    kept as a name so existing callers (and journal fingerprints built
    before the registry existed) keep working unchanged.
    """
    return _build_registered_scheduler(kind, seed=seed)


def _analyze(sim, sanitizer, records, preset, label, steps):
    """Assemble one cell's :class:`RunAnalysis` from a finished run."""
    certificates = certify_run(
        records,
        num_threads=preset.num_threads,
        window_multiplier=preset.window_multiplier,
    )
    findings = list(sanitizer.findings)
    findings.extend(certificate_findings(certificates))
    return RunAnalysis(
        label=label,
        steps=steps,
        iterations=len(records),
        findings=findings,
        certificates=certificates,
    )


def _sanitize_worker(
    preset: SanitizePreset, scheduler_kind: str, seed: int
) -> RunAnalysis:
    """Run one (preset, scheduler, seed) cell (module-level: picklable)."""
    label = f"{preset.name}/{scheduler_kind}/seed={seed}"
    objective = IsotropicQuadratic(
        dim=preset.dim, noise=GaussianNoise(preset.noise_sigma)
    )
    sanitizer = RaceStalenessSanitizer()
    if preset.program == "full":
        driver = FullSGD(
            objective,
            num_threads=preset.num_threads,
            epsilon=0.25,
            alpha0=preset.step_size,
            iterations_per_epoch=preset.iterations,
            num_epochs=2,
            x0=np.full(preset.dim, preset.x0_scale),
        )
        result = driver.run(
            build_scheduler(scheduler_kind, seed),
            seed=seed,
            analyzers=(sanitizer,),
        )
        return _analyze(
            None, sanitizer, result.records, preset, label, result.sim_steps
        )

    memory = SharedMemory(record_log=True)
    model = AtomicArray.allocate(memory, preset.dim, name="model")
    model.load(np.full(preset.dim, preset.x0_scale))
    counter = AtomicCounter.allocate(memory, name="iteration_counter")
    sim = Simulator(memory, build_scheduler(scheduler_kind, seed), seed=seed)
    for index in range(preset.num_threads):
        sim.spawn(
            EpochSGDProgram(
                model=model,
                counter=counter,
                objective=objective,
                step_size=preset.step_size,
                max_iterations=preset.iterations,
                use_write=preset.program == "racy",
            ),
            name=f"worker-{index}",
        )
    sim.attach_analyzer(sanitizer)
    sim.run_analyzed()
    records = collect_iteration_records(sim)
    return _analyze(sim, sanitizer, records, preset, label, sim.now)


def sanitize_fingerprint(
    presets: Tuple[SanitizePreset, ...],
    seeds: Tuple[int, ...],
    strict: bool = False,
) -> str:
    """Stable fingerprint of everything that determines sanitize results
    (``jobs`` excluded: parallelism never changes results, so a journal
    resumes cleanly under a different ``--jobs``)."""
    from repro.durable.journal import config_fingerprint

    return config_fingerprint(
        {
            "presets": [asdict(p) for p in presets],
            "seeds": list(seeds),
            "strict": bool(strict),
        }
    )


def partial_sanitize_report(
    presets: Tuple[SanitizePreset, ...],
    seeds: Tuple[int, ...],
    journal: Any,
    strict: bool = False,
) -> AnalysisReport:
    """Report over only the cells the journal has — what the CLI flushes
    when a sanitize run is interrupted.  Grid-ordered."""
    report = AnalysisReport(strict=strict)
    for preset in presets:
        for scheduler_kind in preset.schedulers:
            done = journal.completed(f"{preset.name}/{scheduler_kind}")
            for seed in seeds:
                if seed in done:
                    report.runs.append(run_analysis_from_dict(done[seed]))
    return report


def run_sanitize(
    presets: Tuple[SanitizePreset, ...],
    seeds: Tuple[int, ...],
    jobs: int = 1,
    strict: bool = False,
    journal: Optional[Any] = None,
    shutdown: Optional[Any] = None,
    metrics: Optional[Any] = None,
    progress: Optional[Any] = None,
) -> AnalysisReport:
    """Run the full preset grid and aggregate one deterministic report.

    Grid order is (preset, scheduler, seed) with seeds innermost, so
    each (preset, scheduler) row is an ensemble ``--jobs`` can farm out;
    results are byte-identical for any ``jobs`` value.

    With a ``journal`` (opened against :func:`sanitize_fingerprint`) the
    grid is durable and resumable: finished cells are recorded as they
    land and skipped on resume, with the final report byte-identical to
    an uninterrupted run.  ``shutdown`` stops at the next cell boundary
    via :class:`~repro.errors.InterruptedRunError`.

    ``metrics``/``progress`` feed the observability layer:
    ``progress(seed, run_analysis)`` fires per freshly analyzed cell
    (the ``repro top`` hook) and ``metrics`` receives the ensemble
    counters plus per-cell finding tallies; neither changes the report.
    """
    if not presets:
        raise ConfigurationError("sanitize needs at least one preset")
    if not seeds:
        raise ConfigurationError("sanitize needs at least one seed")
    from repro.obs.registry import live_registry
    from repro.obs.spans import trace_span

    registry = live_registry(metrics)

    def note_cell(seed: int, run: RunAnalysis) -> None:
        if registry is not None:
            registry.counter(
                "repro_sanitize_cells_total", "sanitize cells analyzed"
            ).inc()
            registry.counter(
                "repro_sanitize_findings_total", "sanitizer findings raised"
            ).inc(len(run.findings))
        if progress is not None:
            progress(seed, run)

    report = AnalysisReport(strict=strict)
    for preset in presets:
        for scheduler_kind in preset.schedulers:
            with trace_span(
                "sanitize.cell_row", preset=preset.name, scheduler=scheduler_kind
            ):
                report.runs.extend(
                    run_ensemble(
                        functools.partial(
                            _sanitize_worker, preset, scheduler_kind
                        ),
                        seeds,
                        jobs=jobs,
                        journal=journal,
                        namespace=f"{preset.name}/{scheduler_kind}",
                        encode=lambda run: run.as_dict(),
                        decode=run_analysis_from_dict,
                        shutdown=shutdown,
                        metrics=metrics,
                        progress=note_cell,
                    )
                )
    return report
