"""Static lint pass over program generators and the repro source tree.

``python -m repro lint [paths]`` parses every ``.py`` file it is given
and flags, without executing anything:

* **atomicity hazards** in simulated programs — generator functions that
  yield :class:`~repro.shm.ops.Operation` descriptors and both read and
  plainly write the same shared handle (the lost-update pattern the
  sanitizer catches dynamically, rule ``RPL101``), yields of values
  that are plainly not operations (``RPL102``), and direct mutation of
  shared handles from inside a program — subscript stores,
  ``.load()``/``.poke()``/``.store()`` calls or raw ``._values``
  access, all of which bypass the scheduler and the op log
  (``RPL103``);
* **health-detector purity** — classes named ``*Detector`` (or deriving
  from ``HealthDetector``) are the read-only observers of
  :mod:`repro.heal.detectors`; any ``.poke()``/``.store()`` call,
  ``memory.load()`` or raw ``._values`` access inside one would make
  the observer part of the fault model it is supposed to watch
  (``RPL104``);
* **determinism hazards** anywhere in the tree — wall-clock reads
  (``RPD201``), draws from the global ``random`` / ``numpy.random``
  singletons instead of seeded :class:`~repro.runtime.rng.RngStream`
  coins (``RPD202``), and iteration over set displays whose order is
  hash-dependent (``RPD203``).

Intentional exceptions carry an inline waiver — ``# repro: allow(RULE)``
on the flagged line — the same way the ``use_write`` ablation in
:mod:`repro.core.epoch_sgd` deliberately reproduces the paper's
lost-update failure mode.

Reports are deterministic: findings sort by (path, line, rule) and use
the paths exactly as given, so CI output is byte-stable.
"""

from __future__ import annotations

import ast
import pathlib
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.report import Finding

#: Rule id -> one-line description (the table DESIGN.md §11 documents).
RULES: Dict[str, str] = {
    "RPL101": (
        "non-atomic read-modify-write: a program reads and plainly "
        "writes the same shared handle (lost-update hazard; use "
        "fetch_add_op/cas_op)"
    ),
    "RPL102": (
        "program yields a value that is not an Operation descriptor"
    ),
    "RPL103": (
        "program mutates a shared handle outside the op DSL (subscript "
        "assignment, .load()/.poke()/.store(), or ._values access): "
        "such writes bypass the scheduler, the op log and the analyzers"
    ),
    "RPL104": (
        "health detector mutates simulation state (.poke()/.store(), "
        "memory.load(), or ._values access): detectors are read-only "
        "observers — peek at chunk boundaries, never write"
    ),
    "RPL105": (
        "unbounded `while True:` retry loop in a program generator: a "
        "spin with no bounded-attempt guard makes exhaustive schedule "
        "enumeration (repro verify) non-terminating; bound the attempts "
        "or annotate an intentional spin with `# repro: allow(RPL105)`"
    ),
    "RPL106": (
        "direct timing call in a serve handler (time.time/time."
        "monotonic/time.sleep, or a sleep with a literal delay): all "
        "job-server timing must go through the injectable ServeClock so "
        "deadlines, backoff and slow-loris cutoffs are testable with a "
        "fake clock"
    ),
    "RPL107": (
        "interpolated span name (f-string, concatenation, or variable "
        "first argument to trace_span/causal_span or a recorder's "
        "span/event/record): span names are the cardinality axis of "
        "every trace viewer — use a dotted lowercase literal like "
        "'serve.attempt' and put variable data in key=/args"
    ),
    "RPD201": (
        "wall-clock read (time.time/perf_counter/datetime.now ...): "
        "feeds nondeterminism into simulated traces"
    ),
    "RPD202": (
        "draw from the global random/numpy.random singleton: use a "
        "seeded RngStream (thread-local coins) instead"
    ),
    "RPD203": (
        "iteration over a set display/call: order is hash-dependent "
        "and not stable across runs"
    ),
    "RPD204": (
        "wall-clock-named key in a report payload builder: span/timing "
        "durations belong in the obs/trace stream, never in "
        "byte-identity-checked reports"
    ),
}

_ALLOW_PRAGMA = re.compile(r"#\s*repro:\s*allow\(([A-Z0-9,\s]+)\)")

#: Operation descriptor class names (yielding a call to one of these
#: marks a generator as a simulated program).
_OPERATION_CLASSES = {
    "Read",
    "Write",
    "FetchAdd",
    "CompareAndSwap",
    "DoubleCompareSingleSwap",
    "GuardedFetchAdd",
    "Noop",
}

#: Dotted-name suffixes that read a wall clock.
_WALL_CLOCK_SUFFIXES = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: Global-singleton draws on the stdlib random module.
_STDLIB_RANDOM_DRAWS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "gauss",
    "normalvariate",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "seed",
    "getrandbits",
    "betavariate",
    "expovariate",
}

#: Methods that mutate a shared handle directly, bypassing the op DSL
#: (legitimate in drivers before/after a run, never inside a program).
_DIRECT_MUTATORS = {"load", "poke", "store"}

#: Dotted-name suffixes RPL106 bans outright inside ``repro/serve/``
#: sources: clock reads and the blocking sleep.  ``asyncio.sleep`` /
#: ``asyncio.wait_for`` are additionally banned when their delay is a
#: numeric literal (a policy- or clock-derived delay at least routes
#: through one injectable seam).  The one legitimate home for these
#: calls is ``repro/serve/clock.py`` itself, behind ``# repro:
#: allow(RPL106)`` pragmas.
_SERVE_TIMING_SUFFIXES = ("time.time", "time.monotonic", "time.sleep")
_SERVE_LITERAL_SLEEPS = ("asyncio.sleep", "asyncio.wait_for")

#: RPL107 (span-name hygiene): span names must match this — dotted
#: lowercase literals with at least two components.
_SPAN_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: Free functions whose first argument is a span name.
_SPAN_CALL_TAILS = ("trace_span", "causal_span")

#: Methods whose first argument is a span name, when called on a
#: receiver that looks like a span recorder (``recorder.span(...)``,
#: ``self.causal.record(...)``).
_SPAN_METHODS = ("span", "event", "record")
_SPAN_RECEIVER_RE = re.compile(r"(recorder|causal)", re.IGNORECASE)

#: Identifier fragments that signal a bounded-attempt guard inside a
#: retry loop (``attempts``, ``max_iterations``, ``budget`` ...).  A
#: ``while True:`` whose body compares against one of these is treated
#: as bounded for RPL105; anything else spins at the adversary's mercy
#: and would hand the schedule enumerator an infinite tree.
_BOUNDED_GUARD_NAME = re.compile(
    r"attempt|retr|budget|max|bound|limit|quota|epochs", re.IGNORECASE
)

#: Functions whose return value is (by repo convention) a serialized
#: report payload whose bytes CI pins — the places RPD204 watches.
_REPORT_BUILDER_NAMES = {
    "to_json",
    "as_dict",
    "to_payload",
    "snapshot",
    "deterministic_snapshot",
}

#: Key names that smell like wall-clock measurements.  A span duration
#: in a pinned report breaks byte-identity between runs (and between
#: ``--jobs`` values); such numbers go to the Chrome trace / metrics
#: exposition instead, where nothing asserts byte equality.
_WALL_CLOCK_KEY = re.compile(
    r"wall|monotonic|elapsed|duration|_secs|seconds|perf", re.IGNORECASE
)

#: Global-singleton draws on numpy.random (constructing seeded
#: Generators — SeedSequence, PCG64, default_rng, Generator — is fine).
_NUMPY_RANDOM_DRAWS = {
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "seed",
    "normal",
    "uniform",
    "standard_normal",
}


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_constant_expression(node: ast.AST) -> bool:
    """Whether a yielded value is statically a non-Operation value."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        return True
    if isinstance(node, ast.Dict):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_constant_expression(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_constant_expression(node.left) and _is_constant_expression(
            node.right
        )
    return False


def _yield_values(
    function: Union[ast.FunctionDef, ast.AsyncFunctionDef],
) -> List[ast.expr]:
    """All ``yield``/``yield from`` value expressions in ``function``,
    excluding nested function definitions (their yields are theirs)."""
    values: List[ast.expr] = []

    class _Collector(ast.NodeVisitor):
        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            if node is not function:
                return  # do not descend into nested defs
            self.generic_visit(node)

        visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

        def visit_Lambda(self, node: ast.Lambda) -> None:
            return

        def visit_Yield(self, node: ast.Yield) -> None:
            if node.value is not None:
                values.append(node.value)
            self.generic_visit(node)

    _Collector().visit(function)
    return values


def _is_program_generator(
    function: Union[ast.FunctionDef, ast.AsyncFunctionDef],
) -> bool:
    """A generator counts as a simulated program when at least one of
    its yields is an op-constructor call (``x.read_op(...)``,
    ``FetchAdd(...)``, ...)."""
    for value in _yield_values(function):
        if not isinstance(value, ast.Call):
            continue
        func = value.func
        if isinstance(func, ast.Attribute) and func.attr.endswith("_op"):
            return True
        if isinstance(func, ast.Name) and func.id in _OPERATION_CLASSES:
            return True
    return False


class _LoopScanner(ast.NodeVisitor):
    """Walks a loop body without descending into nested defs/lambdas."""

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return


def _loop_yields(loop: ast.While) -> bool:
    """Whether the loop body takes simulated steps (contains a yield)."""
    found = False

    class _Yields(_LoopScanner):
        def visit_Yield(self, node: ast.Yield) -> None:
            nonlocal found
            found = True

        def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
            nonlocal found
            found = True

    scanner = _Yields()
    for statement in loop.body:
        scanner.visit(statement)
    return found


def _loop_has_bounded_guard(loop: ast.While) -> bool:
    """Whether some comparison in the loop body mentions a bound-like
    name (``attempts``, ``max_iterations``, ``retry_budget``, ...) —
    the shape of every legitimate bounded retry in this codebase."""
    found = False

    class _Guards(_LoopScanner):
        def visit_Compare(self, node: ast.Compare) -> None:
            nonlocal found
            for sub in ast.walk(node):
                name = _dotted_name(sub)
                if name is not None and _BOUNDED_GUARD_NAME.search(name):
                    found = True
                    return
            self.generic_visit(node)

    scanner = _Guards()
    for statement in loop.body:
        scanner.visit(statement)
    return found


class _Linter(ast.NodeVisitor):
    """Single-pass AST visitor producing :class:`Finding` objects."""

    def __init__(self, path: str, source_lines: Sequence[str]) -> None:
        self.path = path
        self.lines = source_lines
        self.findings: List[Finding] = []
        self._function_stack: List[str] = []
        #: RPL106 scope: the job-server package (any path with a
        #: ``serve`` directory component).
        self._serve_scope = "serve" in pathlib.PurePath(path).parts

    # -- plumbing -------------------------------------------------------
    def _allowed(self, line: int) -> Set[str]:
        if 1 <= line <= len(self.lines):
            match = _ALLOW_PRAGMA.search(self.lines[line - 1])
            if match:
                return {r.strip() for r in match.group(1).split(",") if r.strip()}
        return set()

    def _flag(self, rule: str, line: int, message: str) -> None:
        if rule in self._allowed(line):
            return
        self.findings.append(
            Finding(
                source="lint",
                rule=rule,
                message=message,
                location=f"{self.path}:{line}",
            )
        )

    # -- determinism rules (whole tree) ---------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted_name(node.func)
        if name is not None:
            self._check_wall_clock(node, name)
            self._check_global_random(node, name)
            self._check_serve_timing(node, name)
            self._check_span_name(node, name)
        self.generic_visit(node)

    def _check_span_name(self, node: ast.Call, name: str) -> None:
        """RPL107: span names are dotted lowercase literals, never
        interpolated — per-value names explode trace-viewer
        cardinality; variable data belongs in ``key=``/args."""
        parts = name.split(".")
        tail = parts[-1]
        if tail in _SPAN_CALL_TAILS:
            pass
        elif (
            tail in _SPAN_METHODS
            and len(parts) > 1
            and _SPAN_RECEIVER_RE.search(".".join(parts[:-1]))
        ):
            pass
        else:
            return
        argument: Optional[ast.expr] = node.args[0] if node.args else None
        if argument is None:
            for keyword in node.keywords:
                if keyword.arg == "name":
                    argument = keyword.value
                    break
        if argument is None:
            return
        if isinstance(argument, ast.Constant):
            if isinstance(argument.value, str) and not _SPAN_NAME_RE.match(
                argument.value
            ):
                self._flag(
                    "RPL107",
                    node.lineno,
                    f"span name {argument.value!r} is not a dotted "
                    f"lowercase literal (want e.g. 'serve.attempt')",
                )
            return
        kind = (
            "an f-string"
            if isinstance(argument, ast.JoinedStr)
            else "a dynamic expression"
        )
        self._flag(
            "RPL107",
            node.lineno,
            f"span name passed to {tail}() is {kind}: use a dotted "
            f"lowercase literal and carry variable data in key=/args "
            f"(cardinality hazard)",
        )

    def _check_serve_timing(self, node: ast.Call, name: str) -> None:
        """RPL106: inside ``repro/serve/``, timing never bypasses the
        injectable clock.  Clock reads and ``time.sleep`` are flagged
        outright; ``asyncio.sleep``/``asyncio.wait_for`` are flagged
        when a delay argument is a numeric literal."""
        if not self._serve_scope:
            return
        for suffix in _SERVE_TIMING_SUFFIXES:
            if name == suffix or name.endswith("." + suffix):
                self._flag(
                    "RPL106",
                    node.lineno,
                    f"serve handler calls {name}() directly: route all "
                    f"timing through the injectable ServeClock "
                    f"(clock.monotonic/clock.sleep) so it is fake-clock "
                    f"testable",
                )
                return
        for suffix in _SERVE_LITERAL_SLEEPS:
            if name == suffix or name.endswith("." + suffix):
                arguments = list(node.args) + [
                    keyword.value
                    for keyword in node.keywords
                    if keyword.arg in ("delay", "timeout")
                ]
                if any(
                    isinstance(argument, ast.Constant)
                    and isinstance(argument.value, (int, float))
                    and not isinstance(argument.value, bool)
                    for argument in arguments
                ):
                    self._flag(
                        "RPL106",
                        node.lineno,
                        f"serve handler calls {name}() with a literal "
                        f"delay: delays come from the policy and sleeps "
                        f"go through the injectable ServeClock",
                    )
                return

    def _check_wall_clock(self, node: ast.Call, name: str) -> None:
        for suffix in _WALL_CLOCK_SUFFIXES:
            if name == suffix or name.endswith("." + suffix):
                self._flag(
                    "RPD201",
                    node.lineno,
                    f"wall-clock call {name}() — simulated time is "
                    f"Clock.now; wall clocks make traces irreproducible",
                )
                return

    def _check_global_random(self, node: ast.Call, name: str) -> None:
        parts = name.split(".")
        if len(parts) == 2 and parts[0] == "random":
            if parts[1] in _STDLIB_RANDOM_DRAWS:
                self._flag(
                    "RPD202",
                    node.lineno,
                    f"global-random draw {name}() — draw from a seeded "
                    f"RngStream (ctx.rng) instead",
                )
            return
        if len(parts) >= 3 and parts[-3] in ("np", "numpy") and parts[-2] == "random":
            if parts[-1] in _NUMPY_RANDOM_DRAWS:
                self._flag(
                    "RPD202",
                    node.lineno,
                    f"global-random draw {name}() — use a seeded "
                    f"numpy Generator (RngStream) instead",
                )

    def visit_For(self, node: ast.For) -> None:
        iterable = node.iter
        is_set = isinstance(iterable, ast.Set) or (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in ("set", "frozenset")
        )
        if is_set:
            self._flag(
                "RPD203",
                node.lineno,
                "iterating a set: wrap in sorted(...) so the order is "
                "deterministic",
            )
        self.generic_visit(node)

    # -- report-payload rule (RPD204) -----------------------------------
    def visit_Dict(self, node: ast.Dict) -> None:
        builder = next(
            (
                name
                for name in reversed(self._function_stack)
                if name in _REPORT_BUILDER_NAMES
            ),
            None,
        )
        if builder is not None:
            for key in node.keys:
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and _WALL_CLOCK_KEY.search(key.value)
                ):
                    self._flag(
                        "RPD204",
                        key.lineno,
                        f"wall-clock-named key {key.value!r} in report "
                        f"builder {builder}(): pinned reports must stay "
                        f"byte-identical across runs — emit durations via "
                        f"the obs metrics/trace stream instead",
                    )
        self.generic_visit(node)

    # -- detector purity (RPL104) ---------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._is_detector_class(node):
            self._check_detector_purity(node)
        self.generic_visit(node)

    @staticmethod
    def _is_detector_class(node: ast.ClassDef) -> bool:
        if node.name.endswith("Detector"):
            return True
        for base in node.bases:
            name = _dotted_name(base)
            if name is not None and name.split(".")[-1] == "HealthDetector":
                return True
        return False

    def _check_detector_purity(self, node: ast.ClassDef) -> None:
        """RPL104: a health detector observes; it never writes.  Flags
        ``.poke()``/``.store()`` on any receiver, ``.load()`` on a
        memory-looking receiver (``json.load`` and friends stay legal),
        and raw ``._values`` access, anywhere in the class body."""
        linter = self

        class _Impurities(ast.NodeVisitor):
            def visit_Call(self, call: ast.Call) -> None:
                func = call.func
                if isinstance(func, ast.Attribute):
                    receiver = _dotted_name(func.value)
                    memoryish = receiver is not None and (
                        receiver.split(".")[-1] == "memory"
                    )
                    if func.attr in ("poke", "store") or (
                        func.attr == "load" and memoryish
                    ):
                        linter._flag(
                            "RPL104",
                            call.lineno,
                            f"detector {node.name} calls "
                            f"{receiver or '<expr>'}.{func.attr}(...): "
                            f"detectors are read-only observers — peek "
                            f"only, never mutate the simulation",
                        )
                self.generic_visit(call)

            def visit_Attribute(self, attribute: ast.Attribute) -> None:
                if attribute.attr == "_values":
                    linter._flag(
                        "RPL104",
                        attribute.lineno,
                        f"detector {node.name} reaches into raw memory "
                        f"storage (._values): observe through peek/"
                        f"peek_range only",
                    )
                self.generic_visit(attribute)

        for item in node.body:
            _Impurities().visit(item)

    # -- program rules (op-yielding generators only) --------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_program(node)
        self._function_stack.append(node.name)
        try:
            self.generic_visit(node)
        finally:
            self._function_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_program(node)
        self._function_stack.append(node.name)
        try:
            self.generic_visit(node)
        finally:
            self._function_stack.pop()

    def _check_program(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        if not _is_program_generator(node):
            return
        reads: Dict[str, int] = {}
        writes: List[Tuple[str, int]] = []
        op_receivers: Set[str] = set()
        for value in _yield_values(node):
            if _is_constant_expression(value):
                self._flag(
                    "RPL102",
                    value.lineno,
                    "yield of a non-Operation value: programs must yield "
                    "Operation descriptors",
                )
                continue
            if not isinstance(value, ast.Call):
                continue
            func = value.func
            receiver: Optional[str] = None
            accessor: Optional[str] = None
            if isinstance(func, ast.Attribute) and func.attr.endswith("_op"):
                receiver = _dotted_name(func.value)
                accessor = func.attr
            elif isinstance(func, ast.Name) and func.id in _OPERATION_CLASSES:
                # Direct descriptor: key on the address expression text.
                address = self._address_argument(value)
                if address is not None:
                    receiver = address
                    accessor = {"Read": "read_op", "Write": "write_op"}.get(
                        func.id
                    )
            if receiver is None or accessor is None:
                continue
            op_receivers.add(receiver)
            if accessor in ("read_op", "read_count_op"):
                reads.setdefault(receiver, value.lineno)
            elif accessor == "write_op":
                writes.append((receiver, value.lineno))
        for receiver, line in writes:
            if receiver in reads:
                self._flag(
                    "RPL101",
                    line,
                    f"non-atomic read-modify-write on {receiver!r}: the "
                    f"program reads it (line {reads[receiver]}) and later "
                    f"plainly writes it — concurrent updates in between "
                    f"are lost; use fetch_add_op or cas_op",
                )
        self._check_direct_mutation(node, op_receivers)
        self._check_unbounded_retry(node)

    def _check_unbounded_retry(
        self, function: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        """RPL105: every ``while True:`` in a program generator that
        takes simulated steps (contains a yield) must either compare
        against a bound (``attempts``, ``max_iterations``, ...) on some
        path or carry an explicit ``# repro: allow(RPL105)`` waiver —
        otherwise the schedule tree the verify enumerator walks is
        infinite (an adversary can spin the loop forever)."""
        linter = self

        class _Loops(ast.NodeVisitor):
            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                if node is not function:
                    return  # nested defs lint on their own
                self.generic_visit(node)

            visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

            def visit_Lambda(self, node: ast.Lambda) -> None:
                return

            def visit_While(self, node: ast.While) -> None:
                if (
                    isinstance(node.test, ast.Constant)
                    and node.test.value is True
                    and _loop_yields(node)
                    and not _loop_has_bounded_guard(node)
                ):
                    linter._flag(
                        "RPL105",
                        node.lineno,
                        "unbounded `while True:` retry loop takes "
                        "simulated steps with no bounded-attempt guard: "
                        "exhaustive enumeration of this program cannot "
                        "terminate — bound the attempts, or mark an "
                        "intentional spin with `# repro: allow(RPL105)`",
                    )
                self.generic_visit(node)

        _Loops().visit(function)

    def _check_direct_mutation(
        self,
        function: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        receivers: Set[str],
    ) -> None:
        """RPL103: inside an op-yielding program, shared handles the
        program addresses through the DSL must never be mutated directly
        — a subscript store, ``.load()``/``.poke()``/``.store()``, or a
        reach into ``._values`` skips the scheduler interleaving, the
        operation log and every analyzer built on them."""
        linter = self

        class _Mutations(ast.NodeVisitor):
            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                if node is not function:
                    return  # nested defs lint on their own
                self.generic_visit(node)

            visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

            def visit_Lambda(self, node: ast.Lambda) -> None:
                return

            def _check_target(self, target: ast.expr) -> None:
                if isinstance(target, ast.Subscript):
                    name = _dotted_name(target.value)
                    if name is not None and name in receivers:
                        linter._flag(
                            "RPL103",
                            target.lineno,
                            f"direct subscript store into shared handle "
                            f"{name!r}: model coordinates must change "
                            f"through yielded shm ops only",
                        )

            def visit_Assign(self, node: ast.Assign) -> None:
                for target in node.targets:
                    self._check_target(target)
                self.generic_visit(node)

            def visit_AugAssign(self, node: ast.AugAssign) -> None:
                self._check_target(node.target)
                self.generic_visit(node)

            def visit_Call(self, node: ast.Call) -> None:
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _DIRECT_MUTATORS
                ):
                    name = _dotted_name(func.value)
                    if name is not None and name in receivers:
                        linter._flag(
                            "RPL103",
                            node.lineno,
                            f"direct mutation {name}.{func.attr}(...) of a "
                            f"shared handle inside a program: bulk stores "
                            f"belong in the driver, before the run",
                        )
                self.generic_visit(node)

            def visit_Attribute(self, node: ast.Attribute) -> None:
                if node.attr == "_values":
                    linter._flag(
                        "RPL103",
                        node.lineno,
                        "program reaches into raw memory storage "
                        "(._values): every access must be a yielded op",
                    )
                self.generic_visit(node)

        _Mutations().visit(function)

    @staticmethod
    def _address_argument(call: ast.Call) -> Optional[str]:
        for keyword in call.keywords:
            if keyword.arg == "address":
                return ast.dump(keyword.value)
        if call.args:
            return ast.dump(call.args[0])
        return None


def _lint_sort_key(finding: Finding) -> Tuple[str, int, str, str]:
    """(path, numeric line, rule, message) — numeric so line 2 sorts
    before line 10."""
    path, _, line = finding.location.rpartition(":")
    return (path, int(line) if line.isdigit() else 0, finding.rule, finding.message)


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one module's source text; returns findings in canonical
    order.  Syntax errors are reported as a single ``RPL000`` error."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                source="lint",
                rule="RPL000",
                message=f"syntax error: {exc.msg}",
                location=f"{path}:{exc.lineno or 0}",
            )
        ]
    linter = _Linter(path, source.splitlines())
    linter.visit(tree)
    return sorted(linter.findings, key=_lint_sort_key)


def iter_python_files(paths: Iterable[str]) -> List[pathlib.Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    collected: Set[pathlib.Path] = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            collected.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            collected.add(path)
    return sorted(collected)


def lint_paths(paths: Iterable[str]) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; canonical order."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(
            lint_source(path.read_text(encoding="utf-8"), str(path))
        )
    return sorted(findings, key=_lint_sort_key)


def render_findings(findings: Sequence[Finding]) -> str:
    """The ``repro lint`` artifact: one line per finding plus a tally."""
    lines = [
        f"{f.location}: {f.rule} {f.message}" for f in findings
    ]
    lines.append(
        f"{len(findings)} finding(s)"
        if findings
        else "0 findings — clean"
    )
    return "\n".join(lines)
