"""Span tracing: wall-clock profiling of the harness, never the model.

A span covers one harness phase — an epoch, a ``run_fast`` chunk, a
journal replay, a campaign cell — with parent/child nesting and
monotonic-clock durations.  Spans answer "where did the wall-clock go?",
which the deterministic artifacts can never answer (and must never try:
wall-clock durations are banned from byte-identity-checked reports by
lint rule ``RPD204``).  Span dumps therefore live in their own Chrome
trace file (``chrome://tracing`` / Perfetto ``traceEvents`` format),
separate from the metric snapshots.

Usage::

    recorder = SpanRecorder()
    set_span_recorder(recorder)
    with trace_span("campaign.spec", spec="prob-crash"):
        ...
    recorder.write_chrome_trace("trace.json")

:func:`trace_span` is a no-op when no recorder is installed, so
instrumented drivers cost nothing in normal runs.
"""

from __future__ import annotations

import json
import time
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.durable.atomic_io import atomic_write


@dataclass
class Span:
    """One completed (or still-open) span."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float  # monotonic seconds
    end: Optional[float] = None
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Wall-clock seconds (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start


class SpanRecorder:
    """Collects spans with parent/child ids off an injectable clock.

    The default clock is ``time.monotonic`` — this is harness-level
    profiling, deliberately outside the simulated
    :class:`~repro.runtime.clock.Clock`; tests inject a fake clock for
    deterministic assertions.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock if clock is not None else time.monotonic  # repro: allow(RPD201)
        self.spans: List[Span] = []
        self._stack: List[int] = []
        self._next_id = 1

    @contextmanager
    def span(self, name: str, **args: object):
        """Open a child span of the innermost active span."""
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=self._stack[-1] if self._stack else None,
            start=self._clock(),
            args=dict(args),
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span.span_id)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end = self._clock()

    def chrome_trace(self) -> Dict[str, object]:
        """The ``traceEvents`` payload Chrome/Perfetto load directly.

        Complete events (``ph: "X"``) with microsecond timestamps
        relative to the first span; parent ids ride in ``args`` so the
        hierarchy survives tools that flatten by timestamp.
        """
        origin = self.spans[0].start if self.spans else 0.0
        events = []
        for span in self.spans:
            end = span.end if span.end is not None else span.start
            args = {"span_id": span.span_id}
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            args.update(span.args)
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": round((span.start - origin) * 1e6, 3),
                    "dur": round((end - span.start) * 1e6, 3),
                    "pid": 0,
                    "tid": 0,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> None:
        """Atomically dump :meth:`chrome_trace` as JSON."""
        payload = json.dumps(self.chrome_trace(), indent=2, sort_keys=True)
        atomic_write(path, (payload + "\n").encode("utf-8"))


#: The process-wide active recorder (None = tracing off).
_ACTIVE: Optional[SpanRecorder] = None


def set_span_recorder(recorder: Optional[SpanRecorder]) -> None:
    """Install (or clear, with ``None``) the active recorder."""
    global _ACTIVE
    _ACTIVE = recorder


def get_span_recorder() -> Optional[SpanRecorder]:
    return _ACTIVE


@contextmanager
def trace_span(name: str, **args: object):
    """Span the enclosed block on the active recorder(s) — the
    one-liner instrumented drivers use.

    Feeds both the in-process :class:`SpanRecorder` and the
    cross-process :class:`~repro.obs.causal.CausalRecorder` when either
    is installed (a serve worker installs the latter, so driver spans
    like ``campaign.spec`` land in the job's causal timeline with no
    driver changes); a no-op when neither is.
    """
    from repro.obs.causal import get_causal_recorder

    recorder = _ACTIVE
    causal = get_causal_recorder()
    if recorder is None and causal is None:
        yield None
        return
    with ExitStack() as stack:
        if causal is not None:
            stack.enter_context(causal.span(name, **args))  # repro: allow(RPL107)
        span = None
        if recorder is not None:
            span = stack.enter_context(recorder.span(name, **args))  # repro: allow(RPL107)
        yield span
