"""Causal tracing across processes: correlation ids, span spills, a
cross-process stitcher, and a crash flight recorder (DESIGN.md §18).

The serve tier runs one logical job across at least three OS processes
— the HTTP server/supervisor, one worker per attempt, and the worker's
ensemble pool — and :mod:`repro.obs.spans` dies at each fork: every
process would keep a private in-memory recorder with private ids.  This
module makes the *job* the unit of tracing instead of the process:

* **Trace ids.**  Every job carries a trace id, minted from the job
  fingerprint (:func:`mint_trace_id`) or accepted from an
  ``X-Repro-Trace-Id`` header.  Span ids are a pure function of
  ``(trace_id, name, key)`` (:func:`span_id`), so two processes that
  never exchange a byte still agree on each other's span ids — the
  supervisor can point a flow at the request span the server recorded,
  and a resumed attempt re-emits a journal-restored seed under the
  *same* id as the attempt that computed it.
* **Spill files.**  Each process appends its spans to a per-process
  JSONL spill (:class:`CausalRecorder`) via the durable
  :func:`~repro.durable.atomic_io.append_line`, so a SIGKILL loses at
  most a torn final line, which readers tolerate.  Clocks are
  injectable (lint rule RPL106) and optional: records without a clock
  carry no wall-clock fields at all.
* **Stitching.**  :func:`stitch_records` merges any set of spills into
  one Chrome/Perfetto ``traceEvents`` payload.  ``mode="wall"`` is the
  causal timeline — one lane per (role, attempt), flow arrows
  (``ph: "s"``/``"f"``) linking request → admission → attempt(s) →
  chunks.  ``mode="logical"`` is the deterministic projection: only
  ``det`` records survive, wall-clock fields and harness weather are
  dropped, duplicates (journal re-emissions) collapse by span id, and
  timestamps are synthesized from a sorted causal order — so the
  stitched bytes are identical across ``--jobs`` values and across a
  SIGKILL + journal-resume of the same job.
* **Flight recorder.**  :class:`FlightRecorder` keeps the last N
  span/metric/health events in a bounded ring and dumps them atomically
  on crash, stall-reroute, retry-ladder escalation, or digest-mismatch
  alarm.  Deterministic events ("events") and wall-clock weather
  ("weather") are kept apart so the deterministic section of a dump is
  a pure function of the seed.

Span *names* are dotted lowercase literals (``"serve.attempt"``,
``"ensemble.seed"``) — never interpolated (lint rule RPL107): names are
the cardinality axis of every trace viewer, and per-value names explode
it.  Variable data rides in ``key`` and ``args``.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import re
import threading
from collections import deque
from contextlib import contextmanager
from typing import (
    IO,
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.durable.atomic_io import append_line, atomic_write

PathLike = Union[str, pathlib.Path]

#: Spill files end with this suffix; the stitcher globs for it.
SPILL_SUFFIX = ".spans.jsonl"

#: Accepted shape of an externally supplied trace id (hex, 8-64 chars).
TRACE_ID_RE = re.compile(r"^[0-9a-f]{8,64}$")

#: Environment variable carrying a JSON :class:`TraceContext` into
#: child processes that were not handed one explicitly.
TRACE_ENV = "REPRO_TRACE_CONTEXT"


def span_id(trace_id: str, name: str, key: str = "") -> str:
    """Deterministic 16-hex span id for ``(trace, name, key)``.

    Being a pure function of its inputs is the whole design: every
    process derives the same id for the same logical span without
    coordination, which is what lets flows cross process boundaries
    and journal re-emissions deduplicate.
    """
    payload = f"{trace_id}\x00{name}\x00{key}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


def mint_trace_id(fingerprint: str) -> str:
    """The default trace id for a job: derived from its fingerprint, so
    resubmissions of the same spec join the same trace."""
    payload = f"trace\x00{fingerprint}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


def _json_safe(value: Any) -> Any:
    """Clamp span args to JSON scalars (cardinality-safe, serializable)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class TraceContext:
    """The portable half of a trace: what a child process needs to keep
    recording into the same causal timeline."""

    def __init__(
        self,
        trace_id: str,
        role: str = "worker",
        attempt: int = 0,
        parent_id: Optional[str] = None,
        spill: Optional[str] = None,
        flight: Optional[str] = None,
    ) -> None:
        self.trace_id = trace_id
        self.role = role
        self.attempt = attempt
        self.parent_id = parent_id
        self.spill = spill
        self.flight = flight

    def to_payload(self) -> Dict[str, Any]:
        return {
            "trace": self.trace_id,
            "role": self.role,
            "attempt": self.attempt,
            "parent": self.parent_id,
            "spill": self.spill,
            "flight": self.flight,
        }

    @classmethod
    def from_payload(
        cls, payload: Optional[Mapping[str, Any]]
    ) -> Optional["TraceContext"]:
        if not payload or not payload.get("trace"):
            return None
        return cls(
            trace_id=str(payload["trace"]),
            role=str(payload.get("role", "worker")),
            attempt=int(payload.get("attempt", 0) or 0),
            parent_id=payload.get("parent"),
            spill=payload.get("spill"),
            flight=payload.get("flight"),
        )

    def to_env(self, environ: Optional[Dict[str, str]] = None) -> Dict[str, str]:
        """Serialize into ``environ`` (default: a fresh dict)."""
        target = environ if environ is not None else {}
        target[TRACE_ENV] = json.dumps(self.to_payload(), sort_keys=True)
        return target

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> Optional["TraceContext"]:
        if environ is None:
            import os

            environ = os.environ
        raw = environ.get(TRACE_ENV)
        if not raw:
            return None
        try:
            return cls.from_payload(json.loads(raw))
        except (ValueError, TypeError):
            return None


class CausalRecorder:
    """Appends one process's spans to a durable JSONL spill file.

    Thread-safe for :meth:`record` (the supervisor records from several
    worker threads); the stack-based :meth:`span`/:meth:`event`
    conveniences assume a single-threaded caller (the worker process).
    Without a ``clock`` no wall-clock field is ever written — such a
    spill is deterministic given the seed.
    """

    def __init__(
        self,
        path: PathLike,
        role: str,
        trace_id: Optional[str] = None,
        attempt: int = 0,
        parent_id: Optional[str] = None,
        clock: Optional[Callable[[], float]] = None,
        flight: Optional["FlightRecorder"] = None,
    ) -> None:
        self.path = pathlib.Path(path)
        self.role = role
        self.trace_id = trace_id
        self.attempt = attempt
        self.parent_id = parent_id
        self._clock = clock
        self._flight = flight
        self._lock = threading.Lock()
        self._handle: Optional[IO[str]] = None
        self._seq = 0
        self._stack: List[str] = []
        self._auto: Dict[str, int] = {}

    # -- plumbing -------------------------------------------------------
    def _open(self) -> IO[str]:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def current_span(self) -> Optional[str]:
        """Innermost open span id (or the cross-process parent)."""
        return self._stack[-1] if self._stack else self.parent_id

    def _auto_key(self, name: str) -> str:
        with self._lock:
            index = self._auto.get(name, 0)
            self._auto[name] = index + 1
        return f"a{self.attempt}.{index}"

    # -- recording ------------------------------------------------------
    def record(
        self,
        name: str,
        key: str = "",
        trace: Optional[str] = None,
        parent: Optional[str] = None,
        flow: Optional[str] = None,
        det: bool = False,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        role: Optional[str] = None,
        attempt: Optional[int] = None,
        **args: Any,
    ) -> Optional[str]:
        """Write one span record; returns its id (None when no trace).

        ``trace`` defaults to the recorder's trace id; multi-tenant
        recorders (supervisor, server) pass it per record.  ``det``
        marks records that survive into the logical projection — their
        ``key`` and ``args`` must be pure functions of the seed.
        """
        trace = trace if trace is not None else self.trace_id
        if trace is None:
            return None
        sid = span_id(trace, name, key)
        record: Dict[str, Any] = {
            "trace": trace,
            "span": sid,
            "name": name,
            "key": key,
            "role": role if role is not None else self.role,
            "attempt": self.attempt if attempt is None else int(attempt),
            "det": bool(det),
        }
        if parent is not None:
            record["parent"] = parent
        if flow is not None:
            record["flow"] = flow
        if args:
            record["args"] = {k: _json_safe(v) for k, v in sorted(args.items())}
        if t0 is not None:
            record["t0"] = round(float(t0), 6)
        if t1 is not None:
            record["t1"] = round(float(t1), 6)
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            append_line(self._open(), json.dumps(record, sort_keys=True))
        if self._flight is not None:
            self._flight.record("span", name, volatile=True, key=key)
        return sid

    @contextmanager
    def span(
        self,
        name: str,
        key: Optional[str] = None,
        det: bool = False,
        flow: Optional[str] = None,
        **args: Any,
    ):
        """Record the enclosed block as a span (single-threaded use)."""
        if self.trace_id is None:
            yield None
            return
        if key is None:
            key = self._auto_key(name)
        parent = self.current_span()
        t0 = self._clock() if self._clock is not None else None
        sid = span_id(self.trace_id, name, key)
        self._stack.append(sid)
        try:
            yield sid
        finally:
            self._stack.pop()
            t1 = self._clock() if self._clock is not None else None
            self.record(
                name, key=key, parent=parent, flow=flow, det=det,
                t0=t0, t1=t1, **args
            )

    def event(
        self,
        name: str,
        key: str = "",
        det: bool = False,
        flow: Optional[str] = None,
        **args: Any,
    ) -> Optional[str]:
        """Record a zero-duration event under the innermost open span."""
        if self.trace_id is None:
            return None
        parent = self.current_span()
        now = self._clock() if self._clock is not None else None
        return self.record(
            name, key=key, parent=parent, flow=flow, det=det,
            t0=now, t1=now, **args
        )


#: Process-wide active causal recorder (None = causal tracing off).
_ACTIVE_CAUSAL: Optional[CausalRecorder] = None


def install_causal_recorder(recorder: Optional[CausalRecorder]) -> None:
    """Install (or clear, with ``None``) the process's causal recorder."""
    global _ACTIVE_CAUSAL
    _ACTIVE_CAUSAL = recorder


def get_causal_recorder() -> Optional[CausalRecorder]:
    return _ACTIVE_CAUSAL


class FlightRecorder:
    """Bounded ring buffer of recent events, dumped on incidents.

    ``volatile=True`` events (wall-clock weather: span mirrors,
    progress heartbeats) and deterministic health events are kept in
    the same ring but dumped into separate sections, so the ``events``
    section of a dump is reproducible given the seed while ``weather``
    captures what actually happened this run.
    """

    def __init__(
        self,
        capacity: int = 256,
        context: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.capacity = int(capacity)
        self.context = dict(context or {})
        self._lock = threading.Lock()
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self._total = 0

    def record(
        self, kind: str, name: str, volatile: bool = False, **args: Any
    ) -> None:
        event: Dict[str, Any] = {"kind": kind, "name": name}
        if volatile:
            event["volatile"] = True
        if args:
            event["args"] = {k: _json_safe(v) for k, v in sorted(args.items())}
        with self._lock:
            self._total += 1
            event["n"] = self._total
            self._ring.append(event)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            ring = [dict(event) for event in self._ring]
            total = self._total
        events = [e for e in ring if not e.get("volatile")]
        weather = [e for e in ring if e.get("volatile")]
        for section in (events, weather):
            for event in section:
                event.pop("volatile", None)
        return {
            "context": dict(self.context),
            "capacity": self.capacity,
            "recorded_total": total,
            "dropped": max(0, total - len(ring)),
            "events": events,
            "weather": weather,
        }

    def dump(self, path: PathLike, reason: str) -> Dict[str, Any]:
        """Atomically write the ring to ``path``; returns the payload."""
        payload = self.snapshot()
        payload["reason"] = reason
        atomic_write(
            path,
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )
        return payload


#: Process-wide active flight recorder (None = flight recording off).
_ACTIVE_FLIGHT: Optional[FlightRecorder] = None


def install_flight_recorder(recorder: Optional[FlightRecorder]) -> None:
    global _ACTIVE_FLIGHT
    _ACTIVE_FLIGHT = recorder


def get_flight_recorder() -> Optional[FlightRecorder]:
    return _ACTIVE_FLIGHT


def flight_note(
    kind: str, name: str, volatile: bool = False, **args: Any
) -> None:
    """Record onto the active flight recorder (no-op without one)."""
    recorder = _ACTIVE_FLIGHT
    if recorder is not None:
        recorder.record(kind, name, volatile=volatile, **args)  # repro: allow(RPL107)


# ----------------------------------------------------------------------
# Stitching: spill files -> one Chrome/Perfetto traceEvents payload.
# ----------------------------------------------------------------------

def read_spill(path: PathLike) -> List[Dict[str, Any]]:
    """Read one spill file, tolerating a torn final line and absence."""
    records: List[Dict[str, Any]] = []
    try:
        text = pathlib.Path(path).read_text(encoding="utf-8")
    except OSError:
        return records
    for raw in text.splitlines():
        raw = raw.strip()
        if not raw:
            continue
        try:
            record = json.loads(raw)
        except ValueError:
            continue  # torn tail (or foreign line): skip, never fail
        if isinstance(record, dict) and "span" in record and "name" in record:
            records.append(record)
    return records


def read_spills(paths: Iterable[PathLike]) -> List[Dict[str, Any]]:
    records: List[Dict[str, Any]] = []
    for path in paths:
        records.extend(read_spill(path))
    return records


def find_spills(root: PathLike) -> List[pathlib.Path]:
    """All spill files under ``root`` (sorted — deterministic input
    order for the stitcher)."""
    return sorted(pathlib.Path(root).rglob(f"*{SPILL_SUFFIX}"))


def _lane(record: Mapping[str, Any]) -> Tuple[str, int]:
    return str(record.get("role", "?")), int(record.get("attempt", 0) or 0)


def _wall_sort_key(record: Mapping[str, Any]) -> Tuple[Any, ...]:
    return (
        float(record.get("t0", 0.0) or 0.0),
        str(record.get("role", "")),
        int(record.get("attempt", 0) or 0),
        int(record.get("seq", 0) or 0),
        str(record.get("name", "")),
        str(record.get("key", "")),
    )


def stitch_records(
    records: Sequence[Mapping[str, Any]],
    mode: str = "wall",
    trace_id: Optional[str] = None,
) -> Dict[str, Any]:
    """Merge spill records into one ``traceEvents`` payload.

    ``mode="wall"``: the full causal timeline.  One lane (pid) per
    (role, attempt), complete events with wall timestamps relative to
    the earliest record, and a flow arrow (``ph: "s"`` → ``ph: "f"``)
    into every record that names a ``flow`` source present in the
    merged set — a retried job renders as one connected timeline.

    ``mode="logical"``: the deterministic projection.  Only ``det``
    records survive; duplicates (a resumed attempt re-emitting
    journal-restored seeds) collapse by span id; wall-clock fields,
    roles, attempts, parents and flows are dropped; timestamps are the
    index in the ``(name, key)``-sorted order.  The output bytes are a
    pure function of the set of logical spans — identical across
    ``--jobs`` values and across kill + resume.
    """
    if mode not in ("wall", "logical"):
        raise ValueError(f"unknown stitch mode {mode!r}")
    pool = [
        record
        for record in records
        if trace_id is None or record.get("trace") == trace_id
    ]
    if mode == "logical":
        unique: Dict[str, Dict[str, Any]] = {}
        for record in pool:
            if not record.get("det"):
                continue
            sid = str(record["span"])
            if sid not in unique:
                unique[sid] = {
                    "name": str(record.get("name", "")),
                    "key": str(record.get("key", "")),
                    "span": sid,
                    "args": dict(record.get("args", {}) or {}),
                }
        ordered = sorted(unique.values(), key=lambda r: (r["name"], r["key"]))
        events = []
        for index, record in enumerate(ordered):
            args = {"span": record["span"], "key": record["key"]}
            args.update(record["args"])
            events.append(
                {
                    "name": record["name"],
                    "ph": "X",
                    "ts": index,
                    "dur": 1,
                    "pid": 0,
                    "tid": 0,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    lanes = sorted({_lane(record) for record in pool})
    pid_of = {lane: index + 1 for index, lane in enumerate(lanes)}
    starts = [float(r["t0"]) for r in pool if r.get("t0") is not None]
    origin = min(starts) if starts else 0.0

    def rel(record: Mapping[str, Any], field: str) -> float:
        value = record.get(field)
        if value is None:
            return 0.0
        return round((float(value) - origin) * 1e6, 1)

    events = []
    for lane in lanes:
        label = lane[0] if lane[1] == 0 else f"{lane[0]} attempt {lane[1]}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid_of[lane],
                "tid": 0,
                "args": {"name": label},
            }
        )
    by_span: Dict[str, Mapping[str, Any]] = {}
    for record in sorted(pool, key=_wall_sort_key):
        by_span.setdefault(str(record["span"]), record)
    for record in sorted(pool, key=_wall_sort_key):
        pid = pid_of[_lane(record)]
        start = rel(record, "t0")
        end = rel(record, "t1")
        args: Dict[str, Any] = {
            "span": record["span"],
            "key": record.get("key", ""),
        }
        if record.get("parent"):
            args["parent"] = record["parent"]
        args.update(record.get("args", {}) or {})
        events.append(
            {
                "name": record.get("name", ""),
                "ph": "X",
                "ts": start,
                "dur": max(0.0, end - start),
                "pid": pid,
                "tid": 0,
                "args": args,
            }
        )
        flow = record.get("flow")
        source = by_span.get(str(flow)) if flow else None
        if source is not None:
            source_ts = min(rel(source, "t1"), start)
            events.append(
                {
                    "name": "causal",
                    "cat": "causal",
                    "ph": "s",
                    "id": record["span"],
                    "pid": pid_of[_lane(source)],
                    "tid": 0,
                    "ts": source_ts,
                }
            )
            events.append(
                {
                    "name": "causal",
                    "cat": "causal",
                    "ph": "f",
                    "bp": "e",
                    "id": record["span"],
                    "pid": pid,
                    "tid": 0,
                    "ts": start,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def stitch_spills(
    paths: Iterable[PathLike],
    mode: str = "wall",
    trace_id: Optional[str] = None,
) -> Dict[str, Any]:
    """Read + merge spill files (see :func:`stitch_records`)."""
    return stitch_records(read_spills(paths), mode=mode, trace_id=trace_id)


def write_stitched_trace(path: PathLike, payload: Mapping[str, Any]) -> None:
    """Atomically write a stitched payload with sorted keys, so logical
    stitches are byte-comparable with ``cmp``."""
    atomic_write(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
