"""Low-overhead metrics registry: counters, gauges, fixed-bucket
histograms, and a no-op null backend.

The registry is the telemetry substrate every instrumented layer feeds
(DESIGN.md §13).  Two properties drive the design:

* **The hot path stays elided.**  Instruments are created once
  (:meth:`MetricsRegistry.counter` and friends memoize by name) and
  updated in *bulk* at chunk/run boundaries — never per simulated step.
  Components that accept a registry treat :data:`NULL` (the
  :class:`NullMetricsRegistry` singleton) exactly like "no metrics":
  ``Simulator.attach_metrics(NULL)`` leaves the ``run_fast()`` batch
  loop untouched, so a fully wired pipeline with the null backend pays
  nothing measurable (pinned by ``benchmarks/bench_obs_overhead.py``).

* **Deterministic vs wall-clock telemetry never mix.**  Every
  instrument carries a ``deterministic`` flag.  Deterministic metrics
  are pure functions of the (seeded) simulation and may enter
  byte-identity-checked snapshot files; wall-clock-ish metrics (pool
  retries, watchdog escalations, anything scheduling-weather dependent)
  are flagged ``deterministic=False`` and are excluded from
  :meth:`MetricsRegistry.snapshot` by default — they exist for the live
  ``repro top`` view and the Prometheus exposition only.

Metric naming follows the Prometheus convention: ``repro_<area>_<what>``
with a ``_total`` suffix on monotonically increasing counters (e.g.
``repro_sim_steps_total``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError

#: Default fixed bucket bounds for delay/contention histograms
#: (powers of two; a final +Inf bucket is always implied).
TAU_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


class Counter:
    """A monotonically increasing count (e.g. steps executed)."""

    __slots__ = ("name", "help", "deterministic", "value")
    kind = "counter"

    def __init__(self, name: str, help: str = "", deterministic: bool = True):
        self.name = name
        self.help = help
        self.deterministic = deterministic
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (negative amounts are rejected)."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc({amount}))"
            )
        self.value += amount

    def sample(self) -> Union[int, float]:
        return self.value


class Gauge:
    """A point-in-time value (e.g. the current τ_max estimate)."""

    __slots__ = ("name", "help", "deterministic", "value")
    kind = "gauge"

    def __init__(self, name: str, help: str = "", deterministic: bool = True):
        self.name = name
        self.help = help
        self.deterministic = deterministic
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def max(self, value: Union[int, float]) -> None:
        """Keep the running maximum (running-τ_max style gauges)."""
        if value > self.value:
            self.value = value

    def sample(self) -> Union[int, float]:
        return self.value


class Histogram:
    """A fixed-bucket histogram (bucket bounds chosen at creation).

    Buckets are upper bounds (``value <= bound`` lands in the bucket),
    Prometheus ``le`` style, with an implicit final +Inf bucket.  Counts
    are kept per bucket (not cumulative); :meth:`sample` exposes the
    cumulative form snapshots and the text exposition use.
    """

    __slots__ = ("name", "help", "deterministic", "bounds", "counts", "total", "sum")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = TAU_BUCKETS,
        help: str = "",
        deterministic: bool = True,
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name} needs strictly increasing bucket bounds, "
                f"got {buckets!r}"
            )
        self.name = name
        self.help = help
        self.deterministic = deterministic
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # final slot = +Inf
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += 1
        self.sum += value

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    def sample(self) -> Dict[str, object]:
        """Cumulative ``le`` buckets plus count/sum, JSON-safe."""
        cumulative = 0
        buckets: List[List[object]] = []
        for bound, count in zip(self.bounds, self.counts):
            cumulative += count
            label = int(bound) if float(bound).is_integer() else bound
            buckets.append([label, cumulative])
        buckets.append(["+Inf", self.total])
        return {"buckets": buckets, "count": self.total, "sum": self.sum}


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Names instruments and renders snapshots/expositions.

    Accessors memoize: asking twice for the same name returns the same
    instrument (so layers can share counters without plumbing), and
    asking for an existing name as a different kind raises
    :class:`~repro.errors.ConfigurationError`.
    """

    #: Lets callers cheaply distinguish a live registry from :data:`NULL`
    #: (``if not registry.null: ...``).
    null = False

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _get(self, cls, name: str, *args, **kwargs) -> Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigurationError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        instrument = cls(name, *args, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(
        self, name: str, help: str = "", deterministic: bool = True
    ) -> Counter:
        return self._get(Counter, name, help, deterministic)

    def gauge(
        self, name: str, help: str = "", deterministic: bool = True
    ) -> Gauge:
        return self._get(Gauge, name, help, deterministic)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = TAU_BUCKETS,
        help: str = "",
        deterministic: bool = True,
    ) -> Histogram:
        return self._get(Histogram, name, buckets, help, deterministic)

    def instruments(self) -> List[Instrument]:
        """All instruments, name-sorted (deterministic iteration)."""
        return [self._instruments[name] for name in sorted(self._instruments)]

    def snapshot(self, deterministic_only: bool = True) -> Dict[str, object]:
        """Name → sampled value, name-sorted.

        With ``deterministic_only`` (the default) wall-clock-ish
        instruments are excluded, so the result is safe to write into
        byte-identity-checked artifacts.
        """
        return {
            instrument.name: instrument.sample()
            for instrument in self.instruments()
            if instrument.deterministic or not deterministic_only
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition of *every* instrument (live
        telemetry — the deterministic/wall-clock split does not apply
        to a scrape)."""
        lines: List[str] = []
        for instrument in self.instruments():
            if instrument.help:
                lines.append(f"# HELP {instrument.name} {instrument.help}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            if isinstance(instrument, Histogram):
                sample = instrument.sample()
                for le, cumulative in sample["buckets"]:
                    lines.append(
                        f'{instrument.name}_bucket{{le="{le}"}} {cumulative}'
                    )
                lines.append(f"{instrument.name}_count {sample['count']}")
                lines.append(f"{instrument.name}_sum {sample['sum']:g}")
            else:
                lines.append(f"{instrument.name} {instrument.sample()}")
        return "\n".join(lines) + "\n"


class _NullInstrument:
    """Shared do-nothing instrument the null backend hands out."""

    __slots__ = ()
    name = "null"
    help = ""
    deterministic = True
    kind = "null"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def max(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    def sample(self) -> int:
        return 0


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """The no-op backend: accepts every call, records nothing.

    Passing :data:`NULL` anywhere a registry is accepted is the
    documented way to say "no telemetry" — instrumented components check
    ``registry.null`` once at attach time and skip all bookkeeping, so
    the elided ``run_fast()`` hot path is byte-for-byte the
    uninstrumented one.
    """

    null = True

    def counter(self, name: str, help: str = "", deterministic: bool = True):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", deterministic: bool = True):
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = TAU_BUCKETS,
        help: str = "",
        deterministic: bool = True,
    ):
        return _NULL_INSTRUMENT

    def instruments(self) -> List[Instrument]:
        return []

    def snapshot(self, deterministic_only: bool = True) -> Dict[str, object]:
        return {}

    def render_prometheus(self) -> str:
        return ""


#: The process-wide null backend (stateless; safe to share).
NULL = NullMetricsRegistry()


def live_registry(metrics: Optional[object]) -> Optional[MetricsRegistry]:
    """Normalize an optional ``metrics=`` argument: ``None`` and the
    null backend both mean "not instrumented" (returns ``None``)."""
    if metrics is None or getattr(metrics, "null", False):
        return None
    return metrics  # type: ignore[return-value]
