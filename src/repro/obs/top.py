"""Curses-free text views: ASCII histograms, snapshot rendering, and
the periodic ``repro top``-style live view.

Everything here renders to plain text — no terminal control beyond
newlines — so it works identically in CI logs, pipes and dumb
terminals.  :class:`TopView` is the live side (wall-clock gated,
written to stderr, explicitly *not* deterministic);
:func:`render_snapshot_lines` is the offline side ``python -m repro
obs`` uses on snapshot files (pure text over deterministic input, so
its output is deterministic too).
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs.registry import Histogram, MetricsRegistry

_BAR_WIDTH = 30


def ascii_bar(count: int, maximum: int, width: int = _BAR_WIDTH) -> str:
    """A ``#``-bar scaled to ``maximum`` (non-empty counts always show
    at least one mark)."""
    if maximum <= 0 or count <= 0:
        return ""
    return "#" * max(1, round(width * count / maximum))


def render_histogram_rows(
    buckets: Sequence[Sequence[object]], indent: str = "  "
) -> List[str]:
    """Rows for a cumulative ``le``-bucket list (de-cumulated bars)."""
    per_bucket: List[int] = []
    previous = 0
    for _le, cumulative in buckets:
        per_bucket.append(int(cumulative) - previous)
        previous = int(cumulative)
    top = max(per_bucket) if per_bucket else 0
    rows = []
    for (le, _cumulative), count in zip(buckets, per_bucket):
        label = f"le {le}".rjust(8)
        rows.append(f"{indent}{label}  {str(count).rjust(7)}  {ascii_bar(count, top)}")
    return rows


def render_metrics_block(metrics: Dict[str, object], indent: str = "  ") -> List[str]:
    """Rows for one metrics dict: scalars first, histogram bars after."""
    rows = []
    for key in sorted(metrics):
        value = metrics[key]
        if key == "tau_histogram":
            continue
        if key == "window_counts":
            values = list(value) if isinstance(value, list) else []
            if values:
                rows.append(
                    f"{indent}{key}: {len(values)} window(s), "
                    f"max {max(values)}"
                )
            continue
        rows.append(f"{indent}{key}: {value}")
    histogram = metrics.get("tau_histogram")
    if histogram:
        rows.append(f"{indent}tau_histogram:")
        rows.extend(render_histogram_rows(histogram, indent=indent + "  "))
    return rows


def render_snapshot_lines(lines: Sequence[Dict[str, object]]) -> str:
    """The ``repro obs`` text rendering of a snapshot file."""
    rows: List[str] = []
    for line in lines:
        kind = line.get("kind", "?")
        if kind == "cell":
            header = f"cell spec={line.get('spec')} seed={line.get('seed')}"
            extras = [
                f"{key}={line[key]}"
                for key in ("converged", "crashed", "respawned", "steps")
                if key in line
            ]
            if extras:
                header += "  " + " ".join(extras)
            rows.append(header)
            metrics = line.get("metrics") or {}
            summary = [
                f"{key}={metrics[key]}"
                for key in (
                    "iterations",
                    "tau_max",
                    "window_bad_max",
                    "indicator_sum_max",
                )
                if key in metrics
            ]
            if summary:
                rows.append("  " + " ".join(summary))
        elif kind == "aggregate":
            rows.append("aggregate")
            rows.extend(render_metrics_block(line.get("metrics") or {}))
        elif kind == "experiment":
            rows.append(
                f"experiment {line.get('id')}  passed={line.get('passed')}"
            )
            rows.extend(render_metrics_block(line.get("metrics") or {}))
        elif kind == "run":
            rows.append(
                f"run {line.get('label')}  findings={line.get('findings')} "
                f"certificates_ok={line.get('certificates_ok')}"
            )
        else:
            rows.append(f"{kind}: {line}")
    rows.append(f"{len(lines)} snapshot line(s)")
    return "\n".join(rows)


class TopView:
    """Periodic plain-text view of a live registry (``repro top`` style).

    Renders at most once per ``interval`` wall-clock seconds (the clock
    is injectable for tests).  Output goes to ``stream`` (stderr by
    default) and deliberately includes *all* instruments — wall-clock
    ones too — because a live view is telemetry, not an artifact.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        interval: float = 2.0,
        stream=None,
        clock: Optional[Callable[[], float]] = None,
        title: str = "repro top",
    ) -> None:
        self.registry = registry
        self.interval = interval
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock if clock is not None else time.monotonic  # repro: allow(RPD201)
        self.title = title
        self._last_render: Optional[float] = None
        self.renders = 0

    def render_text(self) -> str:
        rows = [f"-- {self.title} --"]
        for instrument in self.registry.instruments():
            if isinstance(instrument, Histogram):
                sample = instrument.sample()
                rows.append(f"{instrument.name} (count={sample['count']})")
                rows.extend(render_histogram_rows(sample["buckets"]))
            else:
                rows.append(f"{instrument.name} {instrument.sample()}")
        return "\n".join(rows)

    def maybe_render(self, force: bool = False) -> bool:
        """Render if ``interval`` elapsed since the last render (or
        ``force``).  Returns whether it rendered."""
        now = self._clock()
        if (
            not force
            and self._last_render is not None
            and now - self._last_render < self.interval
        ):
            return False
        self._last_render = now
        self.renders += 1
        print(self.render_text(), file=self.stream, flush=True)
        return True
