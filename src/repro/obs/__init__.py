"""Observability: run-time metrics, paper-aligned derived quantities,
span tracing, snapshot files and text views (DESIGN.md §13).

The package splits telemetry along the repo's determinism boundary:

* deterministic metrics (pure functions of the seeded simulation) may
  enter byte-identity-checked snapshot files;
* wall-clock telemetry (span durations, pool/watchdog weather) lives in
  the live ``repro top`` view and the Chrome-trace dump only.
"""

from repro.obs.causal import (
    CausalRecorder,
    FlightRecorder,
    TraceContext,
    find_spills,
    flight_note,
    get_causal_recorder,
    get_flight_recorder,
    install_causal_recorder,
    install_flight_recorder,
    mint_trace_id,
    read_spills,
    span_id,
    stitch_records,
    stitch_spills,
    write_stitched_trace,
)
from repro.obs.paper import (
    PaperTracker,
    merge_paper_metrics,
    paper_metrics,
    publish_paper_metrics,
    tau_histogram_buckets,
)
from repro.obs.registry import (
    NULL,
    TAU_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    live_registry,
)
from repro.obs.snapshot import (
    load_snapshot_jsonl,
    prometheus_exposition,
    write_snapshot_jsonl,
)
from repro.obs.spans import (
    Span,
    SpanRecorder,
    get_span_recorder,
    set_span_recorder,
    trace_span,
)
from repro.obs.top import TopView, render_metrics_block, render_snapshot_lines

__all__ = [
    "NULL",
    "TAU_BUCKETS",
    "CausalRecorder",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "PaperTracker",
    "Span",
    "SpanRecorder",
    "TopView",
    "TraceContext",
    "find_spills",
    "flight_note",
    "get_causal_recorder",
    "get_flight_recorder",
    "get_span_recorder",
    "install_causal_recorder",
    "install_flight_recorder",
    "mint_trace_id",
    "read_spills",
    "span_id",
    "stitch_records",
    "stitch_spills",
    "write_stitched_trace",
    "live_registry",
    "load_snapshot_jsonl",
    "merge_paper_metrics",
    "paper_metrics",
    "prometheus_exposition",
    "publish_paper_metrics",
    "render_metrics_block",
    "render_snapshot_lines",
    "set_span_recorder",
    "tau_histogram_buckets",
    "trace_span",
    "write_snapshot_jsonl",
]
