"""Paper-aligned derived metrics, streamed online.

The quantities the paper's analysis is stated in — per-update delay τ
(Theorem 5.1), interval contention and its maximum τ_max, per-``K·n``
window bad-iteration counts (Lemma 6.2), and the indicator sums
``Σ_m 1{τ_{t+m} ≥ m}`` (Lemma 6.4) — computed from the live
:class:`~repro.runtime.events.IterationRecord` stream of a run.

**Agreement with post-hoc certification is by construction**: the
heavy quantities are produced by the *same* functions the
:mod:`repro.analysis.lemmas` certifiers call
(:func:`~repro.theory.contention.delay_sequence`,
:func:`~repro.theory.contention.tau_max`,
:func:`~repro.theory.contention.lemma_6_2_window_counts`,
:func:`~repro.theory.contention.lemma_6_4_sums`), and the
``lemma_6_2``/``lemma_6_4`` entries of a snapshot are read straight off
:class:`~repro.analysis.report.LemmaCertificate` objects issued by
:func:`~repro.analysis.lemmas.certify_lemma_6_2` /
:func:`certify_lemma_6_4`.  A live counter disagreeing with the
certificate for the same trace is therefore impossible without a code
bug — the cross-check test in ``tests/test_obs_paper.py`` pins it.

Everything returned is JSON-safe (ints, floats, bools, lists) and a
pure function of the record stream, so snapshots are deterministic and
survive journal round-trips byte-identically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.registry import TAU_BUCKETS, live_registry
from repro.runtime.events import IterationRecord


def tau_histogram_buckets(
    delays: Sequence[int], buckets: Tuple[float, ...] = TAU_BUCKETS
) -> List[List[object]]:
    """Cumulative ``le`` buckets of a delay sequence (+Inf last)."""
    counts = [0] * (len(buckets) + 1)
    for value in delays:
        for index, bound in enumerate(buckets):
            if value <= bound:
                counts[index] += 1
                break
        else:
            counts[-1] += 1
    cumulative = 0
    out: List[List[object]] = []
    for bound, count in zip(buckets, counts):
        cumulative += count
        label = int(bound) if float(bound).is_integer() else bound
        out.append([label, cumulative])
    out.append(["+Inf", len(delays)])
    return out


def paper_metrics(
    records: Sequence[IterationRecord],
    num_threads: int,
    window_multiplier: int = 2,
) -> Dict[str, object]:
    """One run's paper-aligned metric snapshot (deterministic, JSON-safe).

    Keys (all derived through the shared theory/certifier code paths):

    * ``iterations``, ``threads_observed`` — trace shape;
    * ``tau_max``, ``tau_avg`` — interval-contention extremes (§6.1);
    * ``delay_max``, ``tau_histogram`` — the per-iteration delay
      sequence τ_t and its fixed-bucket histogram;
    * ``window``, ``window_counts``, ``window_bad_max``,
      ``window_bound``, ``lemma_6_2_holds`` — per-``K·n``-window
      bad-iteration counts against Lemma 6.2's ``< n`` bound;
    * ``indicator_sum_max``, ``indicator_sum_bound``,
      ``lemma_6_4_holds`` — Lemma 6.4's indicator sums against
      ``2√(τ_max·n)``;
    * ``lemma_6_1_violations`` — Lemma 6.1 total-order violations.
    """
    from repro.analysis.lemmas import (
        certify_iteration_order,
        certify_lemma_6_2,
        certify_lemma_6_4,
    )
    from repro.theory.contention import (
        delay_sequence,
        lemma_6_2_window_counts,
        tau_avg,
        tau_max,
        thread_count,
    )

    delays = delay_sequence(records)
    cert_61 = certify_iteration_order(records)
    cert_62 = certify_lemma_6_2(
        records, num_threads=num_threads, window_multiplier=window_multiplier
    )
    cert_64 = certify_lemma_6_4(records)
    window_counts = lemma_6_2_window_counts(
        records, window_multiplier=window_multiplier, num_threads=num_threads
    )
    return {
        "iterations": len(records),
        "threads_observed": thread_count(records),
        "num_threads": int(num_threads),
        "tau_max": int(tau_max(records)),
        "tau_avg": float(tau_avg(records)),
        "delay_max": int(delays.max()) if delays.size else 0,
        "tau_histogram": tau_histogram_buckets([int(d) for d in delays]),
        "window": int(window_multiplier * num_threads),
        "window_counts": [int(c) for c in window_counts],
        "window_bad_max": float(cert_62.measured),
        "window_bound": float(cert_62.bound),
        "lemma_6_2_holds": bool(cert_62.holds),
        "indicator_sum_max": float(cert_64.measured),
        "indicator_sum_bound": float(cert_64.bound),
        "lemma_6_4_holds": bool(cert_64.holds),
        "lemma_6_1_violations": int(cert_61.measured),
    }


def merge_paper_metrics(cells: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Aggregate per-cell snapshots (max for extremes, sum for counts).

    Per-window count lists are not mergeable across runs and are
    dropped; the worst window (``window_bad_max``) survives.  The
    ``lemma_*_holds`` flags aggregate with ``all`` — one violated cell
    fails the aggregate.
    """
    cells = [c for c in cells if c]
    if not cells:
        return {}
    buckets = None
    for cell in cells:
        hist = cell.get("tau_histogram")
        if not hist:
            continue
        if buckets is None:
            buckets = [[le, 0] for le, _ in hist]
        for slot, (_le, cumulative) in zip(buckets, hist):
            slot[1] += cumulative
    return {
        "cells": len(cells),
        "iterations": sum(int(c.get("iterations", 0)) for c in cells),
        "tau_max": max(int(c.get("tau_max", 0)) for c in cells),
        "delay_max": max(int(c.get("delay_max", 0)) for c in cells),
        "tau_histogram": buckets if buckets is not None else [],
        "window_bad_max": max(float(c.get("window_bad_max", 0.0)) for c in cells),
        "indicator_sum_max": max(
            float(c.get("indicator_sum_max", 0.0)) for c in cells
        ),
        "indicator_sum_bound_max": max(
            float(c.get("indicator_sum_bound", 0.0)) for c in cells
        ),
        "lemma_6_1_violations": sum(
            int(c.get("lemma_6_1_violations", 0)) for c in cells
        ),
        "lemma_6_2_holds": all(bool(c.get("lemma_6_2_holds", True)) for c in cells),
        "lemma_6_4_holds": all(bool(c.get("lemma_6_4_holds", True)) for c in cells),
    }


def publish_paper_metrics(
    metrics: Optional[object], snapshot: Dict[str, object], prefix: str = "repro"
) -> None:
    """Push one run's :func:`paper_metrics` snapshot into a registry.

    Gauges keep running maxima (``tau_max``-style), counters accumulate
    across runs (iterations, lemma violations), and the τ histogram is
    re-observed bucket by bucket so a live ``repro top`` view can render
    it.  A ``None``/null registry is a no-op.
    """
    registry = live_registry(metrics)
    if registry is None or not snapshot:
        return
    registry.counter(
        f"{prefix}_iterations_total", "completed SGD iterations"
    ).inc(int(snapshot.get("iterations", 0)))
    registry.gauge(
        f"{prefix}_tau_max", "running max interval contention (paper tau_max)"
    ).max(int(snapshot.get("tau_max", 0)))
    registry.gauge(
        f"{prefix}_delay_max", "running max per-iteration delay tau_t"
    ).max(int(snapshot.get("delay_max", 0)))
    registry.gauge(
        f"{prefix}_window_bad_max",
        "worst Kn-window bad-iteration count (Lemma 6.2; bound is n)",
    ).max(float(snapshot.get("window_bad_max", 0.0)))
    registry.gauge(
        f"{prefix}_indicator_sum_max",
        "worst Lemma 6.4 indicator sum (bound is 2*sqrt(tau_max*n))",
    ).max(float(snapshot.get("indicator_sum_max", 0.0)))
    registry.counter(
        f"{prefix}_lemma_6_1_violations_total", "Lemma 6.1 order violations"
    ).inc(int(snapshot.get("lemma_6_1_violations", 0)))
    histogram = registry.histogram(
        f"{prefix}_tau_delay", buckets=TAU_BUCKETS,
        help="per-iteration delay tau_t distribution",
    )
    previous = 0
    for index, (_le, cumulative) in enumerate(snapshot.get("tau_histogram", [])):
        count = int(cumulative) - previous
        previous = int(cumulative)
        if count <= 0:
            continue
        # Re-observe a representative value per bucket: the bound itself
        # (or one past the last finite bound for the +Inf bucket).
        value = (
            float(TAU_BUCKETS[index])
            if index < len(TAU_BUCKETS)
            else float(TAU_BUCKETS[-1]) + 1.0
        )
        for _ in range(count):
            histogram.observe(value)


class PaperTracker:
    """Streaming tracker of the paper's run-time quantities.

    Feed iteration records as they materialize (whole-run or chunk by
    chunk); :meth:`snapshot` recomputes the derived quantities over
    everything ingested so far through the shared theory functions.
    Cheap running counters (iterations, running delay max) are updated
    per :meth:`ingest`; the heavy O(N log N) quantities are only
    computed when a snapshot is asked for.
    """

    def __init__(self, num_threads: int, window_multiplier: int = 2) -> None:
        self.num_threads = num_threads
        self.window_multiplier = window_multiplier
        self.records: List[IterationRecord] = []

    def ingest(self, records: Sequence[IterationRecord]) -> None:
        self.records.extend(records)

    @property
    def iterations(self) -> int:
        return len(self.records)

    def snapshot(self) -> Dict[str, object]:
        """Recompute the full paper-metric snapshot over everything
        ingested so far.  Publishing into a registry is the caller's
        call (:func:`publish_paper_metrics` is one-shot per run — a
        tracker snapshotted repeatedly would double-count counters)."""
        return paper_metrics(
            self.records,
            num_threads=self.num_threads,
            window_multiplier=self.window_multiplier,
        )
