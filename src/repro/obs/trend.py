"""Perf-trend observatory: an append-only ledger over BENCH_*.json.

The benchmark JSONs under ``benchmarks/results/`` are snapshots — each
PR overwrites them in place, so the repo knows how fast it *is* but not
whether it is getting faster.  ``python -m repro trend`` closes that
gap with three small pieces:

* **Ledger.**  ``TREND.jsonl`` next to the bench files, one line per
  observed bench state: ``{"bench", "digest", "source", "metrics"}``.
  The digest is a sha256 over the bench payload minus its volatile
  ``unix_time`` stamp, which makes ingestion idempotent — re-running
  ``repro trend --update`` against unchanged bench files appends
  nothing.  Lines are only ever appended (durable
  :func:`~repro.durable.atomic_io.append_line`), so the ledger *is*
  the trajectory.
* **Deltas.**  :func:`trend_rows` renders every bench's latest metrics
  with the relative change against the previous ledger entry.
* **Gate.**  :func:`check_regressions` compares the *current* bench
  files against the last ledger baseline and flags every
  higher-is-better metric (``*_per_sec``, ``*speedup*``,
  ``*throughput*``) that dropped more than the threshold (default
  20%) — the CI ``trend`` step fails on any hit.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.durable.atomic_io import append_line

PathLike = Union[str, pathlib.Path]

#: Bench files the observatory ingests.
BENCH_GLOB = "BENCH_*.json"

#: Default ledger file name (lives next to the bench files).
LEDGER_NAME = "TREND.jsonl"

#: Top-level keys that are wall-clock stamps, not metrics.
_VOLATILE_KEYS = {"unix_time"}

#: Metric-name fragments that mean "higher is better" for the gate.
_HIGHER_IS_BETTER = ("per_sec", "speedup", "throughput")


def flatten_metrics(
    payload: Mapping[str, Any], prefix: str = ""
) -> Dict[str, float]:
    """Dotted-key flattening of every numeric scalar leaf (bools and
    the volatile stamp keys excluded)."""
    flat: Dict[str, float] = {}
    for key in sorted(payload):
        if not prefix and key in _VOLATILE_KEYS:
            continue
        value = payload[key]
        dotted = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            flat[dotted] = float(value)
        elif isinstance(value, Mapping):
            flat.update(flatten_metrics(value, prefix=dotted))
    return flat


def bench_digest(payload: Mapping[str, Any]) -> str:
    """Content digest of a bench payload minus its wall-clock stamp."""
    stable = {k: v for k, v in payload.items() if k not in _VOLATILE_KEYS}
    canonical = json.dumps(stable, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def load_bench_files(
    results_dir: PathLike,
) -> List[Tuple[str, pathlib.Path, Dict[str, Any]]]:
    """``(bench_name, path, payload)`` for every readable bench file."""
    benches = []
    for path in sorted(pathlib.Path(results_dir).glob(BENCH_GLOB)):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if isinstance(payload, dict):
            benches.append((path.stem, path, payload))
    return benches


def load_ledger(path: PathLike) -> List[Dict[str, Any]]:
    """Read the ledger, tolerating a torn final line and absence."""
    entries: List[Dict[str, Any]] = []
    try:
        text = pathlib.Path(path).read_text(encoding="utf-8")
    except OSError:
        return entries
    for raw in text.splitlines():
        raw = raw.strip()
        if not raw:
            continue
        try:
            entry = json.loads(raw)
        except ValueError:
            continue
        if isinstance(entry, dict) and "bench" in entry:
            entries.append(entry)
    return entries


def ingest(
    results_dir: PathLike, ledger_path: Optional[PathLike] = None
) -> Tuple[int, List[Dict[str, Any]]]:
    """Append one ledger entry per bench whose content changed.

    Returns ``(entries_appended, full_ledger_after)``.  Idempotent:
    a bench whose digest matches its latest ledger entry is skipped.
    """
    results_dir = pathlib.Path(results_dir)
    ledger_path = (
        pathlib.Path(ledger_path)
        if ledger_path is not None
        else results_dir / LEDGER_NAME
    )
    ledger = load_ledger(ledger_path)
    latest_digest = {
        entry["bench"]: entry.get("digest") for entry in ledger
    }
    fresh: List[Dict[str, Any]] = []
    for bench, path, payload in load_bench_files(results_dir):
        digest = bench_digest(payload)
        if latest_digest.get(bench) == digest:
            continue
        fresh.append(
            {
                "bench": bench,
                "digest": digest,
                "source": path.name,
                "metrics": flatten_metrics(payload),
            }
        )
    if fresh:
        ledger_path.parent.mkdir(parents=True, exist_ok=True)
        with open(ledger_path, "a", encoding="utf-8") as handle:
            for entry in fresh:
                append_line(handle, json.dumps(entry, sort_keys=True))
        ledger.extend(fresh)
    return len(fresh), ledger


def _by_bench(
    ledger: List[Dict[str, Any]],
) -> Dict[str, List[Dict[str, Any]]]:
    grouped: Dict[str, List[Dict[str, Any]]] = {}
    for entry in ledger:
        grouped.setdefault(str(entry["bench"]), []).append(entry)
    return grouped


def trend_rows(
    ledger: List[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """One row per (bench, metric): latest value, previous value, and
    relative delta — the table ``repro trend`` renders."""
    rows: List[Dict[str, Any]] = []
    for bench, entries in sorted(_by_bench(ledger).items()):
        latest = entries[-1].get("metrics", {})
        previous = entries[-2].get("metrics", {}) if len(entries) > 1 else {}
        for metric in sorted(latest):
            value = latest[metric]
            row: Dict[str, Any] = {
                "bench": bench,
                "metric": metric,
                "value": value,
                "entries": len(entries),
            }
            if metric in previous:
                base = previous[metric]
                row["previous"] = base
                if base:
                    row["delta"] = round((value - base) / abs(base), 4)
            rows.append(row)
    return rows


def render_trend(ledger: List[Dict[str, Any]]) -> str:
    """Human-readable trend table (latest entry per bench + deltas)."""
    lines: List[str] = []
    rows = trend_rows(ledger)
    if not rows:
        return "trend ledger is empty — run `repro trend --update`\n"
    width = max(len(f"{row['bench']}.{row['metric']}") for row in rows)
    current = None
    for row in rows:
        if row["bench"] != current:
            current = row["bench"]
            lines.append(f"{current}  (entries: {row['entries']})")
        label = f"{row['bench']}.{row['metric']}".ljust(width)
        delta = ""
        if "delta" in row:
            delta = f"  {row['delta']:+.1%} vs previous"
        lines.append(f"  {label}  {row['value']:>14g}{delta}")
    return "\n".join(lines) + "\n"


def is_throughput_metric(name: str) -> bool:
    lowered = name.lower()
    return any(tag in lowered for tag in _HIGHER_IS_BETTER)


def check_regressions(
    results_dir: PathLike,
    ledger_path: Optional[PathLike] = None,
    threshold: float = 0.2,
) -> List[str]:
    """Compare current bench files against their ledger baselines.

    The baseline for a bench is its most recent ledger entry whose
    digest differs from the current file (so a freshly ingested,
    unchanged state compares against the *previous* observation, not
    itself).  Returns one message per higher-is-better metric that
    dropped more than ``threshold``; empty means the gate passes.
    """
    results_dir = pathlib.Path(results_dir)
    ledger_path = (
        pathlib.Path(ledger_path)
        if ledger_path is not None
        else results_dir / LEDGER_NAME
    )
    grouped = _by_bench(load_ledger(ledger_path))
    regressions: List[str] = []
    for bench, _path, payload in load_bench_files(results_dir):
        digest = bench_digest(payload)
        history = grouped.get(bench, [])
        baseline: Optional[Dict[str, Any]] = None
        for entry in reversed(history):
            if entry.get("digest") != digest:
                baseline = entry
                break
        if baseline is None:
            continue  # nothing older to regress against
        current = flatten_metrics(payload)
        base_metrics = baseline.get("metrics", {})
        for metric in sorted(current):
            if not is_throughput_metric(metric):
                continue
            base = base_metrics.get(metric)
            if not base or base <= 0:
                continue
            floor = base * (1.0 - threshold)
            if current[metric] < floor:
                drop = (base - current[metric]) / base
                regressions.append(
                    f"{bench}.{metric}: {current[metric]:g} is "
                    f"{drop:.1%} below baseline {base:g} "
                    f"(threshold {threshold:.0%})"
                )
    return regressions
