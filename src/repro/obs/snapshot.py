"""Metric-snapshot files: deterministic JSONL plus text expositions.

A snapshot file is a JSON-lines artifact — one self-describing dict per
line (``kind`` tells a reader what it is looking at), written atomically
via :func:`repro.durable.atomic_io.atomic_write` with sorted keys so
reruns with the same seeds produce byte-identical files (the property
the CI obs job pins with ``cmp``).  Wall-clock quantities never enter a
snapshot (lint rule ``RPD204``); span durations go to the separate
Chrome-trace dump (:mod:`repro.obs.spans`).

Line kinds the CLI writes:

* ``{"kind": "cell", "spec": ..., "seed": ..., "metrics": {...}}`` —
  one chaos-campaign cell's :func:`~repro.obs.paper.paper_metrics`;
* ``{"kind": "aggregate", "metrics": {...}}`` — the campaign-wide
  :func:`~repro.obs.paper.merge_paper_metrics` roll-up;
* ``{"kind": "experiment", "id": "E4", "metrics": {...}}`` — one
  experiment's exported observability block (``repro run --metrics``);
* ``{"kind": "run", "label": ..., ...}`` — one sanitize cell summary.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Sequence, Union

from repro.durable.atomic_io import atomic_write
from repro.errors import ConfigurationError

PathLike = Union[str, pathlib.Path]


def write_snapshot_jsonl(path: PathLike, lines: Sequence[Dict[str, object]]) -> None:
    """Atomically write snapshot lines (sorted keys — deterministic)."""
    text = "".join(json.dumps(line, sort_keys=True) + "\n" for line in lines)
    atomic_write(path, text.encode("utf-8"))


def load_snapshot_jsonl(path: PathLike) -> List[Dict[str, object]]:
    """Read a snapshot file back (blank lines skipped)."""
    path = pathlib.Path(path)
    lines: List[Dict[str, object]] = []
    for number, raw in enumerate(path.read_text().splitlines(), start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"{path}:{number}: not valid JSON ({error})"
            ) from None
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"{path}:{number}: snapshot lines must be JSON objects"
            )
        lines.append(payload)
    return lines


def _flatten(prefix: str, value: object, out: Dict[str, object]) -> None:
    if isinstance(value, bool):
        out[prefix] = int(value)
    elif isinstance(value, (int, float)):
        out[prefix] = value
    elif isinstance(value, dict):
        for key in sorted(value):
            _flatten(f"{prefix}_{key}", value[key], out)
    # lists (histograms, window counts) are handled by the caller


def prometheus_exposition(
    metrics: Dict[str, object], prefix: str = "repro"
) -> str:
    """Render one ``metrics`` dict (a :func:`~repro.obs.paper.
    paper_metrics` / aggregate block) Prometheus-style.

    Scalars become gauges (``_total``-suffixed names become counters);
    a ``tau_histogram`` cumulative-bucket list becomes a histogram
    series.  This is the file-based twin of
    :meth:`~repro.obs.registry.MetricsRegistry.render_prometheus`.
    """
    scalars: Dict[str, object] = {}
    for key in sorted(metrics):
        if key in ("tau_histogram", "window_counts"):
            continue
        _flatten(f"{prefix}_{key}", metrics[key], scalars)
    lines: List[str] = []
    for name in sorted(scalars):
        kind = "counter" if name.endswith("_total") else "gauge"
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name} {scalars[name]}")
    histogram = metrics.get("tau_histogram")
    if histogram:
        name = f"{prefix}_tau_delay"
        lines.append(f"# TYPE {name} histogram")
        count = 0
        for le, cumulative in histogram:
            lines.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
            count = cumulative
        lines.append(f"{name}_count {count}")
    return "\n".join(lines) + "\n"
