"""Consistent-snapshot SGD — what Algorithm 1 deliberately is not.

Replaces Algorithm 1's cheap entry-wise reads with the double-collect
consistent scan of :class:`~repro.shm.versioned.VersionedArray`: every
view is a true snapshot of the model, so the ‖x_t − v_t‖ view error that
drives the paper's analysis vanishes.  The costs, measured in the A2
ablation:

* every scan is ≥ 3d steps instead of d, plus 3d per retry;
* retries grow with contention (each concurrent update invalidates the
  collect), so the step overhead *increases* with n;
* the scan is only obstruction-free — an adversary interleaving one
  update into every collect starves the scanner, which is why the
  program takes a ``max_scan_retries`` fallback (after which it proceeds
  with the inconsistent collect, i.e. degrades to Algorithm 1 behaviour).

Updates go through the seqlock update protocol (version to odd, value
fetch&add, version to even), so writers cost 3 steps per non-zero
component — part of the price the ablation measures.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.results import LockFreeRunResult, accumulator_trajectory
from repro.errors import ConfigurationError
from repro.objectives.base import Objective
from repro.runtime.events import IterationRecord
from repro.runtime.program import Program, ThreadContext
from repro.runtime.simulator import Simulator
from repro.shm.counter import AtomicCounter
from repro.shm.memory import SharedMemory
from repro.shm.versioned import VersionedArray


class SnapshotSGDProgram(Program):
    """One thread's consistent-snapshot SGD loop.

    Args:
        model: The shared :class:`VersionedArray`.
        counter: Shared iteration counter C.
        objective: Function/oracle to minimize.
        step_size: Learning rate α.
        max_iterations: Global budget T.
        max_scan_retries: Double-collect retry budget before falling back
            to the (possibly inconsistent) last collect; ``-1`` retries
            forever (can be starved by an adversary — use only under fair
            schedulers).
        record_iterations: Emit IterationRecords (their ``sample`` field
            carries ``(oracle_sample, scan_consistent, scan_retries)``).
    """

    def __init__(
        self,
        model: VersionedArray,
        counter: AtomicCounter,
        objective: Objective,
        step_size: float,
        max_iterations: int,
        max_scan_retries: int = 8,
        record_iterations: bool = True,
    ) -> None:
        if step_size <= 0:
            raise ConfigurationError(f"step_size must be > 0, got {step_size}")
        if model.length != objective.dim:
            raise ConfigurationError(
                f"model has {model.length} entries but objective.dim is "
                f"{objective.dim}"
            )
        self.model = model
        self.counter = counter
        self.objective = objective
        self.step_size = step_size
        self.max_iterations = max_iterations
        self.max_scan_retries = max_scan_retries
        self.record_iterations = record_iterations

    def run(self, ctx: ThreadContext):
        dim = self.model.length
        iterations_done = 0
        total_retries = 0
        inconsistent_fallbacks = 0
        ctx.annotate("iterations_done", 0)

        while True:
            ctx.annotate("phase", "start")
            claimed = yield self.counter.increment_op()
            if claimed >= self.max_iterations:
                break
            start_time = ctx.now - 1

            ctx.annotate("phase", "read")
            read_start = ctx.now
            view, consistent, retries = yield from self.model.scan_ops(
                self.max_scan_retries
            )
            read_end = ctx.now - 1
            total_retries += retries
            if not consistent:
                inconsistent_fallbacks += 1

            gradient, sample = self.objective.stochastic_gradient(view, ctx.rng)
            ctx.annotate("pending_gradient", gradient)
            ctx.annotate("view", view)

            ctx.annotate("phase", "update")
            applied: List[bool] = [False] * dim
            update_times: List[Optional[int]] = [None] * dim
            first_update: Optional[int] = None
            last_time = read_end
            for j in range(dim):
                if gradient[j] == 0.0:
                    continue
                yield from self.model.update_ops(
                    j, -self.step_size * gradient[j]
                )
                op_time = ctx.now - 1  # time of the version bump
                if first_update is None:
                    first_update = op_time
                last_time = op_time
                applied[j] = True
                update_times[j] = op_time

            iterations_done += 1
            ctx.annotate("iterations_done", iterations_done)
            ctx.annotate("pending_gradient", None)
            if self.record_iterations:
                ctx.emit(
                    IterationRecord(
                        time=last_time,
                        thread_id=ctx.thread_id,
                        index=int(claimed),
                        start_time=start_time,
                        read_start_time=read_start,
                        read_end_time=read_end,
                        first_update_time=first_update,
                        end_time=last_time,
                        view=view,
                        gradient=gradient,
                        applied=applied,
                        update_times=update_times,
                        step_size=self.step_size,
                        sample=(sample, consistent, retries),
                    )
                )

        ctx.annotate("phase", "done")
        return {
            "iterations": iterations_done,
            "accumulator": np.zeros(dim),
            "scan_retries": total_retries,
            "inconsistent_fallbacks": inconsistent_fallbacks,
        }


def run_snapshot_sgd(
    objective: Objective,
    scheduler,
    num_threads: int,
    step_size: float,
    iterations: int,
    x0: Optional[np.ndarray] = None,
    seed: int = 0,
    epsilon: Optional[float] = None,
    max_scan_retries: int = 8,
) -> LockFreeRunResult:
    """Driver mirroring :func:`repro.core.epoch_sgd.run_lock_free_sgd`
    but with a versioned model and consistent scans.

    Returns a :class:`LockFreeRunResult`; per-thread scan statistics are
    summed into ``thread_iterations``-style access via the simulator
    results (see the A2 ablation driver for usage).
    """
    if num_threads < 1:
        raise ConfigurationError(f"num_threads must be >= 1, got {num_threads}")
    memory = SharedMemory(record_log=False)
    model = VersionedArray(memory, objective.dim, name="model")
    initial = (
        np.zeros(objective.dim) if x0 is None else np.asarray(x0, dtype=float).copy()
    )
    model.load(initial)
    counter = AtomicCounter.allocate(memory, name="iteration_counter")
    sim = Simulator(memory, scheduler, seed=seed)
    for thread_index in range(num_threads):
        sim.spawn(
            SnapshotSGDProgram(
                model=model,
                counter=counter,
                objective=objective,
                step_size=step_size,
                max_iterations=iterations,
                max_scan_retries=max_scan_retries,
            ),
            name=f"snapshot-worker-{thread_index}",
        )
    sim.run_fast()

    records = sorted(
        (e for e in sim.trace if isinstance(e, IterationRecord)),
        key=lambda r: r.order_time,
    )
    trajectory = accumulator_trajectory(initial, records)
    distances = np.linalg.norm(trajectory - objective.x_star, axis=1)
    hit_time: Optional[int] = None
    if epsilon is not None:
        hits = np.nonzero(distances**2 <= epsilon)[0]
        if hits.size:
            hit_time = int(hits[0])
    result = LockFreeRunResult(
        x_final=model.snapshot(),
        x0=initial,
        records=records,
        distances=distances,
        hit_time=hit_time,
        epsilon=epsilon,
        sim_steps=sim.now,
        thread_iterations={
            tid: payload["iterations"] for tid, payload in sim.results().items()
        },
        thread_steps={t.thread_id: t.steps_taken for t in sim.threads},
    )
    # Stash scan statistics for the ablation (duck-typed extras).
    result.scan_retries = sum(  # type: ignore[attr-defined]
        payload["scan_retries"] for payload in sim.results().values()
    )
    result.inconsistent_fallbacks = sum(  # type: ignore[attr-defined]
        payload["inconsistent_fallbacks"] for payload in sim.results().values()
    )
    return result
