"""Momentum SGD — the Section-8 alternative mitigation.

The paper's discussion notes that instead of decreasing the step size,
one could "introduce a 'momentum' term by which the current model value
is multiplied" (citing Mitliagkas et al., *Asynchrony begets momentum*).
This module provides both pieces needed to study that remark:

* :func:`run_momentum_sgd` — the sequential heavy-ball iteration
  x_{t+1} = x_t − α·g̃(x_t) + β·(x_t − x_{t−1}), the reference process;
* :class:`MomentumSGDProgram` — a lock-free variant where each thread
  keeps a *local* momentum buffer over its own gradient history and
  applies the combined update through per-entry fetch&adds (local
  buffers are the standard data-parallel choice — a shared velocity
  would need its own synchronization story);
* :func:`fit_implicit_momentum` — the "asynchrony begets momentum"
  measurement: given a trajectory of plain asynchronous SGD, fit the β
  of the sequential momentum process that best explains it.  Mitliagkas
  et al. show asynchrony acts like momentum β ≈ expected staleness
  fraction; the E9 experiment reproduces that shape on our simulator.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.algorithm import Algorithm, AlgorithmSetup, register_algorithm
from repro.core.results import SequentialRunResult
from repro.errors import ConfigurationError
from repro.objectives.base import Objective
from repro.runtime.events import IterationRecord
from repro.runtime.program import Program, ThreadContext
from repro.runtime.rng import RngStream
from repro.shm.array import AtomicArray
from repro.shm.counter import AtomicCounter


def run_momentum_sgd(
    objective: Objective,
    alpha: float,
    momentum: float,
    iterations: int,
    x0: Optional[np.ndarray] = None,
    seed: int = 0,
    epsilon: Optional[float] = None,
) -> SequentialRunResult:
    """Sequential heavy-ball SGD.

    x_{t+1} = x_t − α·g̃(x_t) + β·(x_t − x_{t−1}), with x_{−1} = x_0.

    Args:
        objective: Function/oracle to minimize.
        alpha: Step size α > 0.
        momentum: β ∈ [0, 1).
        iterations: Number of iterations T.
        x0: Starting point (defaults to the origin).
        seed: Oracle stream seed.
        epsilon: Optional success radius² for hitting-time accounting.
    """
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be > 0, got {alpha}")
    if not 0.0 <= momentum < 1.0:
        raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
    if iterations < 0:
        raise ConfigurationError(f"iterations must be >= 0, got {iterations}")

    rng = RngStream.root(seed)
    x = (
        np.zeros(objective.dim)
        if x0 is None
        else np.asarray(x0, dtype=float).copy()
    )
    previous = x.copy()
    distances = [objective.distance_to_opt(x)]
    hit_time: Optional[int] = None
    if epsilon is not None and distances[0] ** 2 <= epsilon:
        hit_time = 0

    for t in range(1, iterations + 1):
        gradient, _ = objective.stochastic_gradient(x, rng)
        x_next = x - alpha * gradient + momentum * (x - previous)
        previous, x = x, x_next
        distance = objective.distance_to_opt(x)
        distances.append(distance)
        if epsilon is not None and hit_time is None and distance**2 <= epsilon:
            hit_time = t

    return SequentialRunResult(
        x_final=x,
        distances=np.array(distances),
        hit_time=hit_time,
        epsilon=epsilon,
        iterations=iterations,
    )


class MomentumSGDProgram(Program):
    """Lock-free SGD with a thread-local momentum (velocity) buffer.

    Each thread maintains v ← β·v + g̃(view) over *its own* iterations and
    applies −α·v through per-entry fetch&adds.  Records carry the applied
    velocity as their ``gradient`` so the accumulator trajectory stays
    exact.

    Args:
        model: Shared model X.
        counter: Shared iteration counter C.
        objective: Function/oracle to minimize.
        step_size: α.
        momentum: β ∈ [0, 1).
        max_iterations: Global budget T.
        record_iterations: Emit IterationRecords.
    """

    def __init__(
        self,
        model: AtomicArray,
        counter: AtomicCounter,
        objective: Objective,
        step_size: float,
        momentum: float,
        max_iterations: int,
        record_iterations: bool = True,
    ) -> None:
        if step_size <= 0:
            raise ConfigurationError(f"step_size must be > 0, got {step_size}")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.model = model
        self.counter = counter
        self.objective = objective
        self.step_size = step_size
        self.momentum = momentum
        self.max_iterations = max_iterations
        self.record_iterations = record_iterations

    def run(self, ctx: ThreadContext):
        dim = self.model.length
        velocity = np.zeros(dim)
        iterations_done = 0
        ctx.annotate("iterations_done", 0)

        while True:
            ctx.annotate("phase", "start")
            claimed = yield self.counter.increment_op()
            if claimed >= self.max_iterations:
                break
            start_time = ctx.now - 1

            ctx.annotate("phase", "read")
            view = np.empty(dim)
            read_start = -1
            for j in range(dim):
                view[j] = yield self.model.read_op(j)
                if j == 0:
                    read_start = ctx.now - 1
            read_end = ctx.now - 1

            gradient, sample = self.objective.stochastic_gradient(view, ctx.rng)
            velocity = self.momentum * velocity + gradient
            ctx.annotate("pending_gradient", velocity)

            ctx.annotate("phase", "update")
            applied = [False] * dim
            update_times: list = [None] * dim
            first_update = None
            last_time = read_end
            for j in range(dim):
                if velocity[j] == 0.0:
                    continue
                yield self.model.fetch_add_op(j, -self.step_size * velocity[j])
                op_time = ctx.now - 1
                if first_update is None:
                    first_update = op_time
                last_time = op_time
                applied[j] = True
                update_times[j] = op_time

            iterations_done += 1
            ctx.annotate("iterations_done", iterations_done)
            ctx.annotate("pending_gradient", None)
            if self.record_iterations:
                ctx.emit(
                    IterationRecord(
                        time=last_time,
                        thread_id=ctx.thread_id,
                        index=int(claimed),
                        start_time=start_time,
                        read_start_time=read_start,
                        read_end_time=read_end,
                        first_update_time=first_update,
                        end_time=last_time,
                        view=view,
                        gradient=velocity.copy(),
                        applied=applied,
                        update_times=update_times,
                        step_size=self.step_size,
                        sample=sample,
                    )
                )

        ctx.annotate("phase", "done")
        return {"iterations": iterations_done, "accumulator": np.zeros(dim)}


@register_algorithm
class MomentumAlgorithm(Algorithm):
    """Heavy-ball on the zoo seam: thread-local velocity buffers applied
    via fetch&add.  Iteration length stays bounded, so all three lemma
    certificates apply (the velocity changes values, not structure)."""

    name = "momentum"
    title = "Momentum: thread-local heavy-ball over lock-free fetch&add"

    def __init__(self, momentum: float = 0.5) -> None:
        self.momentum = momentum

    def build(self, setup: AlgorithmSetup):
        return [
            MomentumSGDProgram(
                model=setup.model,
                counter=setup.counter,
                objective=setup.objective,
                step_size=setup.step_size,
                momentum=self.momentum,
                max_iterations=setup.iterations,
                record_iterations=setup.record_iterations,
            )
            for _ in range(setup.num_threads)
        ]


def fit_implicit_momentum(
    distances: np.ndarray,
    objective: Objective,
    alpha: float,
    iterations: int,
    x0: np.ndarray,
    betas: Optional[np.ndarray] = None,
    seeds: int = 5,
    base_seed: int = 0,
) -> float:
    """Fit the β whose *sequential momentum* trajectory best matches an
    observed distance trajectory — the "asynchrony begets momentum" probe.

    For each candidate β, run ``seeds`` sequential momentum trajectories,
    average their log-distance curves, and score against the observed
    curve (L2 on log-distances, truncated to the shorter length).
    Returns the best β.
    """
    if betas is None:
        betas = np.linspace(0.0, 0.9, 10)
    observed = np.log(np.maximum(np.asarray(distances, dtype=float), 1e-12))
    best_beta, best_score = 0.0, np.inf
    for beta in betas:
        curves = []
        for offset in range(seeds):
            run = run_momentum_sgd(
                objective, alpha, float(beta), iterations, x0=x0,
                seed=base_seed + offset,
            )
            curves.append(np.log(np.maximum(run.distances, 1e-12)))
        mean_curve = np.mean(curves, axis=0)
        length = min(len(mean_curve), len(observed))
        score = float(np.mean((mean_curve[:length] - observed[:length]) ** 2))
        if score < best_score:
            best_score, best_beta = score, float(beta)
    return best_beta
