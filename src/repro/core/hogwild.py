"""Hogwild-style lock-free SGD (Niu et al., 2011) — the historical baseline.

Hogwild is exactly Algorithm 1 with a constant learning rate and no
epoch machinery: threads read and fetch&add the shared model with no
synchronization whatsoever.  It is the algorithm Theorem 5.1's lower
bound bites: with its fixed α, an adversary delaying gradients by
τ ≈ log(α/2)/log(1−α) slows convergence by Ω(τ), whereas Algorithm 2's
decreasing rate escapes the attack.

Implementation-wise this is :class:`~repro.core.epoch_sgd.EpochSGDProgram`
with guards and epochs pinned off; the subclass exists so experiment
configurations and traces name the baseline explicitly.
"""

from __future__ import annotations

from repro.core.algorithm import Algorithm, AlgorithmSetup, register_algorithm
from repro.core.epoch_sgd import EpochSGDProgram
from repro.objectives.base import Objective
from repro.shm.array import AtomicArray
from repro.shm.counter import AtomicCounter


class HogwildProgram(EpochSGDProgram):
    """Plain Hogwild: constant α, no epoch guard, no accumulation.

    Args:
        model: Shared model X.
        counter: Shared iteration counter C.
        objective: Function/oracle to minimize.
        step_size: The fixed learning rate α.
        max_iterations: Global iteration budget T.
        record_iterations: Emit per-iteration records (default True).
    """

    def __init__(
        self,
        model: AtomicArray,
        counter: AtomicCounter,
        objective: Objective,
        step_size: float,
        max_iterations: int,
        record_iterations: bool = True,
    ) -> None:
        super().__init__(
            model=model,
            counter=counter,
            objective=objective,
            step_size=step_size,
            max_iterations=max_iterations,
            epoch=0,
            guard=None,
            accumulate=False,
            record_iterations=record_iterations,
            use_write=False,
        )


@register_algorithm
class HogwildAlgorithm(Algorithm):
    """Hogwild on the zoo seam: unsynchronized per-coordinate updates
    with a fixed α.  Structurally identical to Algorithm 1 (bounded
    iteration length), so all three lemma certificates apply — the
    difference Theorem 5.1 exposes is the *rate*, not the structure."""

    name = "hogwild"
    title = "Hogwild!: unsynchronized constant-rate lock-free SGD"

    def build(self, setup: AlgorithmSetup):
        return [
            HogwildProgram(
                model=setup.model,
                counter=setup.counter,
                objective=setup.objective,
                step_size=setup.step_size,
                max_iterations=setup.iterations,
                record_iterations=setup.record_iterations,
            )
            for _ in range(setup.num_threads)
        ]
