"""Result records returned by the SGD drivers.

Both sequential and lock-free runs report the same core quantities — the
distance-to-optimum trajectory, the first time the success region
S = {x : ‖x − x*‖² ≤ ε} was hit, and the final iterate — so that every
experiment can compare them like-for-like.  Lock-free results additionally
carry the per-iteration :class:`~repro.runtime.events.IterationRecord`
stream that the contention analysis consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.runtime.events import IterationRecord


@dataclass
class SequentialRunResult:
    """Outcome of a sequential SGD run.

    Attributes:
        x_final: The last iterate x_T.
        distances: ‖x_t − x*‖ for t = 0..T (length T+1).
        hit_time: Smallest t with ‖x_t − x*‖² ≤ ε, or ``None`` if the
            success region was never entered (or no ε was given).
        epsilon: The success-region radius² used for ``hit_time``.
        iterations: Number of SGD iterations performed (T).
    """

    x_final: np.ndarray
    distances: np.ndarray
    hit_time: Optional[int]
    epsilon: Optional[float]
    iterations: int

    @property
    def succeeded(self) -> bool:
        """Whether the success region was entered at some t ≤ T."""
        return self.hit_time is not None

    @property
    def final_distance(self) -> float:
        """‖x_T − x*‖."""
        return float(self.distances[-1])


@dataclass
class LockFreeRunResult:
    """Outcome of a lock-free (Algorithm 1 / Hogwild / locked) run.

    Attributes:
        x_final: Snapshot of the shared model X after quiescence.
        x0: The initial model.
        records: Per-iteration records, sorted by the paper's iteration
            order (time of first model update — Lemma 6.1's total order).
        distances: ‖x_t − x*‖ for the accumulator sequence x_t obtained
            by applying iterations' updates in that total order
            (length = #iterations + 1; x_0 first).
        hit_time: Smallest t with ‖x_t − x*‖² ≤ ε in iteration-time, or
            ``None``.
        epsilon: Success radius² used for ``hit_time``.
        sim_steps: Total shared-memory steps the execution consumed.
        thread_iterations: Completed iterations per thread id.
        thread_steps: Shared-memory steps executed per thread id; the
            maximum is the execution's idealized parallel wall-clock
            (critical path), cf. :func:`repro.metrics.trace.
            parallel_speedup`.
    """

    x_final: np.ndarray
    x0: np.ndarray
    records: List[IterationRecord]
    distances: np.ndarray
    hit_time: Optional[int]
    epsilon: Optional[float]
    sim_steps: int
    thread_iterations: dict = field(default_factory=dict)
    thread_steps: dict = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        """Whether the success region was entered at some iteration ≤ T."""
        return self.hit_time is not None

    @property
    def iterations(self) -> int:
        """Total completed iterations across all threads."""
        return len(self.records)

    @property
    def final_distance(self) -> float:
        """‖x_final − x*‖ of the shared model at quiescence."""
        return float(self.distances[-1])


def accumulator_trajectory(
    x0: np.ndarray, records: List[IterationRecord]
) -> np.ndarray:
    """Build the paper's accumulator sequence x_t from iteration records.

    x_t is defined (Section 6.1) as x_0 plus all updates of the first t
    iterations in the total order of first model updates; ``records``
    must already be sorted by :attr:`IterationRecord.order_time`.  Only
    deltas whose fetch&add actually landed are applied (epoch-guarded
    adds can be rejected).

    Returns:
        Array of shape (len(records) + 1, d) whose row t is x_t.
    """
    x0 = np.asarray(x0, dtype=float)
    trajectory = np.empty((len(records) + 1, x0.size))
    trajectory[0] = x0
    current = x0.copy()
    for t, record in enumerate(records, start=1):
        if record.gradient is not None:
            delta = -record.step_size * record.gradient
            if record.applied is not None:
                delta = delta * np.asarray(record.applied, dtype=float)
            current = current + delta
        trajectory[t] = current
    return trajectory
