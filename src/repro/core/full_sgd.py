"""Algorithm 2 — FullSGD: epoch doubling with guaranteed convergence.

Algorithm 1 eventually *visits* the success region, but adversarial stale
updates can push the model back out.  Algorithm 2 fixes this by running a
series of epochs of T iterations each, halving the learning rate between
epochs, and — critically — requiring that "a gradient update can only be
applied to X in the same epoch when it was generated".  We enforce that
isolation the way the paper suggests: a shared epoch counter, with every
model update conditioned on it via a double-compare-single-swap-style
guarded fetch&add.  A stale cross-epoch gradient finds the counter moved
on and is discarded.

Epoch accounting is lock-free too: the global iteration counter C keeps
counting across epochs, iteration ``c`` belongs to epoch ``c // T``, and
threads ratchet the epoch register forward with CAS when they claim an
iteration of a later epoch.  Threads never block; a thread holding an
iteration of an already-passed epoch simply has its updates rejected by
the guard.

In the final epoch threads additionally accumulate their generated
updates locally (the paper's ``Acc[i]``); the result ``r`` is the shared
model at quiescence, and the accumulators are returned for inspection
(Corollary 7.1's proof bounds the gap between the two by α·n·M).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.algorithm import Algorithm, AlgorithmSetup, register_algorithm
from repro.core.epoch_sgd import collect_iteration_records, sgd_iteration_body
from repro.core.results import accumulator_trajectory
from repro.core.schedules import EpochHalvingRate, LearningRateSchedule
from repro.errors import ConfigurationError
from repro.objectives.base import Objective
from repro.runtime.events import EpochEvent, IterationRecord
from repro.runtime.program import Program, ThreadContext
from repro.runtime.simulator import Simulator
from repro.shm.array import AtomicArray
from repro.shm.counter import AtomicCounter
from repro.shm.memory import SharedMemory
from repro.shm.register import AtomicRegister


def recommended_num_epochs(
    alpha0: float, gradient_bound: float, num_threads: int, epsilon: float
) -> int:
    """The epoch count Algorithm 2 prescribes: ``log(α·2·M·n/√ε)``
    halving epochs plus the final accumulation epoch.

    Derived from the Corollary 7.1 proof: the final epoch must satisfy
    α_final·n·M ≤ √ε/2, and halving from α₀ needs
    ⌈log₂(2·α₀·n·M/√ε)⌉ epochs to get there.
    """
    if alpha0 <= 0 or gradient_bound <= 0 or num_threads < 1 or epsilon <= 0:
        raise ConfigurationError(
            "alpha0, gradient_bound, epsilon must be > 0 and num_threads >= 1"
        )
    target = 2.0 * alpha0 * gradient_bound * num_threads / math.sqrt(epsilon)
    halvings = max(0, math.ceil(math.log2(max(target, 1.0))))
    return halvings + 1


class FullSGDThreadProgram(Program):
    """One thread's Algorithm-2 loop.

    Args:
        model: Shared model X.
        counter: Global iteration counter C (counts across epochs).
        epoch_register: Shared epoch counter guarding every update.
        objective: Function/oracle to minimize.
        schedule: Epoch -> α map (Algorithm 2 uses halving).
        iterations_per_epoch: T.
        num_epochs: Total epochs including the final accumulation epoch.
        record_iterations: Emit IterationRecords.
        use_guard: ABLATION ONLY — when False, updates are plain
            fetch&adds with no epoch isolation, so stale cross-epoch
            gradients (generated under a larger α) land in later epochs;
            the paper's design forbids exactly this.
    """

    def __init__(
        self,
        model: AtomicArray,
        counter: AtomicCounter,
        epoch_register: AtomicRegister,
        objective: Objective,
        schedule: LearningRateSchedule,
        iterations_per_epoch: int,
        num_epochs: int,
        record_iterations: bool = True,
        use_guard: bool = True,
        use_dcas_loop: bool = False,
    ) -> None:
        if iterations_per_epoch < 1:
            raise ConfigurationError(
                f"iterations_per_epoch must be >= 1, got {iterations_per_epoch}"
            )
        if num_epochs < 1:
            raise ConfigurationError(f"num_epochs must be >= 1, got {num_epochs}")
        self.model = model
        self.counter = counter
        self.epoch_register = epoch_register
        self.objective = objective
        self.schedule = schedule
        self.iterations_per_epoch = iterations_per_epoch
        self.num_epochs = num_epochs
        self.record_iterations = record_iterations
        self.use_guard = use_guard
        self.use_dcas_loop = use_dcas_loop

    def run(self, ctx: ThreadContext):
        accumulator = np.zeros(self.model.length)
        iterations_done = 0
        ctx.annotate("iterations_done", 0)
        final_epoch = self.num_epochs - 1

        while True:
            ctx.annotate("phase", "start")
            claimed = yield self.counter.increment_op()
            epoch = int(claimed) // self.iterations_per_epoch
            if epoch >= self.num_epochs:
                break
            start_time = ctx.now - 1

            # Ratchet the shared epoch register up to this iteration's
            # epoch (lock-free: CAS k -> k+1 until it catches up).  The
            # register is monotone, so every retry round some thread has
            # advanced it — the loop runs at most ``epoch`` rounds.
            while True:  # repro: allow(RPL105)
                current = yield self.epoch_register.read_op()
                if current >= epoch:
                    break
                advanced = yield self.epoch_register.cas_op(
                    float(current), float(current + 1)
                )
                if advanced:
                    ctx.emit(
                        EpochEvent(
                            time=ctx.now - 1,
                            thread_id=ctx.thread_id,
                            epoch=int(current + 1),
                            learning_rate=self.schedule.rate(int(current + 1)),
                            kind="start",
                        )
                    )

            alpha = self.schedule.rate(epoch)
            record = yield from sgd_iteration_body(
                ctx,
                self.model,
                self.objective,
                alpha,
                int(claimed),
                epoch,
                start_time=start_time,
                guard=self.epoch_register if self.use_guard else None,
                guard_value=float(epoch),
                use_dcas_loop=self.use_dcas_loop,
            )
            if epoch == final_epoch:
                accumulator -= alpha * record.gradient
            iterations_done += 1
            ctx.annotate("iterations_done", iterations_done)
            if self.record_iterations:
                ctx.emit(record)

        ctx.annotate("phase", "done")
        return {"iterations": iterations_done, "accumulator": accumulator}


@register_algorithm
class FullSGDAlgorithm(Algorithm):
    """Algorithm 2 on the zoo seam: the global budget is split into
    ``num_epochs`` halving-rate epochs, updates epoch-guarded through
    the shared epoch register the adapter allocates.  Guarded fetch&adds
    keep iteration length bounded, so all three lemma certificates
    apply (rejected stale updates still order by their first attempt)."""

    name = "full-sgd"
    title = "Algorithm 2: epoch-halving SGD with epoch-guarded updates"

    def __init__(self, num_epochs: int = 2) -> None:
        if num_epochs < 1:
            raise ConfigurationError(
                f"num_epochs must be >= 1, got {num_epochs}"
            )
        self.num_epochs = num_epochs

    def build(self, setup: AlgorithmSetup):
        epoch_slot = setup.memory.allocate(1, name="zoo_epoch", initial=0.0)
        epoch_register = AtomicRegister(setup.memory, epoch_slot)
        schedule = EpochHalvingRate(setup.step_size)
        iterations_per_epoch = max(1, setup.iterations // self.num_epochs)
        return [
            FullSGDThreadProgram(
                model=setup.model,
                counter=setup.counter,
                epoch_register=epoch_register,
                objective=setup.objective,
                schedule=schedule,
                iterations_per_epoch=iterations_per_epoch,
                num_epochs=self.num_epochs,
                record_iterations=setup.record_iterations,
            )
            for _ in range(setup.num_threads)
        ]


@dataclass
class FullSGDResult:
    """Outcome of a FullSGD (Algorithm 2) run.

    Attributes:
        r: The returned minimizer estimate (shared model at quiescence).
        x0: Initial model.
        distance: ‖r − x*‖.
        epsilon: The target ε the run was configured for.
        num_epochs: Epochs executed (including the accumulation epoch).
        step_sizes: α per epoch.
        records: All iteration records in the first-update total order.
        distances: Accumulator-trajectory distances ‖x_t − x*‖ (only
            counting updates that landed; rejected stale updates excluded).
        rejected_updates: Number of gradient components discarded by the
            epoch guard over the whole run.
        accumulators: Final-epoch local accumulators Acc[i] per thread.
        sim_steps: Shared-memory steps consumed.
    """

    r: np.ndarray
    x0: np.ndarray
    distance: float
    epsilon: float
    num_epochs: int
    step_sizes: List[float]
    records: List[IterationRecord]
    distances: np.ndarray
    rejected_updates: int
    accumulators: Dict[int, np.ndarray]
    sim_steps: int

    @property
    def achieved_target(self) -> bool:
        """Whether ‖r − x*‖² ≤ ε."""
        return self.distance**2 <= self.epsilon

    @property
    def total_iterations(self) -> int:
        return len(self.records)


class FullSGD:
    """Driver for Algorithm 2.

    Args:
        objective: Function/oracle to minimize.
        num_threads: n.
        epsilon: Target: E‖r − x*‖ within √ε of the optimum
            (success region of radius² ε).
        alpha0: Initial learning rate α₀.
        iterations_per_epoch: T (per the paper, chosen so one epoch
            succeeds with good probability — see
            :func:`repro.theory.bounds.corollary_6_7_failure_bound`).
        num_epochs: Override the epoch count; default
            :func:`recommended_num_epochs` with M from the objective.
        x0: Initial model (defaults to the origin).

    Usage::

        driver = FullSGD(objective, num_threads=4, epsilon=0.01,
                         alpha0=0.05, iterations_per_epoch=400)
        result = driver.run(RandomScheduler(seed=1), seed=1)
    """

    def __init__(
        self,
        objective: Objective,
        num_threads: int,
        epsilon: float,
        alpha0: float,
        iterations_per_epoch: int,
        num_epochs: Optional[int] = None,
        x0: Optional[np.ndarray] = None,
        use_guard: bool = True,
        use_dcas_loop: bool = False,
    ) -> None:
        if num_threads < 1:
            raise ConfigurationError(f"num_threads must be >= 1, got {num_threads}")
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be > 0, got {epsilon}")
        self.objective = objective
        self.num_threads = num_threads
        self.epsilon = epsilon
        self.alpha0 = alpha0
        self.iterations_per_epoch = iterations_per_epoch
        self.x0 = (
            np.zeros(objective.dim)
            if x0 is None
            else np.asarray(x0, dtype=float).copy()
        )
        if num_epochs is None:
            radius = max(1.0, 2.0 * objective.distance_to_opt(self.x0))
            gradient_bound = math.sqrt(objective.second_moment_bound(radius))
            num_epochs = recommended_num_epochs(
                alpha0, gradient_bound, num_threads, epsilon
            )
        self.num_epochs = num_epochs
        self.schedule = EpochHalvingRate(alpha0)
        self.use_guard = use_guard
        self.use_dcas_loop = use_dcas_loop

    def run(
        self,
        scheduler,
        seed: int = 0,
        analyzers: Sequence = (),
        checkpoint_hook: Optional[Callable] = None,
        checkpoint_chunk: int = 256,
        metrics=None,
    ) -> FullSGDResult:
        """Execute all epochs under ``scheduler`` and return the result.

        ``analyzers`` optionally attaches
        :class:`repro.analysis.sanitizer.Analyzer` instances: the memory
        log is switched on and the run is driven through
        :meth:`Simulator.run_analyzed` (same schedule, same result).

        ``checkpoint_hook(epoch, checkpoint)`` makes the run durable:
        the scheduler is wrapped in a :class:`~repro.sched.replay.
        RecordingScheduler` (so every cut carries its decision prefix),
        execution proceeds in ``checkpoint_chunk``-step chunks, and
        whenever a chunk boundary reveals the shared epoch register has
        advanced, the hook receives a :class:`~repro.durable.checkpoint.
        Checkpoint` of the cut — restorable via prefix replay, with the
        replay itself certifying determinism.  Chunking and recording
        are invisible to programs: the schedule, memory effects and
        result are identical to an unhooked run.

        ``metrics`` optionally attaches a
        :class:`repro.obs.registry.MetricsRegistry` (simulator bulk
        counters, an epochs-completed gauge, and the run's paper-aligned
        snapshot at the end); the whole run executes under a
        ``full_sgd.run`` span when a
        :class:`repro.obs.spans.SpanRecorder` is active.
        """
        if checkpoint_chunk < 1:
            raise ConfigurationError(
                f"checkpoint_chunk must be >= 1, got {checkpoint_chunk}"
            )
        if checkpoint_hook is not None:
            from repro.sched.replay import RecordingScheduler

            scheduler = RecordingScheduler(scheduler)
        memory = SharedMemory(record_log=bool(analyzers))
        model = AtomicArray.allocate(memory, self.objective.dim, name="model")
        model.load(self.x0)
        counter = AtomicCounter.allocate(memory, name="iteration_counter")
        epoch_slot = memory.allocate(1, name="epoch", initial=0.0)
        epoch_register = AtomicRegister(memory, epoch_slot)
        sim = Simulator(memory, scheduler, seed=seed)
        if metrics is not None:
            sim.attach_metrics(metrics)
        for thread_index in range(self.num_threads):
            sim.spawn(
                FullSGDThreadProgram(
                    model=model,
                    counter=counter,
                    epoch_register=epoch_register,
                    objective=self.objective,
                    schedule=self.schedule,
                    iterations_per_epoch=self.iterations_per_epoch,
                    num_epochs=self.num_epochs,
                    use_guard=self.use_guard,
                    use_dcas_loop=self.use_dcas_loop,
                ),
                name=f"worker-{thread_index}",
            )
        for analyzer in analyzers:
            sim.attach_analyzer(analyzer)
        from repro.obs.spans import trace_span

        with trace_span(
            "full_sgd.run", threads=self.num_threads, epochs=self.num_epochs
        ):
            if checkpoint_hook is None:
                sim.run_analyzed()
            else:
                self._run_checkpointed(
                    sim, epoch_slot, checkpoint_hook, checkpoint_chunk
                )
        result = self._assemble_result(sim, model)
        if sim.metrics is not None:
            sim.metrics.gauge(
                "repro_sgd_epochs_total", "epochs completed by the run"
            ).set(result.num_epochs)
            if result.records:
                from repro.obs.paper import paper_metrics, publish_paper_metrics

                publish_paper_metrics(
                    sim.metrics,
                    paper_metrics(result.records, num_threads=self.num_threads),
                )
        return result

    def _run_checkpointed(
        self, sim, epoch_slot: int, hook: Callable, chunk: int
    ) -> None:
        """Chunked drive loop firing ``hook`` at epoch-advance cuts.

        A chunk boundary is the only place the engine is paused, so cuts
        are consistent by construction; the hook fires when the shared
        epoch register advanced during the last chunk (once per epoch
        observed, even if several epochs elapsed inside one chunk).
        """
        from repro.durable.checkpoint import Checkpoint
        from repro.obs.spans import trace_span

        last_epoch = int(sim.memory.peek(epoch_slot))
        while sim.runnable_count:
            sim.run_fast(max_steps=chunk)
            for analyzer in sim._analyzers:
                analyzer.drain(sim)
            epoch = int(sim.memory.peek(epoch_slot))
            if epoch > last_epoch:
                last_epoch = epoch
                with trace_span("full_sgd.checkpoint", epoch=epoch):
                    hook(epoch, Checkpoint.capture(sim, label=f"epoch-{epoch}"))
        for analyzer in sim._analyzers:
            analyzer.finish(sim)

    def _assemble_result(self, sim, model) -> FullSGDResult:
        """Collect the run's records, trajectory and accumulators."""

        records = collect_iteration_records(sim)
        trajectory = accumulator_trajectory(self.x0, records)
        distances = np.linalg.norm(trajectory - self.objective.x_star, axis=1)
        rejected = sum(
            1
            for record in records
            if record.applied is not None and record.gradient is not None
            for j, landed in enumerate(record.applied)
            if not landed and record.gradient[j] != 0.0
        )
        accumulators = {
            tid: result["accumulator"]
            for tid, result in sim.results().items()
            if isinstance(result, dict)
        }
        r = model.snapshot()
        return FullSGDResult(
            r=r,
            x0=self.x0,
            distance=self.objective.distance_to_opt(r),
            epsilon=self.epsilon,
            num_epochs=self.num_epochs,
            step_sizes=[self.schedule.rate(e) for e in range(self.num_epochs)],
            records=records,
            distances=distances,
            rejected_updates=rejected,
            accumulators=accumulators,
            sim_steps=sim.now,
        )
