"""Leashed-style CAS-consistent lock-free SGD (Bäckström et al., 2021).

Algorithm 1 applies gradient components with ``fetch&add``, which always
lands — a delayed thread's stale contribution is merely *added* to
whatever is there.  The consistency-focused family of lock-free SGD
(Leashed-SGD and the ProxASAGA-style ``atomic<double>`` update loops it
generalizes) instead applies each component with a **validate-then-CAS
retry loop**: read the current entry, attempt
``CAS(entry, current, current + δ)``, and retry on failure.  The landed
value is therefore always derived from an entry the thread actually
observed — no blind additive interleaving — at the price of retry steps
that grow with contention.

In the paper's cost model every retry is a scheduled shared-memory step,
so this program makes the consistency/throughput trade-off *measurable*:
under the contention-maximizing adversary the CAS failure count (and
with it the per-iteration step count) inflates, which is exactly why the
paper's Lemma 6.2/6.4 window arguments — premised on iterations of
bounded length — do not transfer to this variant (the zoo report records
them as N/A; Lemma 6.1's total order still applies since iterations are
claimed from the same counter and ordered by first landed CAS).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.algorithm import Algorithm, AlgorithmSetup, register_algorithm
from repro.errors import ConfigurationError
from repro.objectives.base import Objective
from repro.runtime.events import IterationRecord
from repro.runtime.program import Program, ThreadContext
from repro.shm.array import AtomicArray
from repro.shm.counter import AtomicCounter


class LeashedSGDProgram(Program):
    """One thread's CAS-consistent SGD loop.

    One iteration: claim index c via ``C.fetch&add(1)``; read the view
    entry by entry; compute g̃; then for every non-zero component j run
    the validate-then-CAS loop — ``current = read X[j]``;
    ``CAS(X[j], current, current − α·g̃[j])``; retry while the CAS fails
    (each failure costs two further steps: the re-read and the re-CAS).
    ``max_cas_retries`` bounds the loop; on exhaustion the component is
    dropped (recorded as not applied), mirroring Leashed-SGD's bounded
    persistence rather than unbounded obstruction.

    Args:
        model: Shared model X.
        counter: Shared iteration counter C.
        objective: Function/oracle to minimize.
        step_size: Learning rate α.
        max_iterations: Global iteration budget T.
        max_cas_retries: Failed-CAS budget per component before the
            update is dropped (``-1`` retries forever; safe only under
            schedulers that cannot starve a CAS loop).
        record_iterations: Emit IterationRecords (their ``sample`` field
            carries ``(oracle_sample, cas_failures_this_iteration)``).
    """

    def __init__(
        self,
        model: AtomicArray,
        counter: AtomicCounter,
        objective: Objective,
        step_size: float,
        max_iterations: int,
        max_cas_retries: int = 16,
        record_iterations: bool = True,
    ) -> None:
        if step_size <= 0:
            raise ConfigurationError(f"step_size must be > 0, got {step_size}")
        if max_iterations < 0:
            raise ConfigurationError(
                f"max_iterations must be >= 0, got {max_iterations}"
            )
        if model.length != objective.dim:
            raise ConfigurationError(
                f"model has {model.length} entries but objective.dim is "
                f"{objective.dim}"
            )
        self.model = model
        self.counter = counter
        self.objective = objective
        self.step_size = step_size
        self.max_iterations = max_iterations
        self.max_cas_retries = max_cas_retries
        self.record_iterations = record_iterations

    def run(self, ctx: ThreadContext):
        dim = self.model.length
        iterations_done = 0
        total_cas_failures = 0
        dropped_components = 0
        ctx.annotate("iterations_done", 0)

        while True:
            ctx.annotate("phase", "start")
            claimed = yield self.counter.increment_op()
            if claimed >= self.max_iterations:
                break
            start_time = ctx.now - 1

            ctx.annotate("phase", "read")
            view = np.empty(dim)
            read_start = -1
            for j in range(dim):
                view[j] = yield self.model.read_op(j)
                if j == 0:
                    read_start = ctx.now - 1
            read_end = ctx.now - 1

            gradient, sample = self.objective.stochastic_gradient(view, ctx.rng)
            ctx.annotate("pending_gradient", gradient)
            ctx.annotate("view", view)
            ctx.annotate("sample", sample)

            ctx.annotate("phase", "update")
            applied: List[bool] = [False] * dim
            update_times: List[Optional[int]] = [None] * dim
            first_update: Optional[int] = None
            last_time = read_end
            cas_failures = 0
            for j in range(dim):
                component = gradient[j]
                if component == 0.0:
                    continue
                delta = -self.step_size * component
                landed = False
                failures = 0
                while True:
                    current = yield self.model.read_op(j)
                    swapped = yield self.model.register(j).cas_op(
                        current, current + delta
                    )
                    if swapped:
                        landed = True
                        break
                    failures += 1
                    if 0 <= self.max_cas_retries <= failures:
                        break
                cas_failures += failures
                op_time = ctx.now - 1
                if landed:
                    if first_update is None:
                        first_update = op_time
                    applied[j] = True
                    update_times[j] = op_time
                else:
                    dropped_components += 1
                last_time = op_time

            total_cas_failures += cas_failures
            iterations_done += 1
            ctx.annotate("iterations_done", iterations_done)
            ctx.annotate("cas_failures", total_cas_failures)
            ctx.annotate("pending_gradient", None)
            if self.record_iterations:
                ctx.emit(
                    IterationRecord(
                        time=last_time,
                        thread_id=ctx.thread_id,
                        index=int(claimed),
                        start_time=start_time,
                        read_start_time=read_start,
                        read_end_time=read_end,
                        first_update_time=first_update,
                        end_time=last_time,
                        view=view,
                        gradient=gradient,
                        applied=applied,
                        update_times=update_times,
                        step_size=self.step_size,
                        sample=(sample, cas_failures),
                    )
                )

        ctx.annotate("phase", "done")
        return {
            "iterations": iterations_done,
            "accumulator": np.zeros(dim),
            "cas_failures": total_cas_failures,
            "dropped_components": dropped_components,
        }


@register_algorithm
class LeashedAlgorithm(Algorithm):
    """The CAS-consistent variant on the zoo seam.  Retry loops make
    iteration length contention-dependent (unbounded in the worst case),
    so the window lemmas (6.2/6.4) are N/A; 6.1's total order over the
    claimed indices still holds."""

    name = "leashed"
    title = "Leashed: CAS-validated consistent lock-free SGD"
    lemmas = ("6.1",)

    def __init__(self, max_cas_retries: int = 16) -> None:
        self.max_cas_retries = max_cas_retries

    def build(self, setup: AlgorithmSetup):
        return [
            LeashedSGDProgram(
                model=setup.model,
                counter=setup.counter,
                objective=setup.objective,
                step_size=setup.step_size,
                max_iterations=setup.iterations,
                max_cas_retries=self.max_cas_retries,
                record_iterations=setup.record_iterations,
            )
            for _ in range(setup.num_threads)
        ]
