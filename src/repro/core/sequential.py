"""Sequential SGD — Equation (1), the baseline of every comparison.

This is the classic Robbins–Monro iteration run by a single thread with a
consistent view at every step.  It needs no simulator: the semantics of a
serial execution are independent of scheduling.  (Running Algorithm 1
under :class:`~repro.sched.sequential.SequentialScheduler` with one
thread produces the same iterate sequence; a test pins that equivalence.)
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.results import SequentialRunResult
from repro.errors import ConfigurationError
from repro.objectives.base import Objective
from repro.runtime.rng import RngStream


def run_sequential_sgd(
    objective: Objective,
    alpha: float,
    iterations: int,
    x0: Optional[np.ndarray] = None,
    seed: int = 0,
    epsilon: Optional[float] = None,
    stop_on_hit: bool = False,
) -> SequentialRunResult:
    """Run x_{t+1} = x_t − α·g̃(x_t) for ``iterations`` steps.

    Args:
        objective: The function/oracle to minimize.
        alpha: Constant learning rate α.
        iterations: Number of SGD iterations T.
        x0: Starting point (defaults to the origin).
        seed: Seed for the oracle's random stream.
        epsilon: Optional success radius²; enables ``hit_time``.
        stop_on_hit: Stop as soon as the success region is entered
            (useful for hitting-time experiments; requires ``epsilon``).

    Returns:
        A :class:`SequentialRunResult` with the full distance trajectory.
    """
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be > 0, got {alpha}")
    if iterations < 0:
        raise ConfigurationError(f"iterations must be >= 0, got {iterations}")
    if stop_on_hit and epsilon is None:
        raise ConfigurationError("stop_on_hit requires epsilon")

    rng = RngStream.root(seed)
    x = (
        np.zeros(objective.dim)
        if x0 is None
        else np.asarray(x0, dtype=float).copy()
    )
    if x.shape != (objective.dim,):
        raise ConfigurationError(
            f"x0 must have shape ({objective.dim},), got {x.shape}"
        )

    distances = [objective.distance_to_opt(x)]
    hit_time: Optional[int] = None
    if epsilon is not None and distances[0] ** 2 <= epsilon:
        hit_time = 0

    performed = 0
    for t in range(1, iterations + 1):
        if stop_on_hit and hit_time is not None:
            break
        gradient, _ = objective.stochastic_gradient(x, rng)
        x = x - alpha * gradient
        distance = objective.distance_to_opt(x)
        distances.append(distance)
        performed = t
        if epsilon is not None and hit_time is None and distance**2 <= epsilon:
            hit_time = t

    return SequentialRunResult(
        x_final=x,
        distances=np.array(distances),
        hit_time=hit_time,
        epsilon=epsilon,
        iterations=performed,
    )
