"""The ``Algorithm`` abstraction — one seam for the async-SGD zoo.

Every variant in :mod:`repro.core` is ultimately the same shape: given a
shared model X, a shared iteration counter C and an objective, emit one
program-DSL generator per thread.  This module makes that shape a
first-class interface so the zoo stops being five one-off files:

* :class:`AlgorithmSetup` — the shared state every variant starts from
  (the memory, the model, the counter, the workload knobs).  Variants
  that need *extra* shared state (a lock register, an epoch register)
  allocate it from ``setup.memory`` inside :meth:`Algorithm.build`.
* :class:`Algorithm` — the interface: ``build(setup)`` returns the
  per-thread :class:`~repro.runtime.program.Program` objects.  Class
  attributes declare the registry ``name``, a human ``title`` and which
  of the paper's lemma certificates (:data:`LEMMAS`) structurally apply
  to the variant — the zoo report certifies those and records explicit
  N/A for the rest.
* a name-keyed registry (:func:`register_algorithm`,
  :func:`algorithm_registry`, :func:`get_algorithm`) mirroring the
  scheduler registry in :mod:`repro.sched.registry`, so experiment
  configs, CLI flags and journal fingerprints address algorithms by
  stable names.
* :func:`run_algorithm` — the unified driver: any registered algorithm
  under any scheduler, returning the same analysis-ready
  :class:`~repro.core.results.LockFreeRunResult` the Algorithm-1 driver
  produces (plus an ``extras`` dict aggregating variant-specific
  counters like CAS failures or lock spins).

Lemma applicability, in brief: Lemma 6.1 (iterations are totally
ordered by first landed update, with unique counter indices) holds for
every variant that claims via ``C.fetch&add``.  Lemmas 6.2 and 6.4
additionally require iterations of *bounded step count* — true for the
fetch&add family (epoch-sgd, full-sgd, hogwild, momentum,
staleness-aware), false for variants whose update loops can retry
unboundedly under contention (locked's spinlock, leashed's CAS loop),
so those two are N/A there.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar, Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.core.results import LockFreeRunResult, accumulator_trajectory
from repro.errors import ConfigurationError
from repro.objectives.base import Objective
from repro.runtime.events import IterationRecord
from repro.runtime.policy import TraceConfig
from repro.runtime.program import Program
from repro.runtime.simulator import Simulator
from repro.shm.array import AtomicArray
from repro.shm.counter import AtomicCounter
from repro.shm.memory import SharedMemory

#: The lemma certificates the analysis layer can check (see
#: :mod:`repro.analysis.lemmas`): iteration total order, window
#: contention, indicator sums.
LEMMAS: Tuple[str, ...] = ("6.1", "6.2", "6.4")


@dataclass
class AlgorithmSetup:
    """Everything an algorithm needs to emit its per-thread programs.

    Attributes:
        memory: The run's shared memory — algorithms allocate any extra
            shared state (locks, epoch registers) from it.
        model: The shared parameter array X, already initialized to x0.
        counter: The shared iteration counter C.
        objective: Function/oracle being minimized.
        step_size: The base learning rate α.
        iterations: Global iteration budget T.
        num_threads: n — ``build`` must return exactly this many programs.
        record_iterations: Whether programs should emit
            :class:`~repro.runtime.events.IterationRecord` events
            (disable only for throughput micro-benchmarks).
    """

    memory: SharedMemory
    model: AtomicArray
    counter: AtomicCounter
    objective: Objective
    step_size: float
    iterations: int
    num_threads: int
    record_iterations: bool = True


class Algorithm(abc.ABC):
    """An asynchronous SGD variant, expressed as program-DSL emission.

    Subclasses set :attr:`name` (the registry key), :attr:`title` (one
    human line for reports) and :attr:`lemmas` (the subset of
    :data:`LEMMAS` whose certificates structurally apply), and implement
    :meth:`build`.  Constructor parameters are the variant's
    hyper-parameters and must all carry defaults so the registry can
    default-construct every algorithm for grids and benchmarks.
    """

    #: Registry key (unique, stable — journal fingerprints contain it).
    name: ClassVar[str] = ""
    #: One-line description for report headers.
    title: ClassVar[str] = ""
    #: Which lemma certificates apply; the rest are reported N/A.
    lemmas: ClassVar[Tuple[str, ...]] = LEMMAS

    @abc.abstractmethod
    def build(self, setup: AlgorithmSetup) -> List[Program]:
        """One :class:`Program` per thread, given the shared state."""

    def lemma_applicability(self) -> Dict[str, bool]:
        """``lemma -> applies`` over every known lemma, N/A rows included."""
        return {lemma: lemma in self.lemmas for lemma in LEMMAS}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[Algorithm]] = {}


def register_algorithm(cls: Type[Algorithm]) -> Type[Algorithm]:
    """Class decorator: register ``cls`` under ``cls.name``."""
    if not cls.name:
        raise ConfigurationError(
            f"{cls.__name__} must set a non-empty registry name"
        )
    if cls.name in _REGISTRY:
        raise ConfigurationError(
            f"algorithm name {cls.name!r} already registered "
            f"(by {_REGISTRY[cls.name].__name__})"
        )
    unknown = set(cls.lemmas) - set(LEMMAS)
    if unknown:
        raise ConfigurationError(
            f"{cls.__name__} declares unknown lemma(s): {sorted(unknown)}"
        )
    _REGISTRY[cls.name] = cls
    return cls


def _load_builtins() -> None:
    """Import the zoo modules so their ``@register_algorithm`` classes
    land in the registry (idempotent; lazy to avoid import cycles)."""
    import repro.core.epoch_sgd  # noqa: F401
    import repro.core.full_sgd  # noqa: F401
    import repro.core.hogwild  # noqa: F401
    import repro.core.leashed  # noqa: F401
    import repro.core.locked  # noqa: F401
    import repro.core.momentum  # noqa: F401
    import repro.core.staleness_aware  # noqa: F401


def algorithm_registry() -> Dict[str, Type[Algorithm]]:
    """Name -> class over every registered algorithm (built-ins loaded)."""
    _load_builtins()
    return dict(_REGISTRY)


def algorithm_names() -> Tuple[str, ...]:
    """Registered names, sorted (stable across registration order)."""
    return tuple(sorted(algorithm_registry()))


def get_algorithm(name: str, **params) -> Algorithm:
    """Instantiate the algorithm registered under ``name``.

    ``params`` override the variant's hyper-parameter defaults (e.g.
    ``damping`` for ``staleness-aware``).
    """
    registry = algorithm_registry()
    cls = registry.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown algorithm: {name!r} "
            f"(choose from {', '.join(sorted(registry))})"
        )
    return cls(**params)


# ----------------------------------------------------------------------
# The unified driver
# ----------------------------------------------------------------------
def build_zoo_simulation(
    algorithm: Algorithm,
    objective: Objective,
    scheduler,
    num_threads: int,
    step_size: float,
    iterations: int,
    x0: Optional[np.ndarray] = None,
    seed: int = 0,
    record_log: bool = False,
    record_iterations: bool = True,
    trace_config: Optional[TraceConfig] = None,
) -> Tuple[Simulator, AtomicArray, np.ndarray]:
    """Allocate the shared state, build the algorithm's programs and
    spawn them — returns ``(simulator, model, x0_copy)`` ready to run.

    Exposed separately from :func:`run_algorithm` so tests and benches
    can drive the same simulation through ``run()`` / ``run_fast()`` /
    ``run_analyzed()`` and compare step-for-step.
    """
    if num_threads < 1:
        raise ConfigurationError(f"num_threads must be >= 1, got {num_threads}")
    memory = SharedMemory(record_log=record_log)
    model = AtomicArray.allocate(memory, objective.dim, name="model")
    initial = (
        np.zeros(objective.dim)
        if x0 is None
        else np.asarray(x0, dtype=float).copy()
    )
    model.load(initial)
    counter = AtomicCounter.allocate(memory, name="iteration_counter")
    setup = AlgorithmSetup(
        memory=memory,
        model=model,
        counter=counter,
        objective=objective,
        step_size=step_size,
        iterations=iterations,
        num_threads=num_threads,
        record_iterations=record_iterations,
    )
    programs = algorithm.build(setup)
    if len(programs) != num_threads:
        raise ConfigurationError(
            f"{algorithm.name!r}.build returned {len(programs)} program(s) "
            f"for {num_threads} thread(s)"
        )
    sim = Simulator(memory, scheduler, seed=seed, trace_config=trace_config)
    for index, program in enumerate(programs):
        sim.spawn(program, name=f"{algorithm.name}-worker-{index}")
    return sim, model, initial


def run_algorithm(
    algorithm: Algorithm,
    objective: Objective,
    scheduler,
    num_threads: int,
    step_size: float,
    iterations: int,
    x0: Optional[np.ndarray] = None,
    seed: int = 0,
    epsilon: Optional[float] = None,
    analyzers: Sequence = (),
    record_memory_log: bool = False,
    metrics=None,
) -> LockFreeRunResult:
    """Run any registered algorithm under any scheduler to quiescence.

    The zoo counterpart of :func:`repro.core.epoch_sgd.run_lock_free_sgd`
    — same result shape (accumulator trajectory in the first-update
    total order, hitting time, per-thread counts), plus
    ``result.extras``: variant-specific counters (``spin_steps``,
    ``cas_failures``, ...) summed over threads.

    ``analyzers`` attaches :class:`repro.analysis.sanitizer.Analyzer`
    instances (forces the memory log on; same schedule, analyzers drain
    at chunk boundaries).  ``metrics`` attaches a
    :class:`repro.obs.registry.MetricsRegistry` and publishes the run's
    paper-aligned snapshot at the end.
    """
    sim, model, initial = build_zoo_simulation(
        algorithm,
        objective,
        scheduler,
        num_threads=num_threads,
        step_size=step_size,
        iterations=iterations,
        x0=x0,
        seed=seed,
        record_log=record_memory_log or bool(analyzers),
    )
    if metrics is not None:
        sim.attach_metrics(metrics)
    for analyzer in analyzers:
        sim.attach_analyzer(analyzer)
    from repro.obs.spans import trace_span

    with trace_span(
        "zoo.run",
        algorithm=algorithm.name,
        threads=num_threads,
        iterations=iterations,
        seed=seed,
    ):
        sim.run_analyzed()

    records = sorted(
        (e for e in sim.trace if isinstance(e, IterationRecord)),
        key=lambda r: r.order_time,
    )
    if records and sim.metrics is not None:
        from repro.obs.paper import paper_metrics, publish_paper_metrics

        publish_paper_metrics(
            sim.metrics, paper_metrics(records, num_threads=num_threads)
        )
    trajectory = accumulator_trajectory(initial, records)
    distances = np.linalg.norm(trajectory - objective.x_star, axis=1)
    hit_time: Optional[int] = None
    if epsilon is not None:
        hits = np.nonzero(distances**2 <= epsilon)[0]
        if hits.size:
            hit_time = int(hits[0])

    extras: Dict[str, float] = {}
    thread_iterations: Dict[int, int] = {}
    for tid in sorted(sim.results()):
        payload = sim.results()[tid]
        if not isinstance(payload, dict):
            continue
        if "iterations" in payload:
            thread_iterations[tid] = payload["iterations"]
        for key, value in payload.items():
            if key in ("iterations", "accumulator"):
                continue
            if isinstance(value, (int, float)):
                extras[key] = extras.get(key, 0) + value
    result = LockFreeRunResult(
        x_final=model.snapshot(),
        x0=initial,
        records=records,
        distances=distances,
        hit_time=hit_time,
        epsilon=epsilon,
        sim_steps=sim.now,
        thread_iterations=thread_iterations,
        thread_steps={t.thread_id: t.steps_taken for t in sim.threads},
    )
    result.extras = extras  # type: ignore[attr-defined]
    return result
