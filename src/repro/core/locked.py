"""Coarse-grained locked SGD (Langford et al., "Slow learners are fast").

The pre-Hogwild approach the paper's introduction recalls: keep the
process consistent with a sequential execution by wrapping every
iteration in a global lock.  The lock is a CAS spinlock on a shared
register; a thread that loses the race keeps spending shared-memory
steps retrying, which is exactly the "significant loss of performance"
the paper attributes to coarse-grained locking — visible in our traces
as wasted steps and in the benchmarks as a larger step count for the
same iteration budget.

Views under the lock are always consistent, so this baseline also serves
as a correctness oracle: its accumulator trajectory must match a
sequential run's distribution.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithm import Algorithm, AlgorithmSetup, register_algorithm
from repro.core.epoch_sgd import sgd_iteration_body
from repro.errors import ConfigurationError
from repro.objectives.base import Objective
from repro.runtime.program import Program, ThreadContext
from repro.shm.array import AtomicArray
from repro.shm.counter import AtomicCounter
from repro.shm.register import AtomicRegister


class LockedSGDProgram(Program):
    """One thread's lock-protected SGD loop.

    Args:
        model: Shared model X.
        counter: Shared iteration counter C.
        lock: The shared lock register (0 = free, 1 = held); allocate one
            register and hand it to every thread.
        objective: Function/oracle to minimize.
        step_size: Learning rate α.
        max_iterations: Global iteration budget T.
        record_iterations: Emit per-iteration records.
    """

    def __init__(
        self,
        model: AtomicArray,
        counter: AtomicCounter,
        lock: AtomicRegister,
        objective: Objective,
        step_size: float,
        max_iterations: int,
        record_iterations: bool = True,
    ) -> None:
        if step_size <= 0:
            raise ConfigurationError(f"step_size must be > 0, got {step_size}")
        self.model = model
        self.counter = counter
        self.lock = lock
        self.objective = objective
        self.step_size = step_size
        self.max_iterations = max_iterations
        self.record_iterations = record_iterations

    def run(self, ctx: ThreadContext):
        iterations_done = 0
        spin_steps = 0
        ctx.annotate("iterations_done", 0)

        while True:
            ctx.annotate("phase", "start")
            claimed = yield self.counter.increment_op()
            if claimed >= self.max_iterations:
                break
            start_time = ctx.now - 1

            # Acquire the global lock (CAS spinlock).  A thread that lost
            # the race publishes ``blocked`` so phase-parking adversaries
            # (contention-max, stale-attack) know scheduling it cannot
            # make progress — without this they would spin the waiters
            # forever while starving the parked lock holder.
            ctx.annotate("phase", "lock")
            # Intentional unbounded spin: a lock-based baseline waits as
            # long as the adversary starves the holder (the point of the
            # variant).  Not enumerable by `repro verify` at any scope.
            while True:  # repro: allow(RPL105)
                acquired = yield self.lock.cas_op(0.0, 1.0)
                if acquired:
                    break
                spin_steps += 1
                ctx.annotate("blocked", True)
            ctx.annotate("blocked", False)

            record = yield from sgd_iteration_body(
                ctx,
                self.model,
                self.objective,
                self.step_size,
                int(claimed),
                epoch=0,
                start_time=start_time,
            )

            # Release.
            yield self.lock.write_op(0.0)

            iterations_done += 1
            ctx.annotate("iterations_done", iterations_done)
            if self.record_iterations:
                ctx.emit(record)

        ctx.annotate("phase", "done")
        return {
            "iterations": iterations_done,
            "accumulator": np.zeros(self.model.length),
            "spin_steps": spin_steps,
        }


@register_algorithm
class LockedAlgorithm(Algorithm):
    """The lock-based baseline on the zoo seam.  Allocates the shared
    lock register and hands it to every thread.  Spinlock acquisition
    retries make iteration length unbounded under contention, so the
    window lemmas (6.2/6.4) are N/A; the 6.1 total order still holds."""

    name = "locked"
    title = "Locked: coarse-grained CAS-spinlock SGD (Langford et al.)"
    lemmas = ("6.1",)

    def build(self, setup: AlgorithmSetup):
        lock_slot = setup.memory.allocate(1, name="zoo_lock", initial=0.0)
        lock = AtomicRegister(setup.memory, lock_slot)
        return [
            LockedSGDProgram(
                model=setup.model,
                counter=setup.counter,
                lock=lock,
                objective=setup.objective,
                step_size=setup.step_size,
                max_iterations=setup.iterations,
                record_iterations=setup.record_iterations,
            )
            for _ in range(setup.num_threads)
        ]
