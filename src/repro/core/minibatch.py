"""Synchronous data-parallel (mini-batch) SGD.

The fully synchronized alternative to lock-free execution: in each round
all n workers compute a gradient at the *same* iterate and a barrier
averages them before the model moves.  Per round it performs n oracle
calls for one model update — contrast with Algorithm 1, where n oracle
calls advance the model n times (at the cost of view inconsistency).
The Section-8 discussion's wall-clock trade-off is exactly this
comparison, which the E8 benchmark quantifies.

Because the semantics are deterministic given the oracle draws, no
simulator is needed: each round is a single logical super-step.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.results import SequentialRunResult
from repro.errors import ConfigurationError
from repro.objectives.base import Objective
from repro.runtime.rng import RngStream


def run_minibatch_sgd(
    objective: Objective,
    alpha: float,
    rounds: int,
    batch_size: int,
    x0: Optional[np.ndarray] = None,
    seed: int = 0,
    epsilon: Optional[float] = None,
) -> SequentialRunResult:
    """Run synchronous parallel SGD for ``rounds`` barrier rounds.

    x_{r+1} = x_r − α·(1/B)·Σ_{i=1..B} g̃_i(x_r), with B = ``batch_size``
    independent oracle draws per round (one per simulated worker).

    Returns:
        A :class:`SequentialRunResult` whose ``distances`` has one entry
        per round (plus the starting point) and whose ``iterations``
        counts rounds.  Note each round consumed ``batch_size`` oracle
        calls — account for that when comparing sample complexity.
    """
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be > 0, got {alpha}")
    if rounds < 0:
        raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")

    rng = RngStream.root(seed)
    x = (
        np.zeros(objective.dim)
        if x0 is None
        else np.asarray(x0, dtype=float).copy()
    )
    distances = [objective.distance_to_opt(x)]
    hit_time: Optional[int] = None
    if epsilon is not None and distances[0] ** 2 <= epsilon:
        hit_time = 0

    for round_index in range(1, rounds + 1):
        batch = np.zeros(objective.dim)
        for _ in range(batch_size):
            gradient, _ = objective.stochastic_gradient(x, rng)
            batch += gradient
        x = x - alpha * (batch / batch_size)
        distance = objective.distance_to_opt(x)
        distances.append(distance)
        if epsilon is not None and hit_time is None and distance**2 <= epsilon:
            hit_time = round_index

    return SequentialRunResult(
        x_final=x,
        distances=np.array(distances),
        hit_time=hit_time,
        epsilon=epsilon,
        iterations=rounds,
    )
