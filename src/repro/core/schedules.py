"""Learning-rate schedules.

The paper's central tension is about step sizes: Theorem 5.1 shows a
*fixed* rate can be exploited by adversarial delays, while Algorithm 2
survives them by halving the rate each epoch.  A schedule maps an epoch
index to the α used by every iteration of that epoch (within an epoch the
rate is constant, as in the paper).
"""

from __future__ import annotations

import abc

from repro.errors import ConfigurationError


class LearningRateSchedule(abc.ABC):
    """Maps epoch index -> step size α."""

    @abc.abstractmethod
    def rate(self, epoch: int) -> float:
        """The step size used throughout ``epoch`` (0-based)."""

    def __call__(self, epoch: int) -> float:
        return self.rate(epoch)


class ConstantRate(LearningRateSchedule):
    """α_t = α for all t — the setting of Theorem 5.1's lower bound.

    Args:
        alpha: The fixed step size (must be in (0, 1] for the paper's
            contraction arguments to apply; we only require > 0).
    """

    def __init__(self, alpha: float) -> None:
        if alpha <= 0:
            raise ConfigurationError(f"alpha must be > 0, got {alpha}")
        self.alpha = alpha

    def rate(self, epoch: int) -> float:
        return self.alpha

    def __repr__(self) -> str:
        return f"ConstantRate(alpha={self.alpha})"


class EpochHalvingRate(LearningRateSchedule):
    """α_e = α₀ / 2^e — Algorithm 2's schedule ("α ← α/2" per epoch).

    Args:
        alpha0: Initial step size α₀.
    """

    def __init__(self, alpha0: float) -> None:
        if alpha0 <= 0:
            raise ConfigurationError(f"alpha0 must be > 0, got {alpha0}")
        self.alpha0 = alpha0

    def rate(self, epoch: int) -> float:
        if epoch < 0:
            raise ConfigurationError(f"epoch must be >= 0, got {epoch}")
        return self.alpha0 / (2.0**epoch)

    def __repr__(self) -> str:
        return f"EpochHalvingRate(alpha0={self.alpha0})"
