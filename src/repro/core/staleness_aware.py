"""Staleness-aware lock-free SGD (Zhang et al., IJCAI'16-style).

The paper's related-work discussion: "There exists significant work on
mitigating the effects of asynchrony in applied settings ... where it may
be possible to examine the 'staleness' of an update immediately before
applying it, and adjust hyperparameters accordingly ... **Our lower bound
applies to these works as well.**"

This module implements that mitigation inside our model so the remark can
be *measured*: before applying its gradient, a thread re-reads the shared
iteration counter (one extra shared-memory step — the observation is not
free in this model) and scales its update by 1/(1 + staleness), where
staleness is how many iterations started since the thread claimed its
own.  The E9 experiment then runs the Theorem 5.1 attack against it: the
damping shrinks each stale update's damage by the promised factor, but —
as the paper asserts — the slowdown remains Ω(τ), because the adversary
simply keeps feeding stale gradients and the *useful* updates get damped
along with the stale ones once the adversary inflates everyone's
staleness.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.algorithm import Algorithm, AlgorithmSetup, register_algorithm
from repro.errors import ConfigurationError
from repro.objectives.base import Objective
from repro.runtime.events import IterationRecord
from repro.runtime.program import Program, ThreadContext
from repro.shm.array import AtomicArray
from repro.shm.counter import AtomicCounter


class StalenessAwareSGDProgram(Program):
    """Lock-free SGD that damps updates by their observed staleness.

    One iteration: claim index c via ``C.fetch&add(1)``; read the view;
    compute g̃; **re-read C** (cost: one step) obtaining c'; apply
    −α/(1 + γ·(c' − c − 1))·g̃ entry-wise via fetch&add.  With γ = 0 this
    degenerates to plain Algorithm 1.

    Args:
        model: Shared model X.
        counter: Shared iteration counter C (doubles as the clock the
            staleness estimate is read from).
        objective: Function/oracle to minimize.
        step_size: The base learning rate α.
        max_iterations: Global budget T.
        damping: γ ≥ 0 — staleness sensitivity (1.0 = the canonical
            α/staleness rule).
        record_iterations: Emit IterationRecords (their ``step_size`` is
            the *effective*, damped step size, so accumulator trajectories
            remain exact).
    """

    def __init__(
        self,
        model: AtomicArray,
        counter: AtomicCounter,
        objective: Objective,
        step_size: float,
        max_iterations: int,
        damping: float = 1.0,
        record_iterations: bool = True,
    ) -> None:
        if step_size <= 0:
            raise ConfigurationError(f"step_size must be > 0, got {step_size}")
        if damping < 0:
            raise ConfigurationError(f"damping must be >= 0, got {damping}")
        if model.length != objective.dim:
            raise ConfigurationError(
                f"model has {model.length} entries but objective.dim is "
                f"{objective.dim}"
            )
        self.model = model
        self.counter = counter
        self.objective = objective
        self.step_size = step_size
        self.max_iterations = max_iterations
        self.damping = damping
        self.record_iterations = record_iterations

    def run(self, ctx: ThreadContext):
        dim = self.model.length
        iterations_done = 0
        ctx.annotate("iterations_done", 0)

        while True:
            ctx.annotate("phase", "start")
            claimed = yield self.counter.increment_op()
            if claimed >= self.max_iterations:
                break
            start_time = ctx.now - 1

            ctx.annotate("phase", "read")
            view = np.empty(dim)
            read_start = -1
            for j in range(dim):
                view[j] = yield self.model.read_op(j)
                if j == 0:
                    read_start = ctx.now - 1
            read_end = ctx.now - 1

            gradient, sample = self.objective.stochastic_gradient(view, ctx.rng)
            ctx.annotate("pending_gradient", gradient)
            ctx.annotate("view", view)

            # The staleness observation: how far has the global iteration
            # counter moved since we claimed ours?  (One genuine step —
            # published as its own phase, because WHEN the adversary lets
            # this step run decides whether the mitigation works: freezing
            # the thread *after* the observation makes the estimate stale
            # itself, which is how the paper's lower bound still applies.)
            ctx.annotate("phase", "observe")
            counter_now = yield self.counter.read_count_op()
            staleness = max(0.0, float(counter_now) - float(claimed) - 1.0)
            effective_alpha = self.step_size / (1.0 + self.damping * staleness)
            ctx.annotate("staleness", staleness)
            ctx.annotate("phase", "update")

            applied: List[bool] = [False] * dim
            update_times: List[Optional[int]] = [None] * dim
            first_update: Optional[int] = None
            last_time = read_end
            for j in range(dim):
                if gradient[j] == 0.0:
                    continue
                yield self.model.fetch_add_op(j, -effective_alpha * gradient[j])
                op_time = ctx.now - 1
                if first_update is None:
                    first_update = op_time
                last_time = op_time
                applied[j] = True
                update_times[j] = op_time

            iterations_done += 1
            ctx.annotate("iterations_done", iterations_done)
            ctx.annotate("pending_gradient", None)
            if self.record_iterations:
                ctx.emit(
                    IterationRecord(
                        time=last_time,
                        thread_id=ctx.thread_id,
                        index=int(claimed),
                        start_time=start_time,
                        read_start_time=read_start,
                        read_end_time=read_end,
                        first_update_time=first_update,
                        end_time=last_time,
                        view=view,
                        gradient=gradient,
                        applied=applied,
                        update_times=update_times,
                        step_size=effective_alpha,
                        sample=(sample, staleness),
                    )
                )

        ctx.annotate("phase", "done")
        return {"iterations": iterations_done, "accumulator": np.zeros(dim)}


@register_algorithm
class StalenessAwareAlgorithm(Algorithm):
    """The staleness-damped mitigation on the zoo seam.  One extra
    counter read per iteration keeps iteration length bounded, so all
    three lemma certificates apply."""

    name = "staleness-aware"
    title = "Staleness-aware: α damped by 1/(1 + γ·staleness)"

    def __init__(self, damping: float = 1.0) -> None:
        self.damping = damping

    def build(self, setup: AlgorithmSetup):
        return [
            StalenessAwareSGDProgram(
                model=setup.model,
                counter=setup.counter,
                objective=setup.objective,
                step_size=setup.step_size,
                max_iterations=setup.iterations,
                damping=self.damping,
                record_iterations=setup.record_iterations,
            )
            for _ in range(setup.num_threads)
        ]
