"""Classic averaged-iterate SGD and its regret-style bound.

Section 3 contrasts the paper's martingale approach with "classic
approaches for analyzing the convergence of SGD [that] bound the
distance between the expected value of f at the average of the currently
generated iterates and the optimal value of the function (e.g. Theorem
6.3 in [Bubeck])".  This module implements that classic object so the
two analysis styles can be compared side by side:

* :func:`run_averaged_sgd` — SGD with the decreasing step size
  α_t = 2/(c·(t+1)) and the weighted average
  x̄_T = Σ_t 2t/(T(T+1))·x_t;
* :func:`classic_average_bound` — the guarantee
  E[f(x̄_T)] − f(x*) ≤ 2M²/(c·(T+1)),

which, like the martingale bounds, decreases linearly in the number of
iterations — but speaks about the *averaged* iterate's objective value
rather than the probability of hitting a region, which is why the paper
needs the martingale machinery for its asynchronous analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.objectives.base import Objective
from repro.runtime.rng import RngStream


def classic_average_bound(
    strong_convexity: float, second_moment: float, iterations: int
) -> float:
    """E[f(x̄_T)] − f(x*) ≤ 2M²/(c·(T+1)) (Bubeck, Thm 6.3)."""
    if strong_convexity <= 0 or second_moment <= 0:
        raise ConfigurationError("strong_convexity and second_moment must be > 0")
    if iterations < 1:
        raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
    return 2.0 * second_moment / (strong_convexity * (iterations + 1))


@dataclass
class AveragedRunResult:
    """Outcome of an averaged-SGD run.

    Attributes:
        x_average: The weighted average x̄_T.
        x_final: The last raw iterate x_T.
        average_suboptimality: f(x̄_T) − f(x*).
        final_suboptimality: f(x_T) − f(x*).
        iterations: T.
    """

    x_average: np.ndarray
    x_final: np.ndarray
    average_suboptimality: float
    final_suboptimality: float
    iterations: int


def run_averaged_sgd(
    objective: Objective,
    iterations: int,
    x0: Optional[np.ndarray] = None,
    seed: int = 0,
) -> AveragedRunResult:
    """Run SGD with α_t = 2/(c(t+1)) and return the weighted average.

    The weighting is the classic 2t/(T(T+1)) scheme whose guarantee is
    :func:`classic_average_bound`.
    """
    if iterations < 1:
        raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
    c = objective.strong_convexity
    rng = RngStream.root(seed)
    x = (
        np.zeros(objective.dim)
        if x0 is None
        else np.asarray(x0, dtype=float).copy()
    )
    weighted_sum = np.zeros(objective.dim)
    for t in range(1, iterations + 1):
        gradient, _ = objective.stochastic_gradient(x, rng)
        alpha_t = 2.0 / (c * (t + 1))
        x = x - alpha_t * gradient
        weighted_sum += t * x
    x_average = 2.0 * weighted_sum / (iterations * (iterations + 1))
    return AveragedRunResult(
        x_average=x_average,
        x_final=x,
        average_suboptimality=objective.suboptimality(x_average),
        final_suboptimality=objective.suboptimality(x),
        iterations=iterations,
    )
