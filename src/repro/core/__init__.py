"""The paper's algorithms and baselines.

* :func:`~repro.core.sequential.run_sequential_sgd` — the classic serial
  iteration x_{t+1} = x_t − α·g̃(x_t) (Eq. 1), the yardstick every
  slowdown is measured against.
* :class:`~repro.core.epoch_sgd.EpochSGDProgram` — **Algorithm 1**:
  lock-free SGD over a shared model with per-entry read/fetch&add, plus
  the convenience driver :func:`~repro.core.epoch_sgd.run_lock_free_sgd`.
* :class:`~repro.core.full_sgd.FullSGD` — **Algorithm 2**: epochs with
  halving step size and epoch-isolated updates, converging to any target
  ε under adversarial scheduling (Corollary 7.1).
* Baselines: :class:`~repro.core.hogwild.HogwildProgram` (constant-α
  lock-free), :class:`~repro.core.locked.LockedSGDProgram`
  (coarse-grained lock, Langford et al.) and
  :func:`~repro.core.minibatch.run_minibatch_sgd` (synchronous parallel).
"""

from repro.core.schedules import ConstantRate, EpochHalvingRate, LearningRateSchedule
from repro.core.results import LockFreeRunResult, SequentialRunResult
from repro.core.sequential import run_sequential_sgd
from repro.core.algorithm import (
    LEMMAS,
    Algorithm,
    AlgorithmSetup,
    algorithm_names,
    algorithm_registry,
    build_zoo_simulation,
    get_algorithm,
    register_algorithm,
    run_algorithm,
)
from repro.core.epoch_sgd import (
    EpochSGDAlgorithm,
    EpochSGDProgram,
    run_lock_free_sgd,
)
from repro.core.full_sgd import (
    FullSGD,
    FullSGDAlgorithm,
    FullSGDResult,
    recommended_num_epochs,
)
from repro.core.hogwild import HogwildAlgorithm, HogwildProgram
from repro.core.leashed import LeashedAlgorithm, LeashedSGDProgram
from repro.core.locked import LockedAlgorithm, LockedSGDProgram
from repro.core.minibatch import run_minibatch_sgd
from repro.core.momentum import (
    MomentumAlgorithm,
    MomentumSGDProgram,
    fit_implicit_momentum,
    run_momentum_sgd,
)
from repro.core.staleness_aware import (
    StalenessAwareAlgorithm,
    StalenessAwareSGDProgram,
)
from repro.core.snapshot_sgd import SnapshotSGDProgram, run_snapshot_sgd
from repro.core.averaged import (
    AveragedRunResult,
    classic_average_bound,
    run_averaged_sgd,
)

__all__ = [
    "LEMMAS",
    "Algorithm",
    "AlgorithmSetup",
    "algorithm_names",
    "algorithm_registry",
    "build_zoo_simulation",
    "get_algorithm",
    "register_algorithm",
    "run_algorithm",
    "EpochSGDAlgorithm",
    "FullSGDAlgorithm",
    "HogwildAlgorithm",
    "LeashedAlgorithm",
    "LeashedSGDProgram",
    "LockedAlgorithm",
    "MomentumAlgorithm",
    "StalenessAwareAlgorithm",
    "LearningRateSchedule",
    "ConstantRate",
    "EpochHalvingRate",
    "SequentialRunResult",
    "LockFreeRunResult",
    "run_sequential_sgd",
    "EpochSGDProgram",
    "run_lock_free_sgd",
    "FullSGD",
    "FullSGDResult",
    "recommended_num_epochs",
    "HogwildProgram",
    "LockedSGDProgram",
    "run_minibatch_sgd",
    "run_momentum_sgd",
    "MomentumSGDProgram",
    "fit_implicit_momentum",
    "StalenessAwareSGDProgram",
    "SnapshotSGDProgram",
    "run_snapshot_sgd",
    "run_averaged_sgd",
    "AveragedRunResult",
    "classic_average_bound",
]
