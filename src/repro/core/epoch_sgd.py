"""Algorithm 1 — lock-free SGD in shared memory.

Each thread repeatedly: (1) claims an iteration with ``C.fetch&add(1)``
and stops once the count reaches T; (2) reads the shared model X entry by
entry into a (possibly inconsistent) view v_θ; (3) computes the
stochastic gradient g̃_θ at v_θ; (4) applies each non-zero component with
``X[j].fetch&add(−α·g̃_θ[j])``.  Per the paper, fetch&add (rather than
write) is what prevents a delayed thread from obliterating everyone
else's progress; the ``use_write`` flag exists purely to demonstrate that
failure mode in the ablation benchmark.

The iteration body is exposed as the sub-generator
:func:`sgd_iteration_body` so Algorithm 2 (:mod:`repro.core.full_sgd`)
can run the identical iteration with per-epoch step sizes and epoch
guards.  Programs publish their phase, drawn sample and pending gradient
via annotations (the adaptive-adversary window, see
:mod:`repro.sched.adaptive`) and emit one
:class:`~repro.runtime.events.IterationRecord` per completed iteration —
the raw material of the contention and convergence analyses.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.algorithm import Algorithm, AlgorithmSetup, register_algorithm
from repro.core.results import LockFreeRunResult, accumulator_trajectory
from repro.errors import ConfigurationError
from repro.objectives.base import Objective
from repro.runtime.events import IterationRecord
from repro.runtime.policy import TraceConfig
from repro.runtime.program import Program, ThreadContext
from repro.runtime.simulator import Simulator
from repro.shm.array import AtomicArray
from repro.shm.counter import AtomicCounter
from repro.shm.memory import SharedMemory
from repro.shm.ops import DoubleCompareSingleSwap
from repro.shm.register import AtomicRegister


def sgd_iteration_body(
    ctx: ThreadContext,
    model: AtomicArray,
    objective: Objective,
    step_size: float,
    claimed_index: int,
    epoch: int,
    start_time: int,
    guard: Optional[AtomicRegister] = None,
    guard_value: float = 0.0,
    use_write: bool = False,
    use_dcas_loop: bool = False,
):
    """One SGD iteration (lines 4–8 of Algorithm 1), as a sub-generator.

    Drive with ``record = yield from sgd_iteration_body(...)``; the
    returned :class:`IterationRecord` describes the completed iteration.
    The caller has already claimed the iteration via the counter (line 3)
    and passes the claimed index and the time of that fetch&add.

    Guarded updates come in two implementations with identical semantics:

    * ``use_dcas_loop=False`` (default) — the atomic
      :class:`~repro.shm.ops.GuardedFetchAdd` primitive (one step per
      component);
    * ``use_dcas_loop=True`` — the paper's literal construction: a
      read-then-DCAS retry loop per component ("maintaining an epoch
      counter, on which threads condition their update via
      double-compare-single-swap").  Costs extra steps under contention
      (every retry is a scheduled step), which is exactly the fidelity
      difference — use it when step counts must reflect the DCAS cost.
      The loop gives up (update rejected) as soon as the guard no longer
      matches, mirroring the guarded fetch&add's rejection.
    """
    dim = model.length

    # Line 4: scan the model entry by entry (the inconsistent view).
    ctx.annotate("phase", "read")
    view = np.empty(dim)
    read_start = -1
    for j in range(dim):
        view[j] = yield model.read_op(j)
        if j == 0:
            read_start = ctx.now - 1
    read_end = ctx.now - 1

    # Line 5: local computation — draw the coin, evaluate the oracle.
    gradient, sample = objective.stochastic_gradient(view, ctx.rng)
    ctx.annotate("pending_gradient", gradient)
    ctx.annotate("view", view)
    ctx.annotate("sample", sample)

    # Lines 6-7: apply non-zero components via fetch&add.
    ctx.annotate("phase", "update")
    applied: List[bool] = [False] * dim
    update_times: List[Optional[int]] = [None] * dim
    first_update: Optional[int] = None
    last_time = read_end
    for j in range(dim):
        component = gradient[j]
        if component == 0.0:
            continue
        delta = -step_size * component
        if use_write:
            yield model.write_op(j, view[j] + delta)  # repro: allow(RPL101)
            landed = True
        elif guard is not None and use_dcas_loop:
            # Literal read-then-DCAS retry loop: re-read the entry, then
            # atomically swap it to current+delta iff the epoch guard
            # still matches AND the entry is unchanged.  A CAS-failure on
            # the entry retries; a guard mismatch aborts (stale update
            # discarded, as Algorithm 2 requires).
            landed = False
            # Terminates under every schedule: a DCSS failure means the
            # entry or the guard changed, and the guard path breaks out.
            while True:  # repro: allow(RPL105)
                guard_now = yield guard.read_op()
                if guard_now != guard_value:
                    break
                current = yield model.read_op(j)
                swapped = yield DoubleCompareSingleSwap(
                    address=model.address_of(j),
                    expected=current,
                    new=current + delta,
                    guard_address=guard.address,
                    guard_expected=guard_value,
                )
                if swapped:
                    landed = True
                    break
        elif guard is not None:
            landed, _ = yield model.guarded_fetch_add_op(
                j, delta, guard, guard_value
            )
        else:
            yield model.fetch_add_op(j, delta)
            landed = True
        op_time = ctx.now - 1
        if first_update is None:
            first_update = op_time
        last_time = op_time
        applied[j] = landed
        update_times[j] = op_time

    ctx.annotate("pending_gradient", None)
    return IterationRecord(
        time=last_time,
        thread_id=ctx.thread_id,
        index=claimed_index,
        epoch=epoch,
        start_time=start_time,
        read_start_time=read_start,
        read_end_time=read_end,
        first_update_time=first_update,
        end_time=last_time,
        view=view,
        gradient=gradient,
        applied=applied,
        update_times=update_times,
        step_size=step_size,
        sample=sample,
    )


class EpochSGDProgram(Program):
    """One thread's Algorithm-1 loop (procedure ``EpochSGD(T, α)``).

    Args:
        model: The shared parameter array X[d].
        counter: The shared iteration counter C.
        objective: Function/oracle being minimized.
        step_size: The (epoch-constant) learning rate α.
        max_iterations: T — the counter value at which threads return.
        epoch: Epoch tag recorded on iteration records (Algorithm 2 sets
            this; plain Algorithm-1 runs leave it 0).
        guard: Optional epoch register; when given, every model update is
            an epoch-guarded fetch&add that only lands while the register
            still equals ``epoch`` (Algorithm 2's isolation rule).
        accumulate: Collect this thread's generated updates (−α·g̃ summed
            over its iterations) and return them — Algorithm 2's final
            epoch accumulator Acc[i].
        record_iterations: Emit an IterationRecord per iteration
            (disable only for throughput micro-benchmarks).
        use_write: ABLATION ONLY — apply updates with plain ``write`` of
            ``view[j] − α·g̃[j]`` instead of fetch&add, reproducing the
            lost-update catastrophe the paper warns about.
    """

    def __init__(
        self,
        model: AtomicArray,
        counter: AtomicCounter,
        objective: Objective,
        step_size: float,
        max_iterations: int,
        epoch: int = 0,
        guard: Optional[AtomicRegister] = None,
        accumulate: bool = False,
        record_iterations: bool = True,
        use_write: bool = False,
        use_dcas_loop: bool = False,
    ) -> None:
        if step_size <= 0:
            raise ConfigurationError(f"step_size must be > 0, got {step_size}")
        if max_iterations < 0:
            raise ConfigurationError(
                f"max_iterations must be >= 0, got {max_iterations}"
            )
        if model.length != objective.dim:
            raise ConfigurationError(
                f"model has {model.length} entries but objective.dim is "
                f"{objective.dim}"
            )
        self.model = model
        self.counter = counter
        self.objective = objective
        self.step_size = step_size
        self.max_iterations = max_iterations
        self.epoch = epoch
        self.guard = guard
        self.accumulate = accumulate
        self.record_iterations = record_iterations
        self.use_write = use_write
        self.use_dcas_loop = use_dcas_loop

    def run(self, ctx: ThreadContext):
        accumulator = np.zeros(self.model.length)
        iterations_done = 0
        ctx.annotate("iterations_done", 0)

        while True:
            ctx.annotate("phase", "start")
            claimed = yield self.counter.increment_op()
            if claimed >= self.max_iterations:
                break
            record = yield from sgd_iteration_body(
                ctx,
                self.model,
                self.objective,
                self.step_size,
                int(claimed),
                self.epoch,
                start_time=ctx.now - 1,
                guard=self.guard,
                guard_value=float(self.epoch),
                use_write=self.use_write,
                use_dcas_loop=self.use_dcas_loop,
            )
            if self.accumulate:
                accumulator -= self.step_size * record.gradient
            iterations_done += 1
            ctx.annotate("iterations_done", iterations_done)
            if self.record_iterations:
                ctx.emit(record)

        ctx.annotate("phase", "done")
        return {"iterations": iterations_done, "accumulator": accumulator}


@register_algorithm
class EpochSGDAlgorithm(Algorithm):
    """Algorithm 1 on the zoo seam: per-entry read / fetch&add, constant
    α, no epoch machinery.  All three lemma certificates apply."""

    name = "epoch-sgd"
    title = "Algorithm 1: lock-free SGD (per-entry fetch&add)"

    def build(self, setup: AlgorithmSetup):
        return [
            EpochSGDProgram(
                model=setup.model,
                counter=setup.counter,
                objective=setup.objective,
                step_size=setup.step_size,
                max_iterations=setup.iterations,
                record_iterations=setup.record_iterations,
            )
            for _ in range(setup.num_threads)
        ]


def collect_iteration_records(sim: Simulator) -> List[IterationRecord]:
    """All iteration records of a finished run, sorted by the paper's
    total order (time of first model update, Lemma 6.1)."""
    records = [e for e in sim.trace if isinstance(e, IterationRecord)]
    records.sort(key=lambda r: r.order_time)
    return records


def run_lock_free_sgd(
    objective: Objective,
    scheduler,
    num_threads: int,
    step_size: float,
    iterations: int,
    x0: Optional[np.ndarray] = None,
    seed: int = 0,
    epsilon: Optional[float] = None,
    program_factory: Optional[Callable[..., Program]] = None,
    record_memory_log: bool = False,
    stop_epsilon: Optional[float] = None,
    trace_config: Optional[TraceConfig] = None,
    analyzers: Sequence = (),
    metrics=None,
) -> LockFreeRunResult:
    """Run Algorithm 1 with ``num_threads`` threads until quiescence.

    The driver allocates the shared model X (initialized to ``x0``) and
    iteration counter C, spawns the threads, runs the simulation to
    completion under ``scheduler``, and assembles the analysis-ready
    result (accumulator trajectory x_t in the first-update total order,
    success-region hitting time, per-thread iteration counts).

    Args:
        objective: Function/oracle to minimize.
        scheduler: Any :class:`~repro.sched.base.Scheduler` — the
            adversary of this execution.
        num_threads: n.
        step_size: The constant learning rate α.
        iterations: Global iteration budget T (shared via the counter).
        x0: Initial model (defaults to the origin).
        seed: Root seed; thread coins derive from it.
        epsilon: Optional success radius² for hitting-time accounting.
        program_factory: Override the per-thread program — receives the
            keyword arguments ``model``, ``counter``, and the thread index
            as ``thread_index`` and must return a
            :class:`~repro.runtime.program.Program` (how the Hogwild and
            locked baselines plug in).
        record_memory_log: Keep the full shared-memory operation log
            (needed only by the history-checker tests).
        stop_epsilon: Optional early-stop radius²: end the simulation as
            soon as the *shared model snapshot* enters that region
            (hitting-time experiments that don't need the post-hit tail).
            Threads are abandoned mid-iteration; records of completed
            iterations remain valid.
        trace_config: Optional engine tracing policy.  The default is
            :meth:`TraceConfig.analysis` (iteration records on, memory
            log and step records off); pass :meth:`TraceConfig.off` for
            pure-throughput runs.  ``record_memory_log=True`` overrides
            its ``record_log``.
        analyzers: Optional :class:`repro.analysis.sanitizer.Analyzer`
            instances to attach.  Forces the memory log on and drives the
            run through :meth:`Simulator.run_analyzed` (same schedule;
            analyzers drain the log between chunks).  Incompatible with
            ``stop_epsilon``.
        metrics: Optional :class:`repro.obs.registry.MetricsRegistry`.
            Attached to the simulator (bulk ``repro_sim_*`` counters) and,
            when iteration records are on, fed the run's paper-aligned
            snapshot (τ histogram, window counts, lemma indicators) via
            :func:`repro.obs.paper.publish_paper_metrics` at the end.
            ``None``/null backend costs nothing.

    Returns:
        A :class:`~repro.core.results.LockFreeRunResult`.
    """
    if num_threads < 1:
        raise ConfigurationError(f"num_threads must be >= 1, got {num_threads}")
    if trace_config is None:
        trace_config = TraceConfig.analysis()
    if analyzers and stop_epsilon is not None:
        raise ConfigurationError(
            "analyzers cannot be combined with stop_epsilon (the early-stop "
            "path steps the simulator directly)"
        )
    memory = SharedMemory(
        record_log=record_memory_log or trace_config.record_log or bool(analyzers)
    )
    model = AtomicArray.allocate(memory, objective.dim, name="model")
    initial = (
        np.zeros(objective.dim) if x0 is None else np.asarray(x0, dtype=float).copy()
    )
    model.load(initial)
    counter = AtomicCounter.allocate(memory, name="iteration_counter")
    sim = Simulator(memory, scheduler, seed=seed, trace_config=trace_config)
    if metrics is not None:
        sim.attach_metrics(metrics)

    for thread_index in range(num_threads):
        if program_factory is not None:
            program = program_factory(
                model=model, counter=counter, thread_index=thread_index
            )
        else:
            program = EpochSGDProgram(
                model=model,
                counter=counter,
                objective=objective,
                step_size=step_size,
                max_iterations=iterations,
                record_iterations=trace_config.record_iterations,
            )
        sim.spawn(program, name=f"worker-{thread_index}")

    from repro.obs.spans import trace_span

    with trace_span(
        "epoch_sgd.run", threads=num_threads, iterations=iterations, seed=seed
    ):
        if stop_epsilon is None:
            for analyzer in analyzers:
                sim.attach_analyzer(analyzer)
            sim.run_analyzed()
        else:
            x_star = objective.x_star

            def reached(sim_: Simulator) -> bool:
                gap = model.snapshot() - x_star
                return float(gap @ gap) <= stop_epsilon

            sim.run(stop=reached)

    records = collect_iteration_records(sim)
    # Only pay for the O(N log N) derived quantities when a live
    # registry is attached (None/null = uninstrumented).
    if records and sim.metrics is not None:
        from repro.obs.paper import paper_metrics, publish_paper_metrics

        publish_paper_metrics(
            sim.metrics, paper_metrics(records, num_threads=num_threads)
        )
    trajectory = accumulator_trajectory(initial, records)
    distances = np.linalg.norm(trajectory - objective.x_star, axis=1)
    hit_time: Optional[int] = None
    if epsilon is not None:
        hits = np.nonzero(distances**2 <= epsilon)[0]
        if hits.size:
            hit_time = int(hits[0])

    thread_iterations = {
        tid: result["iterations"]
        for tid, result in sim.results().items()
        if isinstance(result, dict) and "iterations" in result
    }
    return LockFreeRunResult(
        x_final=model.snapshot(),
        x0=initial,
        records=records,
        distances=distances,
        hit_time=hit_time,
        epsilon=epsilon,
        sim_steps=sim.now,
        thread_iterations=thread_iterations,
        thread_steps={t.thread_id: t.steps_taken for t in sim.threads},
    )
