"""Trace events emitted during simulation.

Two kinds of record flow out of a run:

* :class:`StepRecord` — one per scheduled shared-memory step (who ran,
  which primitive, what it returned).  The fine-grained log; optional,
  since long runs may not want to keep it.
* Semantic events emitted by programs themselves, most importantly
  :class:`IterationRecord`, which captures everything the paper's
  analysis needs about one SGD iteration θ: when it started (the
  ``C.fetch&add``), when it performed its first and last model updates,
  the inconsistent view ``v_θ`` it read, and the stochastic gradient
  ``g̃_θ`` it applied.  The contention analysis (interval contention
  ρ(θ), τ_max, τ_avg, Lemma 6.2's good/bad classification) and the
  convergence metrics are computed from these records alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.shm.ops import Operation


@dataclass
class Event:
    """Base class for semantic trace events.

    Attributes:
        time: Logical time (step count) at which the event was emitted.
        thread_id: Emitting thread, or ``-1`` for simulator-level events.
    """

    time: int
    thread_id: int


@dataclass
class SpawnEvent(Event):
    """A thread was created."""

    name: str = ""


@dataclass
class CrashEvent(Event):
    """The adversary crashed a thread; it takes no further steps."""


@dataclass
class EpochEvent(Event):
    """An Algorithm-2 epoch boundary.

    Attributes:
        epoch: Epoch index (0-based).
        learning_rate: The step size α used during this epoch.
        kind: ``"start"`` or ``"end"``.
    """

    epoch: int = 0
    learning_rate: float = 0.0
    kind: str = "start"


@dataclass
class StepRecord:
    """One scheduled shared-memory step.

    Attributes:
        time: Logical time of the step (equals its global sequence index).
        thread_id: The thread whose pending operation executed.
        op: The executed operation descriptor.
        result: The value fed back into the thread.
    """

    time: int
    thread_id: int
    op: Operation
    result: Any


@dataclass
class IterationRecord(Event):
    """Everything the analysis needs about one concurrent SGD iteration θ.

    Field semantics follow Section 6.1 of the paper:

    Attributes:
        index: The value returned by the iteration's ``C.fetch&add(1)``
            — a unique id, but *not* the paper's iteration order (that is
            the order of first model updates, see ``first_update_time``).
        epoch: Algorithm-2 epoch this iteration belongs to (0 for plain
            Algorithm-1 runs).
        start_time: Time of the ``C.fetch&add`` step that opened the
            iteration.
        read_start_time / read_end_time: Times of the first/last component
            read of the model snapshot loop (line 4 of Algorithm 1).
        first_update_time: Time of the first ``fetch&add`` this iteration
            performed on the model X (the paper orders iterations by this
            instant; ``None`` if the gradient was all-zero so no update
            happened).
        end_time: Time of the iteration's last model update (its
            completion point; equals ``first_update_time`` for 1-sparse
            gradients).  For zero-update iterations this is the last read.
        view: The (possibly inconsistent) view v_θ assembled from the
            entry-wise reads.
        gradient: The stochastic gradient g̃_θ computed at ``view``.
        applied: Per-component booleans — whether each nonzero component's
            fetch&add actually landed (epoch-guarded adds can be rejected
            by Algorithm 2's epoch isolation).
        update_times: Per-component times of this iteration's model
            fetch&adds (``None`` for components it never updated) — what
            Figure 1's applied/pending picture is rendered from.
        step_size: The learning rate α this iteration applied its
            gradient with (epoch-dependent under Algorithm 2), so the
            accumulator x_t can be rebuilt exactly from records.
        sample: Opaque record of the random sample/coin used (e.g. data
            point index), visible to the strong adaptive adversary.
    """

    index: int = -1
    epoch: int = 0
    start_time: int = -1
    read_start_time: int = -1
    read_end_time: int = -1
    first_update_time: Optional[int] = None
    end_time: int = -1
    view: Optional[np.ndarray] = None
    gradient: Optional[np.ndarray] = None
    applied: Optional[list] = None
    update_times: Optional[list] = None
    step_size: float = 0.0
    sample: Any = None

    @property
    def order_time(self) -> int:
        """The instant by which the paper's total order sorts iterations
        (first model update; falls back to the last read for zero-update
        iterations so every iteration is still ordered)."""
        if self.first_update_time is not None:
            return self.first_update_time
        return self.end_time

    def overlaps(self, other: "IterationRecord") -> bool:
        """Whether two iterations' [start, end] intervals intersect —
        i.e. whether they executed concurrently."""
        return self.start_time <= other.end_time and other.start_time <= self.end_time
