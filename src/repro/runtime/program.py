"""The program protocol for simulated threads.

A *program* is the code a thread runs: a generator that yields
:class:`~repro.shm.ops.Operation` descriptors and receives each
operation's result back from the runtime.  Everything between two yields
is local computation — free in the model, and the natural place to flip
coins and evaluate gradients.

Programs communicate with the outside world through their
:class:`ThreadContext`:

* ``ctx.emit(event)`` appends a semantic event to the simulation trace;
* ``ctx.annotate(key, value)`` publishes thread-local state that the
  strong *adaptive* adversary is allowed to inspect (the paper's adversary
  "can see the results of the threads' local coins when deciding the
  scheduling" — annotations are how our programs show their coins).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Dict, Generator

from repro.runtime.events import Event
from repro.runtime.rng import RngStream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.runtime.simulator import Simulator

#: The generator type a program's ``run`` must return: yields operations,
#: receives their results, and its return value becomes the thread result.
ProgramGenerator = Generator


class ThreadContext:
    """Per-thread runtime services handed to :meth:`Program.run`.

    Attributes:
        thread_id: The id of the thread running the program.
        rng: The thread's private random stream (its "local coins").
        annotations: A mutable dict published to adaptive adversaries.
    """

    def __init__(
        self, thread_id: int, rng: RngStream, simulator: "Simulator"
    ) -> None:
        self.thread_id = thread_id
        self.rng = rng
        self._simulator = simulator
        self.annotations: Dict[str, Any] = {}

    @property
    def now(self) -> int:
        """Current logical time (steps executed so far)."""
        return self._simulator.clock.now

    def emit(self, event: Event) -> None:
        """Append a semantic event to the simulation trace."""
        self._simulator.trace.append(event)

    def annotate(self, key: str, value: Any) -> None:
        """Publish thread-local state for adaptive adversaries to read."""
        self.annotations[key] = value

    def __repr__(self) -> str:
        return f"ThreadContext(thread_id={self.thread_id})"


class Program(abc.ABC):
    """Base class for code that runs on a simulated thread.

    Subclasses implement :meth:`run` as a generator::

        class CounterLoop(Program):
            def __init__(self, counter, rounds):
                self.counter = counter
                self.rounds = rounds

            def run(self, ctx):
                total = 0
                for _ in range(self.rounds):
                    old = yield self.counter.increment_op()
                    total += old
                return total

    The generator's ``return`` value is stored as the thread's result.
    """

    @abc.abstractmethod
    def run(self, ctx: ThreadContext) -> ProgramGenerator:
        """Return the generator that drives this thread."""

    @property
    def name(self) -> str:
        """Human-readable program name for traces."""
        return type(self).__name__


class FunctionProgram(Program):
    """Adapter turning a plain generator function into a :class:`Program`.

    Handy in tests::

        def body(ctx):
            yield reg.write_op(1.0)

        sim.spawn(FunctionProgram(body))
    """

    def __init__(self, fn, name: str = "") -> None:
        self._fn = fn
        self._name = name or getattr(fn, "__name__", "FunctionProgram")

    def run(self, ctx: ThreadContext) -> ProgramGenerator:
        return self._fn(ctx)

    @property
    def name(self) -> str:
        return self._name
