"""Logical time.

The paper measures time in the number of shared-memory steps scheduled by
the adversary.  :class:`Clock` is the single authority for that count in a
simulation; one tick corresponds to one executed atomic primitive.
"""

from __future__ import annotations


class Clock:
    """A monotone step counter.

    Separated from the simulator so traces, metrics and schedulers can
    share a single immutable notion of "now".
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        self._now = start

    @property
    def now(self) -> int:
        """The number of shared-memory steps executed so far."""
        return self._now

    def tick(self) -> int:
        """Advance by one step; returns the time of the step just taken."""
        current = self._now
        self._now += 1
        return current

    def __repr__(self) -> str:
        return f"Clock(now={self._now})"
