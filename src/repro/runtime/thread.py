"""Simulated threads.

A :class:`SimThread` pairs a program generator with its scheduling state.
The runtime advances a thread by executing its :attr:`pending_op` against
shared memory and sending the result into the generator, which either
yields the next operation or finishes.
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from repro.errors import ProgramError
from repro.runtime.program import Program, ProgramGenerator, ThreadContext
from repro.shm.ops import Operation


class ThreadState(enum.Enum):
    """Lifecycle of a simulated thread."""

    RUNNABLE = "runnable"
    FINISHED = "finished"
    CRASHED = "crashed"


class SimThread:
    """One simulated thread.

    Attributes:
        thread_id: Dense integer id assigned at spawn.
        name: Human-readable label (program name by default).
        context: The :class:`ThreadContext` given to the program; its
            ``annotations`` dict is the window adaptive adversaries look
            through.
        pending_op: The operation the thread will perform on its next
            scheduled step (``None`` once finished/crashed).
        steps_taken: Number of shared-memory steps this thread has
            executed.
        result: The program's return value once finished.
    """

    def __init__(
        self,
        thread_id: int,
        program: Program,
        context: ThreadContext,
        name: str = "",
    ) -> None:
        self.thread_id = thread_id
        self.program = program
        self.context = context
        self.name = name or program.name
        self.state = ThreadState.RUNNABLE
        self.steps_taken = 0
        self.result: Any = None
        self._generator: ProgramGenerator = program.run(context)
        self.pending_op: Optional[Operation] = None
        self._prime()

    def _prime(self) -> None:
        """Advance the generator to its first yield (costs no step:
        everything before the first shared-memory operation is local
        computation)."""
        try:
            op = next(self._generator)
        except StopIteration as stop:
            self.state = ThreadState.FINISHED
            self.result = stop.value
            return
        self.pending_op = self._validate(op)

    def _validate(self, op: Any) -> Operation:
        if not isinstance(op, Operation):
            raise ProgramError(
                f"thread {self.thread_id} ({self.name}) yielded "
                f"{op!r}; programs must yield Operation descriptors"
            )
        return op

    # ------------------------------------------------------------------
    @property
    def is_runnable(self) -> bool:
        """Whether the scheduler may pick this thread."""
        return self.state is ThreadState.RUNNABLE

    def advance(self, result: Any) -> None:
        """Feed ``result`` of the executed pending op into the program and
        capture the next pending operation (or finish)."""
        if self.state is not ThreadState.RUNNABLE:
            raise ProgramError(
                f"cannot advance thread {self.thread_id} in state {self.state}"
            )
        self.steps_taken += 1
        try:
            op = self._generator.send(result)
        except StopIteration as stop:
            self.state = ThreadState.FINISHED
            self.pending_op = None
            self.result = stop.value
            return
        self.pending_op = self._validate(op)

    def crash(self) -> None:
        """Remove the thread from execution permanently (adversarial
        crash; the model allows up to n-1 of these)."""
        if self.state is ThreadState.RUNNABLE:
            self.state = ThreadState.CRASHED
            self.pending_op = None
            self._generator.close()

    def __repr__(self) -> str:
        return (
            f"SimThread(id={self.thread_id}, name={self.name!r}, "
            f"state={self.state.value}, steps={self.steps_taken})"
        )
