"""Deterministic, splittable random-number streams.

Every source of randomness in the library — thread-local coin flips,
gradient sampling noise, stochastic schedulers, Monte-Carlo experiment
seeds — draws from an :class:`RngStream`.  Streams are derived from a root
seed via :class:`numpy.random.SeedSequence` spawning, which guarantees
independence between streams and bit-for-bit reproducibility of whole
experiments from a single integer.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class RngStream:
    """A named, seeded random stream.

    Thin wrapper over :class:`numpy.random.Generator` that remembers its
    seed sequence so children can be spawned deterministically.

    Args:
        seed_seq: The seed sequence backing this stream.  Pass an ``int``
            to create a root stream.
    """

    def __init__(self, seed_seq) -> None:
        if isinstance(seed_seq, (int, np.integer)):
            seed_seq = np.random.SeedSequence(int(seed_seq))
        self.seed_seq: np.random.SeedSequence = seed_seq
        self.generator = np.random.Generator(np.random.PCG64(seed_seq))

    @classmethod
    def root(cls, seed: int) -> "RngStream":
        """Create a root stream from an integer seed."""
        return cls(np.random.SeedSequence(seed))

    def spawn(self, n: int) -> List["RngStream"]:
        """Derive ``n`` independent child streams."""
        return [RngStream(child) for child in self.seed_seq.spawn(n)]

    def spawn_one(self) -> "RngStream":
        """Derive a single independent child stream."""
        return self.spawn(1)[0]

    # -- draws -------------------------------------------------------------
    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        """Gaussian draw(s)."""
        return self.generator.normal(loc, scale, size)

    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        """Uniform draw(s)."""
        return self.generator.uniform(low, high, size)

    def integers(self, low: int, high: int, size=None):
        """Integer draw(s) in ``[low, high)``."""
        return self.generator.integers(low, high, size=size)

    def choice(self, options: Sequence, p=None):
        """Choose one element of ``options`` (optionally weighted)."""
        index = self.generator.choice(len(options), p=p)
        return options[int(index)]

    def shuffle(self, items: list) -> None:
        """In-place Fisher–Yates shuffle."""
        self.generator.shuffle(items)

    def __repr__(self) -> str:
        return f"RngStream(entropy={self.seed_seq.entropy!r})"


def spawn_streams(seed: int, n: int) -> List[RngStream]:
    """Create ``n`` independent streams from a root integer seed."""
    return RngStream.root(seed).spawn(n)
