"""Engine tracing policy — what a run materializes, decided up front.

Every simulated step *can* produce three kinds of artifact: a
:class:`~repro.shm.memory.LogRecord` in the memory's operation log, a
:class:`~repro.runtime.events.StepRecord` in the simulator, and (from the
programs themselves) semantic events such as
:class:`~repro.runtime.events.IterationRecord`.  Monte-Carlo ensembles
run the same program hundreds of times and usually need only a scalar per
run, so constructing those records is pure overhead on the hottest loop
in the codebase.

:class:`TraceConfig` is the single policy object the layers agree on:

* the **runtime** (:class:`~repro.runtime.simulator.Simulator`) keeps
  step records only when ``record_steps`` is set *or* the scheduler
  declares a live ``on_step`` hook (see :func:`live_hook` — benign
  schedulers inherit the base class no-op and cost nothing);
* the **shm** layer maps ``record_log`` onto
  ``SharedMemory(record_log=...)``;
* **metrics**-facing drivers map ``record_iterations`` onto their
  programs' per-iteration event emission (the contention and convergence
  analyses need those records; throughput benchmarks don't).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

#: Attribute set on the scheduler base class's default no-op hooks so the
#: engine can tell "inherited the do-nothing hook" apart from "genuinely
#: wants callbacks" without an isinstance check (schedulers are
#: duck-typed).
ENGINE_NOOP_ATTR = "_engine_noop"


def live_hook(obj: Any, name: str) -> Optional[Callable]:
    """Return ``obj.<name>`` if it is a real (non-default) hook.

    Returns ``None`` when the attribute is missing or is one of the
    scheduler base class's no-op defaults (marked with
    :data:`ENGINE_NOOP_ATTR`), so callers can bind hooks once at
    construction and skip the call entirely on the hot path.
    """
    hook = getattr(obj, name, None)
    if hook is None or getattr(hook, ENGINE_NOOP_ATTR, False):
        return None
    return hook


@dataclass(frozen=True)
class TraceConfig:
    """What one simulation run materializes.

    Attributes:
        record_steps: Keep a :class:`~repro.runtime.events.StepRecord` per
            scheduled step in ``Simulator.steps``.
        record_log: Keep the shared memory's totally ordered
            :class:`~repro.shm.memory.LogRecord` operation log.
        record_iterations: Programs emit their per-iteration semantic
            events (:class:`~repro.runtime.events.IterationRecord`) into
            the trace.
    """

    record_steps: bool = False
    record_log: bool = True
    record_iterations: bool = True

    @classmethod
    def full(cls) -> "TraceConfig":
        """Everything on — debugging, history checking, replay capture."""
        return cls(record_steps=True, record_log=True, record_iterations=True)

    @classmethod
    def analysis(cls) -> "TraceConfig":
        """What the convergence/contention analyses need: iteration
        records, no step records, no memory log (the default of the
        experiment drivers)."""
        return cls(record_steps=False, record_log=False, record_iterations=True)

    @classmethod
    def off(cls) -> "TraceConfig":
        """Nothing materialized — pure-throughput mode; only final
        memory state and thread results survive the run."""
        return cls(record_steps=False, record_log=False, record_iterations=False)

    def requires_step_records(self, scheduler: Any) -> bool:
        """Whether step records must be built for this run: either the
        policy keeps them, or ``scheduler`` has a live ``on_step`` hook
        that consumes them."""
        return self.record_steps or live_hook(scheduler, "on_step") is not None
