"""Deterministic discrete-event execution runtime.

This package realizes the paper's execution model: threads are coroutines
that yield one atomic shared-memory operation at a time, and a *scheduler*
(:mod:`repro.sched`) — playing the adversary — decides, step by step,
whose pending operation executes next.  Logical time is the number of
scheduled shared-memory steps, exactly the paper's notion of time.  Local
computation (gradient evaluation, coin flips) happens inside the coroutine
between yields and is free, also as in the model.

Determinism: all randomness flows from a single root seed through
:class:`repro.runtime.rng.RngStream` spawns, so any execution can be
replayed bit-for-bit.
"""

from repro.runtime.rng import RngStream, spawn_streams
from repro.runtime.clock import Clock
from repro.runtime.events import (
    CrashEvent,
    EpochEvent,
    Event,
    IterationRecord,
    SpawnEvent,
    StepRecord,
)
from repro.runtime.policy import TraceConfig, live_hook
from repro.runtime.program import Program, ThreadContext
from repro.runtime.thread import SimThread, ThreadState
from repro.runtime.simulator import Simulator

__all__ = [
    "TraceConfig",
    "live_hook",
    "RngStream",
    "spawn_streams",
    "Clock",
    "Event",
    "SpawnEvent",
    "CrashEvent",
    "EpochEvent",
    "StepRecord",
    "IterationRecord",
    "Program",
    "ThreadContext",
    "SimThread",
    "ThreadState",
    "Simulator",
]
