"""The discrete-event simulator — the adversary's game board.

Each call to :meth:`Simulator.step` plays one round of the paper's game:
the scheduler (the adversary) inspects the full simulation state — every
thread's pending operation, published annotations (local coins included),
and the shared memory — and picks which runnable thread's pending atomic
primitive executes next.  The primitive is applied to memory, the result
is fed back into the thread's coroutine, and logical time advances by one.

This realizes the *strong adaptive adversary*: nothing about the
algorithm's state is hidden from the scheduler, including randomness that
threads have already drawn.  Crashing up to ``n - 1`` threads is supported
via :meth:`crash`.

Engine notes (see DESIGN.md "Performance architecture"): scheduler hooks
are bound once at construction (benign schedulers that inherit the base
class no-ops cost nothing per step), the runnable-thread count is
maintained incrementally instead of rescanning every thread, and
:meth:`run_fast` is a batch loop that skips :class:`StepRecord`
construction entirely when no consumer (``record_steps`` or a live
``on_step`` hook) needs it.  :meth:`run_fast` executes the exact same
schedule as :meth:`run` — elision changes what is materialized, never
what happens.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import (
    NoRunnableThreadError,
    ProgramError,
    SchedulerError,
    SimulationError,
    ThreadCrashedError,
    ThreadFinishedError,
)
from repro.runtime.clock import Clock
from repro.runtime.events import CrashEvent, Event, SpawnEvent, StepRecord
from repro.runtime.policy import TraceConfig, live_hook
from repro.runtime.program import Program, ThreadContext
from repro.runtime.rng import RngStream
from repro.runtime.thread import SimThread, ThreadState
from repro.shm.memory import SharedMemory
from repro.shm.ops import DISPATCH_TABLE, Operation


class Simulator:
    """Drives programs over a shared memory under a scheduler.

    Args:
        memory: The shared memory all threads operate on.
        scheduler: Any object implementing the :class:`repro.sched.base.
            Scheduler` protocol (``select(sim) -> thread_id`` plus optional
            ``on_spawn``/``on_step`` hooks).
        seed: Root seed; each spawned thread receives an independent
            child stream as its local coins.
        record_steps: Keep a :class:`StepRecord` for every scheduled step
            in :attr:`steps`.  Off by default — semantic events in
            :attr:`trace` are usually enough and much lighter.
        trace_config: Optional :class:`TraceConfig` policy; when given,
            its ``record_steps`` overrides the ``record_steps`` argument
            (drivers thread one policy object through memory, simulator
            and programs).

    Example:
        >>> mem = SharedMemory(record_log=False)
        >>> sim = Simulator(mem, RoundRobinScheduler(), seed=7)
        >>> sim.spawn(my_program)              # doctest: +SKIP
        >>> sim.run()                          # doctest: +SKIP
    """

    def __init__(
        self,
        memory: SharedMemory,
        scheduler: Any,
        seed: int = 0,
        record_steps: bool = False,
        trace_config: Optional[TraceConfig] = None,
    ) -> None:
        self.memory = memory
        self.scheduler = scheduler
        self.clock = Clock()
        self.threads: List[SimThread] = []
        self.trace: List[Event] = []
        self.steps: List[StepRecord] = []
        if trace_config is None:
            trace_config = TraceConfig(
                record_steps=record_steps, record_log=memory.record_log
            )
        self.trace_config = trace_config
        self.record_steps = trace_config.record_steps
        #: Root seed, kept for checkpointing (a cut is only restorable
        #: into a simulation rebuilt from the same seed).
        self.seed = seed
        self._rng_root = RngStream.root(seed)
        self._crashed_count = 0
        self._runnable_count = 0
        self._analyzers: List[Any] = []
        # Telemetry (repro.obs) — None until attach_metrics(); the hot
        # loops only ever do bulk increments at run()/run_fast() exit.
        self.metrics: Optional[Any] = None
        self._m_steps: Optional[Any] = None
        self._m_spawned: Optional[Any] = None
        self._m_crashed: Optional[Any] = None
        # Hooks are resolved once: schedulers that inherit the base class
        # no-ops (or define no hook at all) pay nothing per spawn/step.
        self._on_spawn = live_hook(scheduler, "on_spawn")
        self._on_step = live_hook(scheduler, "on_step")

    # ------------------------------------------------------------------
    # Telemetry (repro.obs — bulk counters, hot loops untouched)
    # ------------------------------------------------------------------
    def attach_metrics(self, metrics: Any) -> None:
        """Wire a :class:`repro.obs.registry.MetricsRegistry` in.

        ``None`` and the null backend detach cleanly; a live registry
        gets ``repro_sim_*`` counters that are incremented in bulk at
        :meth:`run`/:meth:`run_fast` exit and per event for the rare
        spawn/crash transitions — never inside the step loop.  Also
        forwards to :meth:`SharedMemory.attach_metrics` for per-opcode
        operation counters.
        """
        from repro.obs.registry import live_registry

        registry = live_registry(metrics)
        self.metrics = registry
        if registry is None:
            self._m_steps = self._m_spawned = self._m_crashed = None
        else:
            self._m_steps = registry.counter(
                "repro_sim_steps_total", "shared-memory steps executed"
            )
            self._m_spawned = registry.counter(
                "repro_sim_threads_spawned_total", "threads spawned"
            )
            self._m_crashed = registry.counter(
                "repro_sim_threads_crashed_total", "threads crashed by the adversary"
            )
        self.memory.attach_metrics(registry)

    # ------------------------------------------------------------------
    # Thread management
    # ------------------------------------------------------------------
    def spawn(self, program: Program, name: str = "") -> SimThread:
        """Create a thread running ``program`` and register it with the
        scheduler.  Returns the new :class:`SimThread`."""
        thread_id = len(self.threads)
        context = ThreadContext(thread_id, self._rng_root.spawn_one(), self)
        thread = SimThread(thread_id, program, context, name=name)
        self.threads.append(thread)
        if thread.is_runnable:
            self._runnable_count += 1
        self.trace.append(
            SpawnEvent(time=self.clock.now, thread_id=thread_id, name=thread.name)
        )
        if self._on_spawn is not None:
            self._on_spawn(self, thread)
        if self._m_spawned is not None:
            self._m_spawned.inc()
        return thread

    def crash(self, thread_id: int) -> None:
        """Adversarially crash a thread (it takes no further steps).

        The model allows the adversary to crash at most ``n - 1`` threads;
        exceeding that budget raises :class:`SimulationError`.  Crashing a
        thread twice raises :class:`ThreadCrashedError`; asking to crash a
        thread that already *finished* raises :class:`ThreadFinishedError`
        (a finished thread is beyond the adversary's reach).
        """
        thread = self._thread(thread_id)
        if thread.state is ThreadState.CRASHED:
            raise ThreadCrashedError(thread_id)
        if thread.state is ThreadState.FINISHED:
            raise ThreadFinishedError(thread_id)
        if self._crashed_count + 1 >= len(self.threads):
            raise SimulationError(
                "the adversary may crash at most n - 1 of the n threads"
            )
        thread.crash()
        self._crashed_count += 1
        self._runnable_count -= 1
        self.trace.append(CrashEvent(time=self.clock.now, thread_id=thread_id))
        if self._m_crashed is not None:
            self._m_crashed.inc()

    def _thread(self, thread_id: int) -> SimThread:
        if not 0 <= thread_id < len(self.threads):
            raise SchedulerError(f"no such thread: {thread_id}")
        return self.threads[thread_id]

    # ------------------------------------------------------------------
    # State inspection (what the adaptive adversary may look at)
    # ------------------------------------------------------------------
    @property
    def runnable_ids(self) -> List[int]:
        """Ids of threads the scheduler may pick right now."""
        return [t.thread_id for t in self.threads if t.is_runnable]

    @property
    def runnable_count(self) -> int:
        """Number of threads the scheduler may pick right now (O(1))."""
        return self._runnable_count

    @property
    def crashed_count(self) -> int:
        """Number of threads the adversary has crashed so far (O(1)).

        Fault injectors consult this for budget accounting, and recovery
        drivers poll it between :meth:`run_fast` chunks to detect fresh
        crashes without scanning the trace."""
        return self._crashed_count

    @property
    def is_done(self) -> bool:
        """True when no thread can take another step."""
        return self._runnable_count == 0

    @property
    def now(self) -> int:
        """Logical time — shared-memory steps executed so far."""
        return self.clock.now

    def state_digest(self) -> str:
        """Deterministic digest of the current between-steps cut (shared
        memory image, clock, thread lifecycles).  Two simulators standing
        at the same cut digest identically — the cheap equality the
        durable checkpoint layer certifies restores with."""
        from repro.durable.checkpoint import state_digest

        return state_digest(self)

    def annotations(self, thread_id: int) -> Dict[str, Any]:
        """The published thread-local state of ``thread_id`` (the window
        through which adaptive adversaries see local coins)."""
        return self._thread(thread_id).context.annotations

    def results(self) -> Dict[int, Any]:
        """Return values of all finished threads, keyed by thread id."""
        return {
            t.thread_id: t.result
            for t in self.threads
            if t.state is ThreadState.FINISHED
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> StepRecord:
        """Play one adversary round: schedule, execute, advance.

        Returns the :class:`StepRecord` of the executed step.

        Raises:
            NoRunnableThreadError: If every thread has finished or crashed.
            SchedulerError: If the scheduler picked a non-runnable thread.
        """
        if self._runnable_count == 0:
            raise NoRunnableThreadError("all threads finished or crashed")
        choice = self.scheduler.select(self)
        thread = self._thread(choice)
        if not thread.is_runnable:
            raise SchedulerError(
                f"scheduler picked thread {choice} in state {thread.state.value}"
            )
        op = thread.pending_op
        assert op is not None  # runnable threads always have a pending op
        time = self.clock.tick()
        result = self.memory.execute(op, time=time, thread_id=thread.thread_id)
        thread.advance(result)
        if not thread.is_runnable:
            self._runnable_count -= 1
        record = StepRecord(time=time, thread_id=thread.thread_id, op=op, result=result)
        if self.record_steps:
            self.steps.append(record)
        if self._on_step is not None:
            self._on_step(self, record)
        return record

    def run(
        self,
        max_steps: Optional[int] = None,
        stop: Optional[Callable[["Simulator"], bool]] = None,
    ) -> int:
        """Step until every thread finishes (or crashes), a ``stop``
        predicate fires, or ``max_steps`` elapse.

        Returns the number of steps executed by this call.
        """
        executed = 0
        while self._runnable_count:
            if max_steps is not None and executed >= max_steps:
                break
            if stop is not None and stop(self):
                break
            self.step()
            executed += 1
        if self._m_steps is not None and executed:
            self._m_steps.inc(executed)
        return executed

    def run_fast(self, max_steps: Optional[int] = None) -> int:
        """Batch execution loop for ensemble/throughput runs.

        Semantically identical to ``run(max_steps)`` — same scheduler
        decisions, same memory effects, same thread results — but when no
        consumer needs per-step records (``record_steps`` off and no live
        ``on_step`` hook) the loop skips :class:`StepRecord` construction
        and per-step attribute lookups entirely.  Falls back to
        :meth:`run` whenever step records are required.

        Returns the number of steps executed by this call.
        """
        if self.record_steps or self._on_step is not None:
            return self.run(max_steps=max_steps)
        # Engine-internal fast path: the loop below reaches into Clock,
        # SimThread and SharedMemory internals (all same-engine classes)
        # to avoid per-step method-call and bookkeeping overhead, while
        # preserving step()'s exact observable semantics: same scheduler
        # consultations, same clock values seen by programs, same memory
        # effects and sequence numbers, same error types.
        executed = 0
        remaining = -1 if max_steps is None else max_steps
        select = self.scheduler.select
        memory = self.memory
        record_log = memory.record_log
        execute = memory.execute
        values = memory._values
        table = DISPATCH_TABLE
        table_len = len(table)
        clock = self.clock
        threads = self.threads
        runnable = ThreadState.RUNNABLE
        applied_fast = 0
        try:
            while self._runnable_count and executed != remaining:
                choice = select(self)
                try:
                    thread = threads[choice]
                    if choice < 0:
                        raise IndexError(choice)
                except IndexError:
                    raise SchedulerError(f"no such thread: {choice}") from None
                if thread.state is not runnable:
                    raise SchedulerError(
                        f"scheduler picked thread {choice} in state "
                        f"{thread.state.value}"
                    )
                op = thread.pending_op
                time = clock._now
                clock._now = time + 1
                if record_log:
                    result = execute(op, time=time, thread_id=thread.thread_id)
                else:
                    opcode = op.opcode
                    if 0 <= opcode < table_len:
                        result = table[opcode](op, values)
                    else:
                        result = memory._apply(op)
                    applied_fast += 1
                thread.steps_taken += 1
                try:
                    next_op = thread._generator.send(result)
                except StopIteration as stop:
                    thread.state = ThreadState.FINISHED
                    thread.pending_op = None
                    thread.result = stop.value
                    self._runnable_count -= 1
                else:
                    if not isinstance(next_op, Operation):
                        raise ProgramError(
                            f"thread {thread.thread_id} ({thread.name}) "
                            f"yielded {next_op!r}; programs must yield "
                            f"Operation descriptors"
                        )
                    thread.pending_op = next_op
                executed += 1
        finally:
            # The direct-dispatch branch bypasses memory.execute; restore
            # its sequence counter so any later logged operation numbers
            # correctly.
            if applied_fast:
                memory._seq += applied_fast
        if self._m_steps is not None and executed:
            self._m_steps.inc(executed)
        return executed

    # ------------------------------------------------------------------
    # Analysis (repro.analysis — dynamic checkers over the op stream)
    # ------------------------------------------------------------------
    def attach_analyzer(self, analyzer: Any) -> None:
        """Register a :class:`repro.analysis.sanitizer.Analyzer`.

        Analyzers consume the shared-memory operation log *between*
        execution chunks (see :meth:`run_analyzed`), never per step — the
        hot loops of :meth:`run` and :meth:`run_fast` are untouched and a
        simulator with no analyzers pays nothing.  The analyzer's
        ``on_attach`` validates its requirements (e.g. ``record_log``).
        """
        analyzer.on_attach(self)
        self._analyzers.append(analyzer)

    def run_analyzed(
        self, max_steps: Optional[int] = None, chunk: int = 1024
    ) -> int:
        """Run to quiescence, draining attached analyzers between chunks.

        Executes the exact same schedule as :meth:`run_fast` (chunking is
        invisible to schedulers and programs: the loop merely pauses to
        let analyzers read the already-materialized operation log), then
        gives every analyzer a ``finish(sim)`` pass at quiescence.
        Degenerates to one :meth:`run_fast` call when no analyzers are
        attached.

        Returns the number of steps executed by this call.
        """
        if not self._analyzers:
            return self.run_fast(max_steps=max_steps)
        if chunk < 1:
            raise SimulationError(f"chunk must be >= 1, got {chunk}")
        executed = 0
        while self._runnable_count:
            budget = chunk
            if max_steps is not None:
                budget = min(budget, max_steps - executed)
                if budget <= 0:
                    break
            executed += self.run_fast(max_steps=budget)
            for analyzer in self._analyzers:
                analyzer.drain(self)
        for analyzer in self._analyzers:
            analyzer.finish(self)
        return executed

    def __repr__(self) -> str:
        return (
            f"Simulator(threads={len(self.threads)}, now={self.clock.now}, "
            f"scheduler={type(self.scheduler).__name__})"
        )
