"""The discrete-event simulator — the adversary's game board.

Each call to :meth:`Simulator.step` plays one round of the paper's game:
the scheduler (the adversary) inspects the full simulation state — every
thread's pending operation, published annotations (local coins included),
and the shared memory — and picks which runnable thread's pending atomic
primitive executes next.  The primitive is applied to memory, the result
is fed back into the thread's coroutine, and logical time advances by one.

This realizes the *strong adaptive adversary*: nothing about the
algorithm's state is hidden from the scheduler, including randomness that
threads have already drawn.  Crashing up to ``n - 1`` threads is supported
via :meth:`crash`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import (
    NoRunnableThreadError,
    SchedulerError,
    SimulationError,
    ThreadCrashedError,
)
from repro.runtime.clock import Clock
from repro.runtime.events import CrashEvent, Event, SpawnEvent, StepRecord
from repro.runtime.program import Program, ThreadContext
from repro.runtime.rng import RngStream
from repro.runtime.thread import SimThread, ThreadState
from repro.shm.memory import SharedMemory


class Simulator:
    """Drives programs over a shared memory under a scheduler.

    Args:
        memory: The shared memory all threads operate on.
        scheduler: Any object implementing the :class:`repro.sched.base.
            Scheduler` protocol (``select(sim) -> thread_id`` plus optional
            ``on_spawn``/``on_step`` hooks).
        seed: Root seed; each spawned thread receives an independent
            child stream as its local coins.
        record_steps: Keep a :class:`StepRecord` for every scheduled step
            in :attr:`steps`.  Off by default — semantic events in
            :attr:`trace` are usually enough and much lighter.

    Example:
        >>> mem = SharedMemory(record_log=False)
        >>> sim = Simulator(mem, RoundRobinScheduler(), seed=7)
        >>> sim.spawn(my_program)              # doctest: +SKIP
        >>> sim.run()                          # doctest: +SKIP
    """

    def __init__(
        self,
        memory: SharedMemory,
        scheduler,
        seed: int = 0,
        record_steps: bool = False,
    ) -> None:
        self.memory = memory
        self.scheduler = scheduler
        self.clock = Clock()
        self.threads: List[SimThread] = []
        self.trace: List[Event] = []
        self.steps: List[StepRecord] = []
        self.record_steps = record_steps
        self._rng_root = RngStream.root(seed)
        self._crashed_count = 0

    # ------------------------------------------------------------------
    # Thread management
    # ------------------------------------------------------------------
    def spawn(self, program: Program, name: str = "") -> SimThread:
        """Create a thread running ``program`` and register it with the
        scheduler.  Returns the new :class:`SimThread`."""
        thread_id = len(self.threads)
        context = ThreadContext(thread_id, self._rng_root.spawn_one(), self)
        thread = SimThread(thread_id, program, context, name=name)
        self.threads.append(thread)
        self.trace.append(
            SpawnEvent(time=self.clock.now, thread_id=thread_id, name=thread.name)
        )
        hook = getattr(self.scheduler, "on_spawn", None)
        if hook is not None:
            hook(self, thread)
        return thread

    def crash(self, thread_id: int) -> None:
        """Adversarially crash a thread (it takes no further steps).

        The model allows the adversary to crash at most ``n - 1`` threads;
        exceeding that budget raises :class:`SimulationError`.
        """
        thread = self._thread(thread_id)
        if not thread.is_runnable:
            raise ThreadCrashedError(thread_id)
        if self._crashed_count + 1 >= len(self.threads):
            raise SimulationError(
                "the adversary may crash at most n - 1 of the n threads"
            )
        thread.crash()
        self._crashed_count += 1
        self.trace.append(CrashEvent(time=self.clock.now, thread_id=thread_id))

    def _thread(self, thread_id: int) -> SimThread:
        if not 0 <= thread_id < len(self.threads):
            raise SchedulerError(f"no such thread: {thread_id}")
        return self.threads[thread_id]

    # ------------------------------------------------------------------
    # State inspection (what the adaptive adversary may look at)
    # ------------------------------------------------------------------
    @property
    def runnable_ids(self) -> List[int]:
        """Ids of threads the scheduler may pick right now."""
        return [t.thread_id for t in self.threads if t.is_runnable]

    @property
    def is_done(self) -> bool:
        """True when no thread can take another step."""
        return not any(t.is_runnable for t in self.threads)

    @property
    def now(self) -> int:
        """Logical time — shared-memory steps executed so far."""
        return self.clock.now

    def annotations(self, thread_id: int) -> Dict[str, Any]:
        """The published thread-local state of ``thread_id`` (the window
        through which adaptive adversaries see local coins)."""
        return self._thread(thread_id).context.annotations

    def results(self) -> Dict[int, Any]:
        """Return values of all finished threads, keyed by thread id."""
        return {
            t.thread_id: t.result
            for t in self.threads
            if t.state is ThreadState.FINISHED
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> StepRecord:
        """Play one adversary round: schedule, execute, advance.

        Returns the :class:`StepRecord` of the executed step.

        Raises:
            NoRunnableThreadError: If every thread has finished or crashed.
            SchedulerError: If the scheduler picked a non-runnable thread.
        """
        if self.is_done:
            raise NoRunnableThreadError("all threads finished or crashed")
        choice = self.scheduler.select(self)
        thread = self._thread(choice)
        if not thread.is_runnable:
            raise SchedulerError(
                f"scheduler picked thread {choice} in state {thread.state.value}"
            )
        op = thread.pending_op
        assert op is not None  # runnable threads always have a pending op
        time = self.clock.tick()
        result = self.memory.execute(op, time=time, thread_id=thread.thread_id)
        thread.advance(result)
        record = StepRecord(time=time, thread_id=thread.thread_id, op=op, result=result)
        if self.record_steps:
            self.steps.append(record)
        hook = getattr(self.scheduler, "on_step", None)
        if hook is not None:
            hook(self, record)
        return record

    def run(
        self,
        max_steps: Optional[int] = None,
        stop: Optional[Callable[["Simulator"], bool]] = None,
    ) -> int:
        """Step until every thread finishes (or crashes), a ``stop``
        predicate fires, or ``max_steps`` elapse.

        Returns the number of steps executed by this call.
        """
        executed = 0
        while not self.is_done:
            if max_steps is not None and executed >= max_steps:
                break
            if stop is not None and stop(self):
                break
            self.step()
            executed += 1
        return executed

    def __repr__(self) -> str:
        return (
            f"Simulator(threads={len(self.threads)}, now={self.clock.now}, "
            f"scheduler={type(self.scheduler).__name__})"
        )
