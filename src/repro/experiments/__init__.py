"""Experiment drivers — one module per reproduced claim.

The paper is a theory paper: its "evaluation" is a set of theorems.
Each driver here regenerates one of them as a measured table/figure
(see DESIGN.md §5 for the index):

======  =======================  ==========================================
  id    paper artifact           claim regenerated
======  =======================  ==========================================
  E1    Theorem 3.1              sequential failure probability ≤ bound
  E2    Theorem 5.1 / Section 5  fixed-α adversarial slowdown is Ω(τ)
  E3    Lemma 6.2                < n bad iterations per Kn-start window
  E4    Lemma 6.4                Σ 1{τ_{t+m} ≥ m} ≤ 2√(τ_max·n)
  E5    Thm 6.5 / Cor 6.7        lock-free failure probability ≤ bound
  E6    Thm 6.3 vs Cor 6.7       new √(τ·n) bound beats linear-τ bound
  E7    Corollary 7.1            FullSGD reaches E‖r−x*‖ ≤ √ε
  E8    Section 8                lower/upper preconditions complementary;
                                 τ_avg ≤ 2n
  F1    Figure 1                 applied/pending update matrix of a trace
  A1    Section 1/8 ablations    write-vs-FAA, fixed-vs-decreasing α, ...
======  =======================  ==========================================

Every driver exposes a config dataclass with ``quick()`` (seconds, used
by tests and default benches) and ``full()`` (minutes, for
EXPERIMENTS.md numbers) presets, and a ``run(config)`` returning an
:class:`~repro.experiments.runner.ExperimentResult`.
"""

from repro.experiments.runner import ExperimentResult, seed_range, sweep

__all__ = ["ExperimentResult", "sweep", "seed_range"]
