"""E9 — "Our lower bound applies to these works as well."

The related-work discussion contrasts this paper's adversarial model
with applied mitigations that "examine the 'staleness' of an update
immediately before applying it, and adjust hyperparameters accordingly"
(staleness-aware async SGD, Zhang et al.), and asserts that the
Theorem 5.1 lower bound covers them too.

This experiment measures that assertion.  Three contestants on the
Section-5 workload, under the stale-gradient adversary at a sweep of τ:

1. **plain** — fixed-α Algorithm 1 (the Theorem 5.1 victim);
2. **staleness-aware vs a weak adversary** — the mitigated algorithm
   against an adversary that freezes the victim *before* it reads the
   iteration counter: the damping sees the true staleness and
   neutralizes the stale update (slowdown ≈ 1);
3. **staleness-aware vs the adaptive adversary** — the same algorithm,
   but the adversary (who sees the algorithm's phases, as the strong
   model allows) freezes the victim *after* the counter read: the
   staleness estimate itself is now stale, the damping is bypassed, and
   the Ω(τ) slowdown returns.

Acceptance: (2) stays near 1 across the sweep while (1) and (3) grow
linearly in τ — i.e. the mitigation helps only against weak adversaries,
exactly as the paper asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.epoch_sgd import EpochSGDProgram, run_lock_free_sgd
from repro.core.sequential import run_sequential_sgd
from repro.core.staleness_aware import StalenessAwareSGDProgram
from repro.experiments.runner import ExperimentResult
from repro.metrics.report import Table
from repro.metrics.trace import iterations_to_stay_below
from repro.objectives.noise import ZeroNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.stale_attack import StaleGradientAttack


@dataclass
class E9Config:
    """Parameters of the E9 sweep."""

    alpha: float = 0.1
    damping: float = 1.0
    delays: List[int] = field(default_factory=lambda: [40, 80, 120, 160])
    iterations: int = 2500
    x0_scale: float = 10.0
    target_relative: float = 1e-4
    seed: int = 17

    @classmethod
    def quick(cls) -> "E9Config":
        return cls(delays=[40, 80, 120], iterations=2000)

    @classmethod
    def full(cls) -> "E9Config":
        return cls(delays=[40, 80, 120, 160, 240], iterations=4500)


def run(config: E9Config) -> ExperimentResult:
    """Execute E9: mitigation vs weak and adaptive adversaries."""
    objective = IsotropicQuadratic(dim=1, noise=ZeroNoise())
    x0 = np.array([config.x0_scale])
    target = config.target_relative * config.x0_scale

    baseline = run_sequential_sgd(
        objective, alpha=config.alpha, iterations=config.iterations,
        x0=x0, seed=config.seed,
    )
    baseline_time = iterations_to_stay_below(baseline.distances, target)

    def one_run(aware: bool, freeze_phase: str, tau: int) -> Optional[float]:
        def factory(model, counter, thread_index):
            if aware:
                return StalenessAwareSGDProgram(
                    model, counter, objective, config.alpha,
                    config.iterations, damping=config.damping,
                )
            return EpochSGDProgram(
                model, counter, objective, config.alpha, config.iterations
            )

        result = run_lock_free_sgd(
            objective,
            StaleGradientAttack(
                victim=1, runner=0, delay=tau, freeze_phase=freeze_phase
            ),
            num_threads=2,
            step_size=config.alpha,
            iterations=config.iterations,
            x0=x0,
            seed=config.seed,
            program_factory=factory,
        )
        attacked_time = iterations_to_stay_below(result.distances, target)
        if attacked_time is None or not baseline_time:
            return None
        return attacked_time / baseline_time

    table = Table(
        [
            "tau",
            "plain fixed-alpha",
            "staleness-aware vs weak adv",
            "staleness-aware vs adaptive adv",
        ],
        title=(
            f"E9: the lower bound covers staleness-aware SGD too "
            f"(alpha={config.alpha}, damping={config.damping})"
        ),
    )
    xs: List[float] = []
    plain_series: List[float] = []
    weak_series: List[float] = []
    adaptive_series: List[float] = []
    for tau in config.delays:
        plain = one_run(False, "update", tau)
        weak = one_run(True, "observe", tau)
        adaptive = one_run(True, "update", tau)
        table.add_row(
            [
                tau,
                plain if plain is not None else "never",
                weak if weak is not None else "never",
                adaptive if adaptive is not None else "never",
            ]
        )
        if None not in (plain, weak, adaptive):
            xs.append(float(tau))
            plain_series.append(plain)
            weak_series.append(weak)
            adaptive_series.append(adaptive)

    passed = len(xs) >= 3
    if passed:
        taus = np.array(xs)
        adaptive_arr = np.array(adaptive_series)
        weak_arr = np.array(weak_series)
        # Adaptive slowdown must grow linearly (like plain); the weak-
        # adversary slowdown must stay comparatively flat and small.
        correlation = float(np.corrcoef(taus, adaptive_arr)[0, 1])
        passed = bool(
            correlation > 0.95
            and weak_arr.max() < 0.5 * adaptive_arr.max()
            and adaptive_arr[-1] > 2.0
        )
    return ExperimentResult(
        experiment_id="E9",
        title="Related-work claim — staleness-aware damping falls to the "
        "adaptive adversary (lower bound applies)",
        table=table,
        xs=xs,
        series={
            "plain fixed-alpha": plain_series,
            "aware vs weak adversary": weak_series,
            "aware vs adaptive adversary": adaptive_series,
        },
        passed=passed,
        notes=(
            "acceptance: adaptive-adversary slowdown linear in tau "
            "(correlation > 0.95) and at least 2x at the largest tau, while "
            "the weak-adversary slowdown stays below half of it — the "
            "mitigation only beats adversaries that cannot see the phases"
        ),
    )
