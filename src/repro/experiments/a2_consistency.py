"""A2 — the price of consistency: snapshot views vs Algorithm 1.

Algorithm 1 reads the model entry by entry and pays for the resulting
view inconsistency in its convergence bound (the √d·‖x_t − v_t‖ terms).
The shared-memory alternative — consistent double-collect snapshots over
a versioned array — makes every view exact but pays in *steps*:

* a scan costs ≥ 3d steps instead of d, plus 3d per retry;
* retries grow with contention (every concurrent update invalidates a
  collect), so the overhead worsens exactly when parallelism should pay;
* the scan is only obstruction-free, so implementations need a retry
  budget + inconsistent fallback.

This ablation quantifies that trade on the same workload: steps per
iteration, scan retries and fallbacks, and final accuracy for snapshot
SGD vs lock-free SGD across thread counts.  Acceptance: both converge;
the snapshot variant costs strictly more steps per iteration at every n;
and its overhead grows with n (measured via retries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.epoch_sgd import run_lock_free_sgd
from repro.core.snapshot_sgd import run_snapshot_sgd
from repro.experiments.runner import ExperimentResult
from repro.metrics.report import Table
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.random_sched import RandomScheduler


@dataclass
class A2Config:
    """Parameters of the consistency ablation."""

    dim: int = 3
    noise_sigma: float = 0.3
    x0_scale: float = 2.0
    step_size: float = 0.05
    iterations: int = 300
    thread_counts: List[int] = field(default_factory=lambda: [1, 2, 4, 8])
    epsilon: float = 0.25
    max_scan_retries: int = 8
    seed: int = 31

    @classmethod
    def quick(cls) -> "A2Config":
        return cls(thread_counts=[1, 4, 8], iterations=250)

    @classmethod
    def full(cls) -> "A2Config":
        return cls(thread_counts=[1, 2, 4, 8, 16], iterations=1000)


def run(config: A2Config) -> ExperimentResult:
    """Execute A2: snapshot vs lock-free across thread counts."""
    objective = IsotropicQuadratic(
        dim=config.dim, noise=GaussianNoise(config.noise_sigma)
    )
    x0 = np.full(config.dim, config.x0_scale)

    table = Table(
        [
            "n",
            "lock-free steps/iter",
            "snapshot steps/iter",
            "overhead",
            "scan retries",
            "fallbacks",
            "lock-free final",
            "snapshot final",
        ],
        title=(
            f"A2: price of consistency (d={config.dim}, "
            f"T={config.iterations}, retry budget {config.max_scan_retries})"
        ),
    )
    xs: List[float] = []
    lock_free_cost: List[float] = []
    snapshot_cost: List[float] = []
    retries_series: List[float] = []
    passed = True
    for n in config.thread_counts:
        lock_free = run_lock_free_sgd(
            objective, RandomScheduler(seed=config.seed), num_threads=n,
            step_size=config.step_size, iterations=config.iterations,
            x0=x0, seed=config.seed, epsilon=config.epsilon,
        )
        snapshot = run_snapshot_sgd(
            objective, RandomScheduler(seed=config.seed), num_threads=n,
            step_size=config.step_size, iterations=config.iterations,
            x0=x0, seed=config.seed, epsilon=config.epsilon,
            max_scan_retries=config.max_scan_retries,
        )
        lf_cost = lock_free.sim_steps / max(1, lock_free.iterations)
        sn_cost = snapshot.sim_steps / max(1, snapshot.iterations)
        lf_final = objective.distance_to_opt(lock_free.x_final)
        sn_final = objective.distance_to_opt(snapshot.x_final)
        table.add_row(
            [
                n,
                lf_cost,
                sn_cost,
                sn_cost / lf_cost,
                snapshot.scan_retries,
                snapshot.inconsistent_fallbacks,
                lf_final,
                sn_final,
            ]
        )
        xs.append(float(n))
        lock_free_cost.append(lf_cost)
        snapshot_cost.append(sn_cost)
        retries_series.append(float(snapshot.scan_retries))
        passed = passed and sn_cost > lf_cost
        passed = passed and lock_free.succeeded and snapshot.succeeded

    if len(retries_series) >= 2:
        passed = passed and retries_series[-1] > retries_series[0]

    return ExperimentResult(
        experiment_id="A2",
        title="Price of consistency — snapshot views cost steps and "
        "degrade with contention; Algorithm 1's inconsistent reads don't",
        table=table,
        xs=xs,
        series={
            "lock-free steps/iter": lock_free_cost,
            "snapshot steps/iter": snapshot_cost,
        },
        passed=passed,
        notes=(
            "acceptance: both variants converge; snapshot SGD spends "
            "strictly more steps per iteration at every n; scan retries "
            "grow from the serial to the most contended run"
        ),
    )
