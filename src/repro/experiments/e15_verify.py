"""E15 — exhaustive small-scope certification (DESIGN.md §16).

The verification-tier experiment: enumerate every Mazurkiewicz-trace-
distinct schedule of the fetch&add-family variants at enumerable scope
(sleep-set POR over the concrete op footprints), certify the sanitizer
and the applicable lemma certificates on each, and demand

* zero counterexamples on clean variants — a *universal* certificate at
  scope, upgrading "no violation observed" to "no violation possible";
* at least one replay-verified, sanitizer-flagged counterexample on
  each seeded mutant — the oracle-agreement check pinning the
  sanitizer's recall;
* a POR reduction factor (full interleaving tree vs. reduced walk) of
  at least 2×, the evidence the pruning is doing real work;
* every SMT lemma query proved (Lemma 6.4 over the (n, τ_max) grid,
  Theorem 5.1 per α).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.experiments.runner import ExperimentResult
from repro.metrics.report import Table
from repro.verify.engine import (
    VERIFY_VARIANTS,
    VerifyConfig,
    VerifyScope,
    run_verify,
)
from repro.verify.report import cell_passed

#: The acceptance floor for the POR reduction factor.
MIN_REDUCTION_FACTOR = 2.0


@dataclass
class E15Config:
    """Parameters of the E15 verification grid."""

    variants: List[str] = field(default_factory=lambda: list(VERIFY_VARIANTS))
    threads: int = 2
    iterations: int = 1
    num_seeds: int = 1
    base_seed: int = 1
    jobs: int = 1

    @classmethod
    def quick(cls) -> "E15Config":
        return cls()

    @classmethod
    def full(cls) -> "E15Config":
        return cls(num_seeds=2)


def to_verify_config(config: E15Config) -> VerifyConfig:
    """The engine config an :class:`E15Config` denotes."""
    return VerifyConfig(
        variants=tuple(config.variants),
        seeds=tuple(
            range(config.base_seed, config.base_seed + config.num_seeds)
        ),
        scope=VerifyScope(
            threads=config.threads, iterations=config.iterations
        ),
        jobs=config.jobs,
    )


def run(config: E15Config) -> ExperimentResult:
    """Execute E15: the variant x seed enumeration grid + SMT queries."""
    report = run_verify(to_verify_config(config))
    reduction_ok = all(
        o.reduction_factor >= MIN_REDUCTION_FACTOR
        for o in report.outcomes
        if o.interleavings
    )
    table = Table(
        [
            "variant",
            "seed",
            "expect",
            "schedules",
            "full tree",
            "reduction",
            "counterex",
            "verdict",
        ],
        title=(
            f"E15: exhaustive certification (n={config.threads}, "
            f"T={config.iterations}, {config.num_seeds} seed(s)/variant)"
        ),
    )
    for o in report.outcomes:
        table.add_row(
            [
                o.variant,
                o.seed,
                o.expectation,
                o.schedules,
                o.interleavings or "-",
                f"{o.reduction_factor:.2f}x" if o.reduction_factor else "-",
                o.counterexample_count or "none",
                "pass" if cell_passed(o) else "FAIL",
            ]
        )
    # The figure: per variant, schedules explored in the reduced vs the
    # full walk (xs index the variant panel).
    xs = list(range(len(report.outcomes)))
    series: Dict[str, List[float]] = {
        "por_schedules": [float(o.schedules) for o in report.outcomes],
        "full_interleavings": [
            float(o.interleavings) for o in report.outcomes
        ],
    }
    smt_proved = sum(1 for r in report.smt_results if r.proved)
    return ExperimentResult(
        experiment_id="E15",
        title="exhaustive small-scope certification — every schedule "
        "enumerated, every lemma query discharged",
        table=table,
        xs=[float(x) for x in xs],
        series=series,
        passed=report.passed and reduction_ok,
        notes=(
            "acceptance: clean variants certify across every trace-distinct "
            "schedule, each mutant yields a replay-verified counterexample "
            "the sanitizer flags, POR reduction >= "
            f"{MIN_REDUCTION_FACTOR:.0f}x, and all "
            f"{len(report.smt_results)} SMT queries prove "
            f"({smt_proved} proved)"
        ),
    )
