"""E12 — "Why is Asynchronous SGD Fast in Practice?": sparsity.

Section 8 argues the asynchrony gap α²HLMC√d·(...) is negligible in
practice partly because "gradients are often sparse, meaning that d is
low" — concurrent iterations touch mostly disjoint coordinates, so the
views v_t barely miss anything that matters.

Method: least-squares problems with exactly k non-zeros per data row
(gradient density k/d from 25% to 100%), identical in every other
respect, run lock-free under the same contention.  Measured per density:

* the mean **view error** ‖x_t − v_t‖ over iterations — the quantity the
  analysis bounds via Eq. (9); it should grow with density;
* the mean **update collision rate** — the fraction of an iteration's
  touched coordinates also touched by a concurrent iteration;
* final distance to x* (all configurations should still converge).

Acceptance: mean view error and collision rate strictly increase from
the sparsest to the densest configuration, and every configuration
converges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.epoch_sgd import run_lock_free_sgd
from repro.core.results import accumulator_trajectory
from repro.experiments.runner import ExperimentResult
from repro.metrics.report import Table
from repro.objectives.sparse_features import (
    SparseFeatureLeastSquares,
    make_sparse_regression,
)
from repro.sched.random_sched import RandomScheduler


@dataclass
class E12Config:
    """Parameters of the E12 sparsity sweep."""

    dim: int = 8
    num_points: int = 80
    nonzeros: List[int] = field(default_factory=lambda: [2, 4, 8])
    num_threads: int = 6
    iterations: int = 400
    step_size: float = 0.02
    num_runs: int = 4
    seed: int = 5100

    @classmethod
    def quick(cls) -> "E12Config":
        return cls(num_runs=3)

    @classmethod
    def full(cls) -> "E12Config":
        return cls(nonzeros=[1, 2, 4, 8], num_runs=10, iterations=1000)


def _view_error_and_collisions(result) -> tuple:
    """Mean ‖x_t − v_t‖ and mean per-iteration collision fraction."""
    trajectory = accumulator_trajectory(result.x0, result.records)
    errors = []
    collisions = []
    records = result.records
    for t, record in enumerate(records):
        errors.append(float(np.linalg.norm(trajectory[t] - record.view)))
        mine = {
            j
            for j, u in enumerate(record.update_times or [])
            if u is not None
        }
        if not mine:
            continue
        concurrent_touch = set()
        for other in records:
            if other is record or not record.overlaps(other):
                continue
            concurrent_touch.update(
                j
                for j, u in enumerate(other.update_times or [])
                if u is not None
            )
        collisions.append(len(mine & concurrent_touch) / len(mine))
    return (
        float(np.mean(errors)) if errors else 0.0,
        float(np.mean(collisions)) if collisions else 0.0,
    )


def run(config: E12Config) -> ExperimentResult:
    """Execute E12: density sweep at matched contention."""
    table = Table(
        [
            "density k/d",
            "mean view error ||x_t - v_t||",
            "collision rate",
            "final ||x - x*||",
        ],
        title=(
            f"E12: gradient sparsity vs view inconsistency "
            f"(d={config.dim}, n={config.num_threads}, "
            f"{config.num_runs} runs/cell)"
        ),
    )
    xs: List[float] = []
    view_errors: List[float] = []
    collision_rates: List[float] = []
    passed = True
    for k in config.nonzeros:
        errors = []
        collisions = []
        finals = []
        for offset in range(config.num_runs):
            seed = config.seed + offset
            design, targets, _ = make_sparse_regression(
                config.num_points, config.dim, k, seed=seed
            )
            objective = SparseFeatureLeastSquares(design, targets)
            x0 = objective.x_star + np.ones(config.dim)
            result = run_lock_free_sgd(
                objective,
                RandomScheduler(seed=seed),
                num_threads=config.num_threads,
                step_size=config.step_size,
                iterations=config.iterations,
                x0=x0,
                seed=seed,
            )
            error, collision = _view_error_and_collisions(result)
            errors.append(error)
            collisions.append(collision)
            finals.append(objective.distance_to_opt(result.x_final))
        density = k / config.dim
        mean_error = float(np.mean(errors))
        mean_collision = float(np.mean(collisions))
        mean_final = float(np.mean(finals))
        table.add_row([density, mean_error, mean_collision, mean_final])
        xs.append(density)
        view_errors.append(mean_error)
        collision_rates.append(mean_collision)
        # Converged: well below the starting distance ||ones|| = sqrt(d).
        # (Sparse designs are worse-conditioned, so the criterion is
        # relative progress, not an absolute target.)
        passed = passed and mean_final < 0.5 * np.sqrt(config.dim)

    if len(view_errors) >= 2:
        passed = passed and view_errors[-1] > view_errors[0]
        passed = passed and collision_rates[-1] > collision_rates[0]

    return ExperimentResult(
        experiment_id="E12",
        title="Section 8 — sparse gradients shrink the view inconsistency "
        "asynchrony must pay for",
        table=table,
        xs=xs,
        series={
            "mean view error": view_errors,
            "collision rate": collision_rates,
        },
        passed=bool(passed),
        notes=(
            "acceptance: mean view error and update-collision rate both "
            "increase from the sparsest to the densest configuration, and "
            "every configuration converges"
        ),
    )
