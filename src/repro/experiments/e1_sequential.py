"""E1 — Theorem 3.1: the sequential martingale failure bound.

Claim: sequential SGD with α = cεϑ/M² satisfies
P(F_T) ≤ M²/(c²εϑT)·log(e‖x₀−x*‖²/ε) — in particular the failure
probability decays like 1/T.

Method: run an ensemble of seeded sequential runs to the largest T in
the sweep, record each run's success-region hitting time, and read off
the measured P(F_T) for every T from the hitting-time distribution.
Acceptance: the measured failure fraction (its Wilson lower limit) never
exceeds the bound.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.core.sequential import run_sequential_sgd
from repro.experiments.ensemble import run_ensemble
from repro.experiments.runner import ExperimentResult, seed_range
from repro.metrics.report import Table
from repro.metrics.stats import wilson_interval
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.theory.bounds import theorem_3_1_failure_bound, theorem_3_1_step_size


@dataclass
class E1Config:
    """Parameters of the E1 ensemble."""

    dim: int = 1
    curvature: float = 1.0
    noise_sigma: float = 1.0
    x0_scale: float = 3.0
    epsilon: float = 0.5
    vartheta: float = 1.0
    horizons: List[int] = field(default_factory=lambda: [50, 100, 200, 400, 800])
    num_runs: int = 100
    base_seed: int = 100
    radius_slack: float = 2.0
    jobs: int = 1

    @classmethod
    def quick(cls) -> "E1Config":
        return cls(num_runs=60, horizons=[50, 100, 200, 400])

    @classmethod
    def full(cls) -> "E1Config":
        return cls(num_runs=400, horizons=[50, 100, 200, 400, 800, 1600])


def _problem(config: E1Config) -> Tuple[IsotropicQuadratic, np.ndarray, float]:
    """(objective, x0, alpha) — rebuilt identically in every worker."""
    objective = IsotropicQuadratic(
        dim=config.dim,
        curvature=config.curvature,
        noise=GaussianNoise(config.noise_sigma),
    )
    x0 = np.full(config.dim, config.x0_scale)
    radius = config.radius_slack * objective.distance_to_opt(x0)
    second_moment = objective.second_moment_bound(radius)
    alpha = theorem_3_1_step_size(
        objective.strong_convexity, second_moment, config.epsilon, config.vartheta
    )
    return objective, x0, alpha


def _hit_time_worker(config: E1Config, seed: int) -> float:
    """One seeded sequential run → its hitting time (inf = never hit)."""
    objective, x0, alpha = _problem(config)
    result = run_sequential_sgd(
        objective,
        alpha=alpha,
        iterations=max(config.horizons),
        x0=x0,
        seed=seed,
        epsilon=config.epsilon,
        stop_on_hit=True,
    )
    return math.inf if result.hit_time is None else float(result.hit_time)


def run(config: E1Config) -> ExperimentResult:
    """Execute E1 and compare measured P(F_T) with the Theorem 3.1 bound."""
    objective, x0, alpha = _problem(config)
    x0_distance = objective.distance_to_opt(x0)
    radius = config.radius_slack * x0_distance
    second_moment = objective.second_moment_bound(radius)

    hits = np.array(
        run_ensemble(
            functools.partial(_hit_time_worker, config),
            seed_range(config.base_seed, config.num_runs),
            jobs=config.jobs,
        )
    )

    table = Table(
        ["T", "measured P(F_T)", "wilson low", "wilson high", "Thm 3.1 bound", "ok"],
        title=f"E1: sequential failure probability (alpha={alpha:.5g}, "
        f"{config.num_runs} runs)",
    )
    measured_series: List[float] = []
    bound_series: List[float] = []
    passed = True
    for horizon in config.horizons:
        failures = int(np.count_nonzero(hits > horizon))
        probability = failures / config.num_runs
        low, high = wilson_interval(failures, config.num_runs)
        bound = theorem_3_1_failure_bound(
            iterations=horizon,
            epsilon=config.epsilon,
            strong_convexity=objective.strong_convexity,
            second_moment=second_moment,
            x0_distance=x0_distance,
            vartheta=config.vartheta,
        )
        ok = low <= bound
        passed = passed and ok
        measured_series.append(probability)
        bound_series.append(bound)
        table.add_row([horizon, probability, low, high, bound, ok])

    return ExperimentResult(
        experiment_id="E1",
        title="Theorem 3.1 — sequential SGD failure probability decays as 1/T",
        table=table,
        xs=[float(h) for h in config.horizons],
        series={"measured P(F_T)": measured_series, "Thm 3.1 bound": bound_series},
        passed=passed,
        notes=(
            "acceptance: Wilson lower limit of the measured failure "
            "fraction stays below the theoretical bound at every T"
        ),
    )
