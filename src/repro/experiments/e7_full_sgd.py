"""E7 — Corollary 7.1: FullSGD (Algorithm 2) reaches the target in
O(T·log(α·2·M·n/√ε)) iterations.

Claims measured:

1. After its epoch schedule, FullSGD's output satisfies
   E‖r − x*‖ ≤ √ε — even under adversarial delay scheduling, thanks to
   the halving step size and epoch-isolated updates.
2. The epoch count matches the prescription ⌈log₂(2·α₀·M·n/√ε)⌉ + 1,
   so total work is O(T·log(α₀·2·M·n/√ε)).

Method: for a sweep of targets ε, run a seed ensemble of FullSGD under
both a benign random scheduler and a delay adversary; report the mean
final distance against √ε and the executed epoch count against the
formula.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.core.full_sgd import FullSGD, recommended_num_epochs
from repro.experiments.ensemble import run_ensemble
from repro.experiments.runner import ExperimentResult
from repro.metrics.report import Table
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.priority_delay import PriorityDelayScheduler
from repro.sched.random_sched import RandomScheduler


@dataclass
class E7Config:
    """Parameters of the E7 ensemble."""

    dim: int = 2
    noise_sigma: float = 0.3
    x0_scale: float = 2.0
    num_threads: int = 3
    alpha0: float = 0.1
    iterations_per_epoch: int = 400
    epsilons: List[float] = field(default_factory=lambda: [0.2, 0.1, 0.05])
    num_runs: int = 8
    adversary_delay: int = 40
    base_seed: int = 1500
    jobs: int = 1

    @classmethod
    def quick(cls) -> "E7Config":
        return cls(epsilons=[0.2, 0.05], num_runs=5, iterations_per_epoch=300)

    @classmethod
    def full(cls) -> "E7Config":
        return cls(
            epsilons=[0.2, 0.1, 0.05, 0.02],
            num_runs=20,
            iterations_per_epoch=800,
        )


def _make_scheduler(config: E7Config, kind: str, seed: int):
    if kind == "random":
        return RandomScheduler(seed=seed)
    return PriorityDelayScheduler(
        victims=[0], delay=config.adversary_delay, seed=seed
    )


def _full_sgd_worker(
    config: E7Config, epsilon: float, kind: str, seed: int
) -> Tuple[float, float]:
    """One seeded FullSGD run → (final distance, rejected update count)."""
    objective = IsotropicQuadratic(
        dim=config.dim, noise=GaussianNoise(config.noise_sigma)
    )
    driver = FullSGD(
        objective,
        num_threads=config.num_threads,
        epsilon=epsilon,
        alpha0=config.alpha0,
        iterations_per_epoch=config.iterations_per_epoch,
        x0=np.full(config.dim, config.x0_scale),
    )
    out = driver.run(_make_scheduler(config, kind, seed), seed=seed)
    return float(out.distance), float(out.rejected_updates)


def run(config: E7Config) -> ExperimentResult:
    """Execute E7 across targets and schedulers."""
    objective = IsotropicQuadratic(
        dim=config.dim, noise=GaussianNoise(config.noise_sigma)
    )
    x0 = np.full(config.dim, config.x0_scale)
    radius = max(1.0, 2.0 * objective.distance_to_opt(x0))
    gradient_bound = math.sqrt(objective.second_moment_bound(radius))

    table = Table(
        [
            "epsilon",
            "scheduler",
            "epochs (formula)",
            "mean ||r-x*||",
            "target sqrt(eps)",
            "ok",
            "mean rejected",
        ],
        title=(
            f"E7: FullSGD convergence (n={config.num_threads}, "
            f"alpha0={config.alpha0}, T={config.iterations_per_epoch}, "
            f"{config.num_runs} runs/cell)"
        ),
    )
    xs: List[float] = []
    measured: List[float] = []
    targets: List[float] = []
    passed = True
    for epsilon in config.epsilons:
        formula_epochs = recommended_num_epochs(
            config.alpha0, gradient_bound, config.num_threads, epsilon
        )
        schedulers = [
            ("random", "random"),
            (f"priority-delay({config.adversary_delay})", "priority-delay"),
        ]
        for name, kind in schedulers:
            driver = FullSGD(
                objective,
                num_threads=config.num_threads,
                epsilon=epsilon,
                alpha0=config.alpha0,
                iterations_per_epoch=config.iterations_per_epoch,
                x0=x0,
            )
            cell = run_ensemble(
                functools.partial(_full_sgd_worker, config, epsilon, kind),
                range(config.base_seed, config.base_seed + config.num_runs),
                jobs=config.jobs,
            )
            distances = [distance for distance, _rejected in cell]
            rejected = [rejected_count for _distance, rejected_count in cell]
            mean_distance = float(np.mean(distances))
            target = math.sqrt(epsilon)
            ok = mean_distance <= target
            passed = passed and ok and driver.num_epochs == formula_epochs
            table.add_row(
                [
                    epsilon,
                    name,
                    f"{driver.num_epochs} ({formula_epochs})",
                    mean_distance,
                    target,
                    ok,
                    float(np.mean(rejected)),
                ]
            )
            if name == "random":
                xs.append(epsilon)
                measured.append(mean_distance)
                targets.append(target)

    return ExperimentResult(
        experiment_id="E7",
        title="Corollary 7.1 — FullSGD reaches E||r-x*|| <= sqrt(eps) in "
        "O(T log(alpha*2*M*n/sqrt(eps))) iterations",
        table=table,
        xs=xs,
        series={"mean ||r-x*||": measured, "sqrt(eps) target": targets},
        passed=passed,
        notes=(
            "acceptance: mean final distance below sqrt(eps) under both the "
            "benign and the adversarial scheduler, and the executed epoch "
            "count equals the Corollary 7.1 formula"
        ),
    )
