"""E3 — Lemma 6.2: fewer than n bad iterations per Kn-start window.

Claim: fix K and any interval I during which exactly K·n consecutive
SGD iterations start; call an iteration *bad* if more than K·n
iterations start between its start and end.  Then fewer than n bad
iterations complete during I.

Method: run Algorithm 1 under schedulers of increasing hostility
(round-robin, random, bounded-delay with aggressive victim starvation)
and classify every window of every trace.  Acceptance: zero violations
anywhere — this is a combinatorial fact, so it must hold exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.epoch_sgd import run_lock_free_sgd
from repro.experiments.runner import ExperimentResult
from repro.metrics.report import Table
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.bounded_delay import BoundedDelayScheduler
from repro.sched.random_sched import RandomScheduler
from repro.sched.round_robin import RoundRobinScheduler
from repro.theory.contention import lemma_6_2_max_bad, lemma_6_2_violations, tau_max


@dataclass
class E3Config:
    """Parameters of the E3 trace collection."""

    dim: int = 3
    thread_counts: List[int] = field(default_factory=lambda: [2, 4, 8])
    window_multipliers: List[int] = field(default_factory=lambda: [1, 2, 4])
    iterations: int = 400
    step_size: float = 0.05
    seed: int = 11

    @classmethod
    def quick(cls) -> "E3Config":
        return cls(thread_counts=[2, 4], iterations=250)

    @classmethod
    def full(cls) -> "E3Config":
        return cls(thread_counts=[2, 4, 8, 16], iterations=1500)


def _schedulers(num_threads: int, seed: int):
    """The scheduler gauntlet a trace set is collected under."""
    victims = list(range(max(1, num_threads // 2)))
    return [
        ("round-robin", RoundRobinScheduler()),
        ("random", RandomScheduler(seed=seed)),
        (
            "bounded-delay(64, starving)",
            BoundedDelayScheduler(64, seed=seed, victims=victims),
        ),
    ]


def run(config: E3Config) -> ExperimentResult:
    """Execute E3: classify windows of every collected trace."""
    objective = IsotropicQuadratic(
        dim=config.dim, noise=GaussianNoise(0.5)
    )
    x0 = np.full(config.dim, 2.0)

    table = Table(
        ["scheduler", "n", "K", "windows", "max bad", "limit (n)", "tau_max", "ok"],
        title="E3: Lemma 6.2 good/bad iteration structure",
    )
    passed = True
    worst_fraction: List[float] = []
    labels: List[float] = []
    row_index = 0
    for num_threads in config.thread_counts:
        for name, scheduler in _schedulers(num_threads, config.seed):
            result = run_lock_free_sgd(
                objective,
                scheduler,
                num_threads=num_threads,
                step_size=config.step_size,
                iterations=config.iterations,
                x0=x0,
                seed=config.seed,
            )
            trace_tau_max = tau_max(result.records)
            for multiplier in config.window_multipliers:
                violations = lemma_6_2_violations(
                    result.records, multiplier, num_threads
                )
                max_bad, windows = lemma_6_2_max_bad(
                    result.records, multiplier, num_threads
                )
                ok = not violations
                passed = passed and ok
                table.add_row(
                    [
                        name,
                        num_threads,
                        multiplier,
                        windows,
                        max_bad,
                        num_threads,
                        trace_tau_max,
                        ok,
                    ]
                )
                if windows:
                    labels.append(float(row_index))
                    worst_fraction.append(max_bad / num_threads)
                row_index += 1

    return ExperimentResult(
        experiment_id="E3",
        title="Lemma 6.2 — < n bad iterations complete per Kn-start window",
        table=table,
        xs=labels,
        series={"max bad / n (must stay < 1)": worst_fraction},
        passed=passed,
        notes=(
            "acceptance: zero windows with >= n bad completing iterations, "
            "on every scheduler/thread-count/K combination (combinatorial "
            "claim, must hold exactly)"
        ),
    )
