"""E10 — Section 8's momentum remark, measured.

Two claims orbit momentum in the discussion section:

1. The paper cites Mitliagkas et al., *Asynchrony begets momentum*: plain
   asynchronous SGD behaves like sequential SGD with an implicit momentum
   term that grows with the number of threads.  We measure it directly:
   run lock-free Algorithm 1 with n ∈ {1, 2, 4, 8, 16} threads, fit the
   sequential heavy-ball β whose trajectory best matches each run, and
   check that β̂ grows from 0 (n = 1) toward 1 — the qualitative shape of
   their queueing-model prediction β ≈ (n−1)/n.

2. "An alternative approach, which we did not consider here, would be to
   introduce a 'momentum' term" — we ship the lock-free
   :class:`~repro.core.momentum.MomentumSGDProgram` and verify it
   converges under asynchrony (the prerequisite for that alternative to
   be on the table at all), reporting its hitting time next to plain
   Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.epoch_sgd import run_lock_free_sgd
from repro.core.momentum import MomentumSGDProgram, fit_implicit_momentum
from repro.experiments.runner import ExperimentResult
from repro.metrics.report import Table
from repro.objectives.noise import GaussianNoise, ZeroNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.random_sched import RandomScheduler
from repro.sched.round_robin import RoundRobinScheduler


@dataclass
class E10Config:
    """Parameters of the E10 measurement."""

    alpha: float = 0.12
    thread_counts: List[int] = field(default_factory=lambda: [1, 2, 4, 8, 16])
    iterations: int = 250
    x0_scale: float = 5.0
    beta_grid_points: int = 20
    momentum_beta: float = 0.5
    momentum_iterations: int = 400
    seed: int = 23

    @classmethod
    def quick(cls) -> "E10Config":
        return cls()

    @classmethod
    def full(cls) -> "E10Config":
        return cls(
            thread_counts=[1, 2, 4, 8, 16, 32],
            iterations=400,
            beta_grid_points=40,
        )


def run(config: E10Config) -> ExperimentResult:
    """Execute E10: implicit-momentum fit + lock-free momentum check."""
    objective = IsotropicQuadratic(dim=2, noise=ZeroNoise())
    x0 = np.array([config.x0_scale, -config.x0_scale])
    betas = np.linspace(0.0, 0.95, config.beta_grid_points)

    table = Table(
        ["n threads", "fitted implicit beta", "Mitliagkas (n-1)/n"],
        title=(
            f"E10a: asynchrony begets momentum (alpha={config.alpha}, "
            f"round-robin, noiseless quadratic)"
        ),
    )
    xs: List[float] = []
    fitted: List[float] = []
    reference: List[float] = []
    for n in config.thread_counts:
        result = run_lock_free_sgd(
            objective,
            RoundRobinScheduler(),
            num_threads=n,
            step_size=config.alpha,
            iterations=config.iterations,
            x0=x0,
            seed=config.seed,
        )
        beta_hat = fit_implicit_momentum(
            result.distances,
            objective,
            config.alpha,
            len(result.distances) - 1,
            x0,
            betas=betas,
            seeds=1,
        )
        table.add_row([n, beta_hat, (n - 1) / n])
        xs.append(float(n))
        fitted.append(beta_hat)
        reference.append((n - 1) / n)

    # Part 2: lock-free momentum SGD converges under asynchrony.
    noisy = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))
    epsilon = 0.25

    def factory(model, counter, thread_index):
        return MomentumSGDProgram(
            model, counter, noisy, config.alpha / 2.0,
            config.momentum_beta, config.momentum_iterations,
        )

    momentum_run = run_lock_free_sgd(
        noisy,
        RandomScheduler(seed=config.seed),
        num_threads=4,
        step_size=config.alpha / 2.0,
        iterations=config.momentum_iterations,
        x0=x0,
        seed=config.seed,
        epsilon=epsilon,
        program_factory=factory,
    )
    plain_run = run_lock_free_sgd(
        noisy,
        RandomScheduler(seed=config.seed),
        num_threads=4,
        step_size=config.alpha / 2.0,
        iterations=config.momentum_iterations,
        x0=x0,
        seed=config.seed,
        epsilon=epsilon,
    )
    momentum_table = Table(
        ["algorithm", "hit time", "final distance"],
        title=f"E10b: lock-free momentum (beta={config.momentum_beta}) vs "
        "plain Algorithm 1, same alpha/adversary",
    )
    momentum_table.add_row(
        [
            f"momentum (beta={config.momentum_beta})",
            momentum_run.hit_time if momentum_run.hit_time is not None
            else "never",
            noisy.distance_to_opt(momentum_run.x_final),
        ]
    )
    momentum_table.add_row(
        [
            "plain Algorithm 1",
            plain_run.hit_time if plain_run.hit_time is not None else "never",
            noisy.distance_to_opt(plain_run.x_final),
        ]
    )

    monotone = all(b2 >= b1 - 1e-9 for b1, b2 in zip(fitted, fitted[1:]))
    passed = (
        monotone
        and fitted[0] <= 0.05
        and fitted[-1] >= 0.5
        and momentum_run.succeeded
    )
    return ExperimentResult(
        experiment_id="E10",
        title="Section 8 — asynchrony begets momentum; explicit momentum "
        "converges lock-free",
        table=table,
        xs=xs,
        series={
            "fitted implicit beta": fitted,
            "(n-1)/n reference": reference,
        },
        passed=passed,
        notes=(
            momentum_table.render()
            + "\n\nacceptance: fitted implicit momentum is 0 at n=1, "
            "non-decreasing in n, and >= 0.5 at the largest n (the "
            "Mitliagkas shape); the explicit lock-free momentum variant "
            "reaches the success region"
        ),
    )
