"""E8 — Section 8: the lower and upper bounds are complementary, and
τ_avg ≤ 2n in practice.

Claims measured:

1. **Complementarity.**  The Theorem 5.1 attack needs
   τ ≥ log(α/2)/log(1−α); the Theorem 6.5 upper bound needs
   α²·H·L·M·C·√d < 1 with C = 2√(τ·n).  The Section-8 discussion notes
   these preconditions cannot hold simultaneously — for every (α, τ)
   cell of a parameter grid at most one regime applies.  We sweep the
   grid and count overlap cells (must be zero).
2. **τ_avg ≤ 2n** (Gibson–Gramoli): measured average interval contention
   stays below 2n on every scheduler, including adversarial ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.epoch_sgd import run_lock_free_sgd
from repro.experiments.runner import ExperimentResult
from repro.metrics.report import Table
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.bounded_delay import BoundedDelayScheduler
from repro.sched.priority_delay import PriorityDelayScheduler
from repro.sched.random_sched import RandomScheduler
from repro.sched.round_robin import RoundRobinScheduler
from repro.theory.bounds import theorem_6_5_precondition
from repro.theory.contention import tau_avg as measure_tau_avg
from repro.theory.lower_bound import max_tolerable_delay


@dataclass
class E8Config:
    """Parameters of the E8 grid and trace collection."""

    # Grid (part 1) — analytic constants of the reference workload.
    epsilon: float = 0.25
    strong_convexity: float = 1.0
    lipschitz: float = 1.0
    second_moment: float = 20.0
    dim: int = 2
    num_threads: int = 4
    alphas: List[float] = field(
        default_factory=lambda: [float(a) for a in np.geomspace(1e-4, 0.5, 15)]
    )
    taus: List[float] = field(
        default_factory=lambda: [float(t) for t in np.geomspace(1, 4096, 13)]
    )
    # Trace collection (part 2).
    trace_thread_counts: List[int] = field(default_factory=lambda: [2, 4, 8])
    trace_iterations: int = 300
    seed: int = 2100

    @classmethod
    def quick(cls) -> "E8Config":
        return cls(trace_thread_counts=[2, 4], trace_iterations=200)

    @classmethod
    def full(cls) -> "E8Config":
        return cls(
            alphas=[float(a) for a in np.geomspace(1e-5, 0.5, 30)],
            taus=[float(t) for t in np.geomspace(1, 65536, 25)],
            trace_thread_counts=[2, 4, 8, 16],
            trace_iterations=1200,
        )


def run(config: E8Config) -> ExperimentResult:
    """Execute E8 (region map + τ_avg measurements)."""
    gradient_bound = math.sqrt(config.second_moment)
    c = config.strong_convexity
    overlap_cells = 0
    lower_cells = 0
    upper_cells = 0
    neither_cells = 0
    for alpha in config.alphas:
        # Lower bound reachable only for alpha in (0,1) with contraction.
        try:
            lower_threshold = max_tolerable_delay(alpha)
        except Exception:  # alpha outside (0,1)
            lower_threshold = math.inf
        normalizer = (
            2 * alpha * c * config.epsilon - alpha**2 * config.second_moment
        )
        for tau in config.taus:
            lower_active = tau >= lower_threshold
            if normalizer > 0:
                lipschitz_h = 2.0 * math.sqrt(config.epsilon) / normalizer
                contention = 2.0 * math.sqrt(tau * config.num_threads)
                upper_active = theorem_6_5_precondition(
                    alpha,
                    lipschitz_h,
                    config.lipschitz,
                    gradient_bound,
                    contention,
                    config.dim,
                )
            else:
                upper_active = False
            if lower_active and upper_active:
                overlap_cells += 1
            elif lower_active:
                lower_cells += 1
            elif upper_active:
                upper_cells += 1
            else:
                neither_cells += 1

    total_cells = len(config.alphas) * len(config.taus)
    table = Table(
        ["region", "cells", "fraction"],
        title=(
            f"E8a: (alpha, tau) regime map over {total_cells} cells "
            f"(n={config.num_threads}, d={config.dim}, "
            f"M^2={config.second_moment})"
        ),
    )
    table.add_row(["lower bound active (adversary wins)", lower_cells,
                   lower_cells / total_cells])
    table.add_row(["upper bound applies (Thm 6.5 converges)", upper_cells,
                   upper_cells / total_cells])
    table.add_row(["neither guarantee", neither_cells,
                   neither_cells / total_cells])
    table.add_row(["BOTH (must be empty)", overlap_cells,
                   overlap_cells / total_cells])

    # Part 2: tau_avg <= 2n on real traces.
    objective = IsotropicQuadratic(dim=config.dim, noise=GaussianNoise(0.3))
    x0 = np.full(config.dim, 1.5)
    tau_table = Table(
        ["scheduler", "n", "tau_avg", "2n", "ok"],
        title="E8b: average interval contention vs the Gibson-Gramoli 2n bound",
    )
    tau_ok = True
    xs: List[float] = []
    tau_measured: List[float] = []
    tau_limit: List[float] = []
    for num_threads in config.trace_thread_counts:
        schedulers = [
            ("round-robin", RoundRobinScheduler()),
            ("random", RandomScheduler(seed=config.seed)),
            ("bounded-delay(32)", BoundedDelayScheduler(32, seed=config.seed,
                                                        victims=[0])),
            ("priority-delay(60)", PriorityDelayScheduler(victims=[0], delay=60,
                                                          seed=config.seed)),
        ]
        for name, scheduler in schedulers:
            result = run_lock_free_sgd(
                objective,
                scheduler,
                num_threads=num_threads,
                step_size=0.02,
                iterations=config.trace_iterations,
                x0=x0,
                seed=config.seed,
            )
            measured = measure_tau_avg(result.records)
            ok = measured <= 2.0 * num_threads
            tau_ok = tau_ok and ok
            tau_table.add_row([name, num_threads, measured, 2 * num_threads, ok])
        xs.append(float(num_threads))
        tau_measured.append(measured)
        tau_limit.append(2.0 * num_threads)

    passed = overlap_cells == 0 and tau_ok
    return ExperimentResult(
        experiment_id="E8",
        title="Section 8 — lower/upper preconditions complementary; "
        "tau_avg <= 2n",
        table=table,
        xs=xs,
        series={"tau_avg (worst shown)": tau_measured, "2n limit": tau_limit},
        passed=passed,
        notes=(
            tau_table.render()
            + "\n\nacceptance: zero grid cells where both the adversary's "
            "delay condition and the Theorem 6.5 precondition hold, and "
            "tau_avg <= 2n on every measured trace"
        ),
    )
