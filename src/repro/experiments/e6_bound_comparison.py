"""E6 — Corollary 6.7 vs Theorem 6.3: the new bound beats prior art.

Claim (the paper's headline comparison): the prior asynchronous bound
(De Sa et al., NIPS'15 — Theorem 6.3 here) pays a *linear* delay penalty
2LMτ√ε, while this paper pays 4LM√(τ_max·n)·√d·√ε.  Whenever
τ_max > 4·n·d the new denominator is strictly smaller, so the new bound
prescribes a *larger* step size and a *smaller* failure probability —
and the crossover sits exactly at τ* = 4·n·d.

Method: an analytic sweep of both bounds over τ (everything else fixed),
locating the measured crossover and comparing it with 4·n·d; plus a
simulation spot-check at a τ beyond the crossover confirming that SGD
run with the (larger) Eq. 12 step size converges faster than with the
(smaller) Theorem 6.3 step size — the practical content of "converges
faster and with a wider range of parameters than previously known".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.epoch_sgd import run_lock_free_sgd
from repro.experiments.runner import ExperimentResult
from repro.metrics.report import Table
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.bounded_delay import BoundedDelayScheduler
from repro.theory.bounds import (
    corollary_6_7_failure_bound,
    corollary_6_7_step_size,
    theorem_6_3_failure_bound,
    theorem_6_3_step_size,
)


@dataclass
class E6Config:
    """Parameters of the E6 comparison."""

    dim: int = 2
    num_threads: int = 4
    noise_sigma: float = 0.2
    x0_scale: float = 1.5
    epsilon: float = 0.25
    # Analytic horizon: large enough that both bounds stay non-vacuous
    # (< 1) across the whole tau sweep, so the crossover is visible.
    horizon: int = 200_000
    taus: List[float] = field(
        default_factory=lambda: [1, 4, 16, 32, 64, 128, 256, 512]
    )
    spot_check_runs: int = 5
    spot_check_iterations: int = 6000
    radius_slack: float = 2.0
    base_seed: int = 900

    @classmethod
    def quick(cls) -> "E6Config":
        return cls(spot_check_runs=3, spot_check_iterations=4000)

    @classmethod
    def full(cls) -> "E6Config":
        return cls(
            taus=[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024],
            spot_check_runs=10,
            spot_check_iterations=12000,
        )


def run(config: E6Config) -> ExperimentResult:
    """Execute E6: analytic crossover + simulation spot check."""
    objective = IsotropicQuadratic(
        dim=config.dim, noise=GaussianNoise(config.noise_sigma)
    )
    x0 = np.full(config.dim, config.x0_scale)
    x0_distance = objective.distance_to_opt(x0)
    radius = config.radius_slack * x0_distance
    second_moment = objective.second_moment_bound(radius)
    lipschitz = objective.lipschitz_expected
    c = objective.strong_convexity
    predicted_crossover = 4.0 * config.num_threads * config.dim

    table = Table(
        [
            "tau",
            "alpha old (Thm 6.3)",
            "alpha new (Eq.12)",
            "bound old",
            "bound new",
            "new wins",
        ],
        title=(
            f"E6: bound comparison (n={config.num_threads}, d={config.dim}, "
            f"T={config.horizon}; predicted crossover tau* = 4nd = "
            f"{predicted_crossover:.0f})"
        ),
    )
    old_bounds: List[float] = []
    new_bounds: List[float] = []
    crossover_measured: Optional[float] = None
    previous_tau: Optional[float] = None
    for tau in config.taus:
        alpha_old = theorem_6_3_step_size(
            c, second_moment, lipschitz, tau, config.epsilon
        )
        alpha_new = corollary_6_7_step_size(
            c,
            second_moment,
            lipschitz,
            tau,
            config.num_threads,
            config.dim,
            config.epsilon,
        )
        bound_old = theorem_6_3_failure_bound(
            config.horizon,
            config.epsilon,
            c,
            second_moment,
            lipschitz,
            tau,
            x0_distance,
        )
        bound_new = corollary_6_7_failure_bound(
            config.horizon,
            config.epsilon,
            c,
            second_moment,
            lipschitz,
            tau,
            config.num_threads,
            config.dim,
            x0_distance,
        )
        wins = bound_new < bound_old and bound_old < 1.0
        if wins and crossover_measured is None and previous_tau is not None:
            crossover_measured = math.sqrt(previous_tau * tau)  # geometric mid
        previous_tau = tau
        old_bounds.append(bound_old)
        new_bounds.append(bound_new)
        table.add_row([tau, alpha_old, alpha_new, bound_old, bound_new, wins])

    # Simulation spot check beyond the crossover: the larger Eq.12 step
    # size should reach the success region in fewer iterations.
    spot_tau = max(config.taus)
    alpha_old = theorem_6_3_step_size(
        c, second_moment, lipschitz, spot_tau, config.epsilon
    )
    alpha_new = corollary_6_7_step_size(
        c,
        second_moment,
        lipschitz,
        spot_tau,
        config.num_threads,
        config.dim,
        config.epsilon,
    )

    def mean_hit(alpha: float, seed_offset: int) -> float:
        hits = []
        for offset in range(config.spot_check_runs):
            seed = config.base_seed + seed_offset + offset
            result = run_lock_free_sgd(
                objective,
                BoundedDelayScheduler(16, seed=seed, victims=[0]),
                num_threads=config.num_threads,
                step_size=alpha,
                iterations=config.spot_check_iterations,
                x0=x0,
                seed=seed,
                epsilon=config.epsilon,
            )
            if result.hit_time is not None:
                hits.append(result.hit_time)
        return float(np.mean(hits)) if hits else float("inf")

    hit_new = mean_hit(alpha_new, 0)
    hit_old = mean_hit(alpha_old, 1000)
    spot_ok = hit_new <= hit_old
    spot_note = (
        f"spot check at tau={spot_tau}: mean hit with Eq.12 alpha "
        f"({alpha_new:.5g}) = {hit_new:.0f} iters vs Thm 6.3 alpha "
        f"({alpha_old:.5g}) = {hit_old:.0f} iters -> new "
        f"{'faster' if spot_ok else 'SLOWER'}"
    )

    crossover_ok = (
        crossover_measured is not None
        and predicted_crossover / 4.0
        <= crossover_measured
        <= predicted_crossover * 4.0
    )
    passed = crossover_ok and spot_ok
    return ExperimentResult(
        experiment_id="E6",
        title="Cor 6.7 vs Thm 6.3 — sqrt(tau*n) bound beats linear-in-tau "
        "past tau* = 4nd",
        table=table,
        xs=[float(t) for t in config.taus],
        series={"Thm 6.3 bound (old)": old_bounds, "Cor 6.7 bound (new)": new_bounds},
        passed=passed,
        notes=(
            f"measured crossover ~ tau = {crossover_measured}; predicted 4nd "
            f"= {predicted_crossover:.0f}\n{spot_note}\n"
            "acceptance: crossover within 4x of 4nd, and the Eq.12 step size "
            "converges at least as fast in simulation"
        ),
    )
