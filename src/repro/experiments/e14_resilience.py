"""E14 — the resilience grid: every variant's survival envelope.

E13 measures how every algorithm variant *converges* under adversarial
scheduling; E14 measures whether it *survives* silent data corruption.
The grid is algorithm × corruption plan × seed: each cell runs the
variant under a seeded value-corruption fault plan (bit flips, NaN/Inf
poison, duplicated/dropped writes — :func:`repro.faults.campaign.
corruption_specs`) with the self-healing ladder of
:func:`repro.heal.rollback.run_with_healing` switched on, and records
what the ladder did: detector firings per rule, rollbacks, retries,
degradations taken, recovery latencies, final health and final
``||x − x*||``.

Cells run through :func:`repro.experiments.ensemble.run_ensemble`, so
the grid parallelizes across processes (``--jobs``) and journals for
kill/resume with byte-identical reports either way — the properties the
CI heal job pins.

Acceptance: no cell is abandoned and every cell converges — corruption
is *survived*, not merely observed.  The report additionally counts
``recovered_cells`` (detected → rolled back → finished healthy), the
number CI asserts to be ≥ 1.
"""

from __future__ import annotations

import functools
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.algorithm import algorithm_names
from repro.errors import ConfigurationError
from repro.experiments.ensemble import run_ensemble
from repro.experiments.runner import ExperimentResult
from repro.faults.spec import (
    BitFlipSpec,
    DroppedWriteSpec,
    DuplicateWriteSpec,
    FaultSpec,
    PoisonSpec,
)
from repro.heal.rollback import HealPolicy, run_with_healing
from repro.metrics.report import Table
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic

#: The default algorithm panel: the lock-free baseline, the wait-free
#: racer and the lock-based fallback target.
HEAL_ALGORITHMS: Tuple[str, ...] = ("epoch-sgd", "hogwild", "locked")


def heal_plan_specs() -> Dict[str, FaultSpec]:
    """Named plans the resilience grid accepts (``--plans name,...``).

    Deliberately *gentler* than the chaos-campaign corruption presets
    (:func:`repro.faults.campaign.corruption_specs`): the campaign wants
    corruption to fire hard in an unhealed run, whereas the grid wants
    occasional transients so the ladder's L0 rollback is the common path
    and the retry budget measures resilience rather than saturation.
    """
    return {
        "none": FaultSpec("none", ()),
        "bit-flip": FaultSpec(
            "bit-flip",
            (BitFlipSpec(rate=0.0015, max_corruptions=3, after_time=30),),
        ),
        "nan-poison": FaultSpec(
            "nan-poison",
            (
                PoisonSpec(
                    rate=0.0015, mode="nan", max_corruptions=3, after_time=30
                ),
            ),
        ),
        "inf-poison": FaultSpec(
            "inf-poison",
            (
                PoisonSpec(
                    rate=0.0015, mode="inf", max_corruptions=3, after_time=30
                ),
            ),
        ),
        "dup-write": FaultSpec(
            "dup-write",
            (
                DuplicateWriteSpec(
                    rate=0.003, max_corruptions=4, after_time=30
                ),
            ),
        ),
        "drop-write": FaultSpec(
            "drop-write",
            (DroppedWriteSpec(rate=0.003, max_corruptions=4, after_time=30),),
        ),
    }


@dataclass(frozen=True)
class HealWorkload:
    """The workload every resilience cell minimizes (mirrors the zoo)."""

    dim: int = 2
    num_threads: int = 4
    step_size: float = 0.05
    iterations: int = 200
    noise_sigma: float = 0.2
    x0_scale: float = 2.0
    adversary: str = "random"
    #: ``||x - x*||`` at or below which a cell counts as converged.
    convergence_radius: float = 0.5


@dataclass(frozen=True)
class HealGridConfig:
    """One resilience run: algorithms × plans × seeds.

    Plans are *names* into :func:`heal_plan_specs` (plain strings keep
    the config journal-fingerprintable)."""

    algorithms: Tuple[str, ...]
    plans: Tuple[str, ...]
    seeds: Tuple[int, ...]
    workload: HealWorkload = field(default_factory=HealWorkload)
    policy: HealPolicy = field(default_factory=HealPolicy)
    jobs: int = 1

    def __post_init__(self) -> None:
        if not self.algorithms:
            raise ConfigurationError("resilience grid needs >= 1 algorithm")
        if not self.plans:
            raise ConfigurationError("resilience grid needs >= 1 plan")
        if not self.seeds:
            raise ConfigurationError("resilience grid needs >= 1 seed")
        unknown = set(self.algorithms) - set(algorithm_names())
        if unknown:
            raise ConfigurationError(
                f"unknown algorithm(s): {', '.join(sorted(unknown))} "
                f"(choose from {', '.join(algorithm_names())})"
            )
        unknown = set(self.plans) - set(heal_plan_specs())
        if unknown:
            raise ConfigurationError(
                f"unknown plan(s): {', '.join(sorted(unknown))} "
                f"(choose from {', '.join(sorted(heal_plan_specs()))})"
            )


@dataclass(frozen=True)
class HealCellOutcome:
    """One (algorithm, plan, seed) cell — plain values only, so it
    crosses the process pool and serializes to JSON untouched."""

    algorithm: str
    plan: str
    seed: int
    #: ``(rule, firings)`` pairs, rule-sorted.
    detections: Tuple[Tuple[str, int], ...]
    rollbacks: int
    retries: int
    budget_spent: int
    degradations: Tuple[str, ...]
    recovery_latencies: Tuple[int, ...]
    health: str  # "healthy" | "degraded" | "abandoned"
    #: Detected, rolled back, and still finished healthy.
    recovered: bool
    corruptions: int
    crashes: int
    steps: int
    iterations: int
    distance: float
    converged: bool
    final_algorithm: str
    final_step_size: float


def _heal_worker(
    config: HealGridConfig, algorithm: str, plan: str, seed: int
) -> HealCellOutcome:
    """Run one resilience cell (module-level: picklable for the pool)."""
    workload = config.workload
    objective = IsotropicQuadratic(
        dim=workload.dim, noise=GaussianNoise(workload.noise_sigma)
    )
    result = run_with_healing(
        algorithm,
        objective,
        heal_plan_specs()[plan],
        adversary=workload.adversary,
        num_threads=workload.num_threads,
        step_size=workload.step_size,
        iterations=workload.iterations,
        x0=np.full(workload.dim, workload.x0_scale),
        seed=seed,
        policy=config.policy,
    )
    report = result.report
    distance = float(objective.distance_to_opt(result.x_final))
    return HealCellOutcome(
        algorithm=algorithm,
        plan=plan,
        seed=seed,
        detections=tuple(sorted(report.detections.items())),
        rollbacks=report.rollbacks,
        retries=report.retries,
        budget_spent=report.budget_spent,
        degradations=tuple(report.degradations),
        recovery_latencies=tuple(report.recovery_latencies),
        health=report.health,
        recovered=report.rollbacks > 0 and report.health == "healthy",
        corruptions=result.corruptions,
        crashes=result.crashes,
        steps=result.steps,
        iterations=result.iterations,
        distance=distance,
        converged=distance <= workload.convergence_radius,
        final_algorithm=report.final_algorithm,
        final_step_size=report.final_step_size,
    )


@dataclass(frozen=True)
class HealCellSummary:
    """One (algorithm, plan) grid row over its seed ensemble."""

    algorithm: str
    plan: str
    runs: int
    convergence_rate: float
    mean_distance: float
    detections: int
    rollbacks: int
    recovered: int
    degraded: int
    abandoned: int
    mean_recovery_latency: float


def summarize_heal(outcomes: List[HealCellOutcome]) -> List[HealCellSummary]:
    """Collapse per-seed outcomes into grid rows (grid order)."""
    by_cell: Dict[Tuple[str, str], List[HealCellOutcome]] = {}
    for outcome in outcomes:
        by_cell.setdefault((outcome.algorithm, outcome.plan), []).append(
            outcome
        )
    summaries = []
    for (algorithm, plan), cell in by_cell.items():
        latencies = [lat for o in cell for lat in o.recovery_latencies]
        summaries.append(
            HealCellSummary(
                algorithm=algorithm,
                plan=plan,
                runs=len(cell),
                convergence_rate=float(np.mean([o.converged for o in cell])),
                mean_distance=float(np.mean([o.distance for o in cell])),
                detections=sum(
                    count for o in cell for _rule, count in o.detections
                ),
                rollbacks=sum(o.rollbacks for o in cell),
                recovered=sum(o.recovered for o in cell),
                degraded=sum(o.health == "degraded" for o in cell),
                abandoned=sum(o.health == "abandoned" for o in cell),
                mean_recovery_latency=(
                    float(np.mean(latencies)) if latencies else 0.0
                ),
            )
        )
    return summaries


@dataclass
class HealGridReport:
    """Everything the resilience grid measured."""

    outcomes: List[HealCellOutcome]
    summaries: List[HealCellSummary]

    @property
    def recovered_cells(self) -> int:
        """Cells that detected corruption, rolled back and finished
        healthy — the detected→rolled-back→recovered count CI asserts."""
        return sum(o.recovered for o in self.outcomes)

    @property
    def none_abandoned(self) -> bool:
        return all(o.health != "abandoned" for o in self.outcomes)

    @property
    def all_converged(self) -> bool:
        return all(o.converged for o in self.outcomes)

    @property
    def passed(self) -> bool:
        return self.none_abandoned and self.all_converged

    def render(self) -> str:
        """ASCII grid report (the CLI artifact)."""
        table = Table(
            [
                "algorithm",
                "plan",
                "runs",
                "converged",
                "mean ||x-x*||",
                "detections",
                "rollbacks",
                "recovered",
                "degraded",
                "abandoned",
                "mean latency",
            ],
            title="Resilience grid: algorithms x corruption plans",
        )
        for s in self.summaries:
            table.add_row(
                [
                    s.algorithm,
                    s.plan,
                    s.runs,
                    f"{s.convergence_rate:.2f}",
                    f"{s.mean_distance:.4f}",
                    s.detections,
                    s.rollbacks,
                    s.recovered,
                    s.degraded,
                    s.abandoned,
                    f"{s.mean_recovery_latency:.1f}",
                ]
            )
        parts = [table.render()]
        for outcome in self.outcomes:
            if outcome.degradations:
                ladder = " -> ".join(outcome.degradations)
                parts.append(
                    f"DEGRADED {outcome.algorithm} x {outcome.plan} "
                    f"seed={outcome.seed}: {ladder} (health={outcome.health})"
                )
        parts.append(
            f"recovered cells (detected -> rolled back -> healthy): "
            f"{self.recovered_cells}"
        )
        parts.append(f"verdict: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(parts)

    def to_json(self) -> str:
        """Deterministic JSON (sorted keys, no timestamps): reruns with
        the same config produce identical bytes."""
        payload = {
            "summaries": [asdict(s) for s in self.summaries],
            "outcomes": [asdict(o) for o in self.outcomes],
            "recovered_cells": self.recovered_cells,
            "none_abandoned": self.none_abandoned,
            "all_converged": self.all_converged,
            "passed": self.passed,
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def write(self, path: str, fmt: str = "json") -> None:
        """Atomically persist the report (``fmt`` = ``"json"``/``"txt"``)."""
        from repro.durable.atomic_io import atomic_write

        if fmt == "json":
            text = self.to_json()
        elif fmt == "txt":
            text = self.render() + "\n"
        else:
            raise ConfigurationError(f"unknown report format: {fmt!r}")
        atomic_write(path, text.encode("utf-8"))


def heal_fingerprint(config: HealGridConfig) -> str:
    """Stable fingerprint of everything that determines grid results
    (``jobs`` excluded — parallelism never changes results)."""
    from repro.durable.journal import config_fingerprint

    payload = asdict(config)
    payload.pop("jobs", None)
    return config_fingerprint(payload)


def outcome_to_payload(outcome: HealCellOutcome) -> Dict[str, Any]:
    """JSON-safe journal payload for one resilience cell."""
    return asdict(outcome)


def outcome_from_payload(payload: Dict[str, Any]) -> HealCellOutcome:
    """Inverse of :func:`outcome_to_payload` — exact reconstruction, so
    journaled and freshly computed outcomes mix byte-identically."""
    data = dict(payload)
    data["detections"] = tuple(
        (str(rule), int(count)) for rule, count in data["detections"]
    )
    data["degradations"] = tuple(data["degradations"])
    data["recovery_latencies"] = tuple(
        int(v) for v in data["recovery_latencies"]
    )
    return HealCellOutcome(**data)


def _cell_namespace(algorithm: str, plan: str) -> str:
    return f"{algorithm}/{plan}"


def report_from_outcomes(outcomes: List[HealCellOutcome]) -> HealGridReport:
    """Aggregate cell outcomes into a report (grid order preserved)."""
    return HealGridReport(outcomes=outcomes, summaries=summarize_heal(outcomes))


def partial_heal_report(config: HealGridConfig, journal: Any) -> HealGridReport:
    """Report over only the cells the journal has — the artifact the CLI
    flushes when a run is interrupted.  Grid-ordered, so the final
    resumed report extends it deterministically."""
    outcomes: List[HealCellOutcome] = []
    for algorithm in config.algorithms:
        for plan in config.plans:
            done = journal.completed(_cell_namespace(algorithm, plan))
            for seed in config.seeds:
                if seed in done:
                    outcomes.append(outcome_from_payload(done[seed]))
    return report_from_outcomes(outcomes)


def heal_metrics_lines(
    config: HealGridConfig, outcomes: List[HealCellOutcome]
) -> List[Dict[str, Any]]:
    """Snapshot-file lines for ``repro heal --metrics``: one
    ``kind="cell"`` line per outcome (grid order) plus one
    ``kind="aggregate"`` roll-up.  Purely a function of the outcomes,
    hence deterministic and identical across ``--jobs``."""
    lines: List[Dict[str, Any]] = []
    detections: Dict[str, int] = {}
    total_rollbacks = 0
    latencies: List[int] = []
    for outcome in outcomes:
        for rule, count in outcome.detections:
            detections[rule] = detections.get(rule, 0) + count
        total_rollbacks += outcome.rollbacks
        latencies.extend(outcome.recovery_latencies)
        lines.append(
            {
                "kind": "cell",
                "algorithm": outcome.algorithm,
                "plan": outcome.plan,
                "seed": outcome.seed,
                "health": outcome.health,
                "recovered": outcome.recovered,
                "rollbacks": outcome.rollbacks,
                "detections": dict(outcome.detections),
                "degradations": list(outcome.degradations),
                "recovery_latencies": list(outcome.recovery_latencies),
            }
        )
    lines.append(
        {
            "kind": "aggregate",
            "detections": {r: detections[r] for r in sorted(detections)},
            "rollbacks": total_rollbacks,
            "recovery_latency_mean": (
                float(np.mean(latencies)) if latencies else 0.0
            ),
            "recovery_latency_max": max(latencies) if latencies else 0,
        }
    )
    return lines


def run_heal_grid(
    config: HealGridConfig,
    journal: Optional[Any] = None,
    shutdown: Optional[Any] = None,
    watchdog_policy: Optional[Any] = None,
    metrics: Optional[Any] = None,
    progress: Optional[Any] = None,
) -> HealGridReport:
    """Execute the full algorithm × plan × seed resilience grid.

    Each grid row's seed ensemble goes through :func:`run_ensemble`
    (durable resume at cell granularity, graceful interrupts,
    ``--jobs``-invariant bytes).  Heal counters are published to
    ``metrics`` in the parent from the deterministic outcome fields —
    never from inside pooled workers — so metric snapshots are identical
    across ``--jobs`` too.
    """
    from repro.durable.watchdog import EnsembleWatchdog
    from repro.heal.rollback import LATENCY_BUCKETS
    from repro.obs.registry import live_registry
    from repro.obs.spans import trace_span

    registry = live_registry(metrics)

    def note_cell(seed: int, outcome: HealCellOutcome) -> None:
        if registry is not None:
            registry.counter(
                "repro_heal_cells_total", "resilience cells finished"
            ).inc()
            for _rule, count in outcome.detections:
                registry.counter(
                    "repro_heal_detections_total", "health detector firings"
                ).inc(count)
            registry.counter(
                "repro_heal_rollbacks_total", "checkpoint rollbacks performed"
            ).inc(outcome.rollbacks)
            registry.counter(
                "repro_heal_degradations_total", "ladder degradations taken"
            ).inc(len(outcome.degradations))
            histogram = registry.histogram(
                "repro_heal_recovery_latency_steps",
                buckets=LATENCY_BUCKETS,
                help="logical steps between restored cut and detection",
            )
            for latency in outcome.recovery_latencies:
                histogram.observe(latency)
        if progress is not None:
            progress(seed, outcome)

    outcomes: List[HealCellOutcome] = []
    for algorithm in config.algorithms:
        for plan in config.plans:
            watchdog = (
                EnsembleWatchdog(watchdog_policy, metrics=metrics)
                if watchdog_policy is not None
                else None
            )
            with trace_span(
                "heal.cell",
                algorithm=algorithm,
                plan=plan,
                seeds=len(config.seeds),
            ):
                outcomes.extend(
                    run_ensemble(
                        functools.partial(
                            _heal_worker, config, algorithm, plan
                        ),
                        config.seeds,
                        jobs=config.jobs,
                        journal=journal,
                        namespace=_cell_namespace(algorithm, plan),
                        encode=outcome_to_payload,
                        decode=outcome_from_payload,
                        watchdog=watchdog,
                        shutdown=shutdown,
                        metrics=metrics,
                        progress=note_cell,
                    )
                )
    return report_from_outcomes(outcomes)


# ----------------------------------------------------------------------
# The E14 experiment wrapper
# ----------------------------------------------------------------------
@dataclass
class E14Config:
    """Parameters of the E14 resilience grid."""

    algorithms: List[str] = field(
        default_factory=lambda: list(HEAL_ALGORITHMS)
    )
    plans: List[str] = field(
        default_factory=lambda: ["none", "bit-flip", "nan-poison", "dup-write"]
    )
    num_threads: int = 4
    iterations: int = 200
    step_size: float = 0.05
    num_seeds: int = 2
    base_seed: int = 8000
    jobs: int = 1

    @classmethod
    def quick(cls) -> "E14Config":
        return cls()

    @classmethod
    def full(cls) -> "E14Config":
        return cls(plans=list(heal_plan_specs()), num_seeds=4, iterations=400)


def to_heal_config(config: E14Config) -> HealGridConfig:
    """The engine config an :class:`E14Config` denotes."""
    return HealGridConfig(
        algorithms=tuple(config.algorithms),
        plans=tuple(config.plans),
        seeds=tuple(
            range(config.base_seed, config.base_seed + config.num_seeds)
        ),
        workload=HealWorkload(
            num_threads=config.num_threads,
            iterations=config.iterations,
            step_size=config.step_size,
        ),
        jobs=config.jobs,
    )


def run(config: E14Config) -> ExperimentResult:
    """Execute E14: the resilience grid."""
    report = run_heal_grid(to_heal_config(config))
    xs = list(range(len(config.plans)))
    series: Dict[str, List[float]] = {}
    for summary in report.summaries:
        series.setdefault(summary.algorithm, []).append(summary.mean_distance)
    table = Table(
        ["algorithm", "plan", "converged", "rollbacks", "recovered", "health"],
        title=(
            f"E14: resilience grid (n={config.num_threads}, "
            f"T={config.iterations}, {config.num_seeds} seeds/cell)"
        ),
    )
    for s in report.summaries:
        health = (
            "abandoned"
            if s.abandoned
            else ("degraded" if s.degraded else "healthy")
        )
        table.add_row(
            [
                s.algorithm,
                s.plan,
                f"{s.convergence_rate:.2f}",
                s.rollbacks,
                s.recovered,
                health,
            ]
        )
    return ExperimentResult(
        experiment_id="E14",
        title="the resilience grid — silent data corruption detected, "
        "rolled back and survived",
        table=table,
        xs=[float(x) for x in xs],
        series=series,
        passed=report.passed,
        notes=(
            "acceptance: no cell abandoned and every cell converged; "
            f"{report.recovered_cells} cell(s) detected corruption, rolled "
            "back and finished healthy"
        ),
    )
