"""E13 — the algorithm zoo: every variant under every adversary.

The unification payoff of the :class:`~repro.core.algorithm.Algorithm`
seam: grid every registered asynchronous-SGD variant (Algorithm 1,
Algorithm 2, Hogwild, locked, leashed, momentum, staleness-aware)
against every named adversary (round-robin, random, bounded-delay, the
Theorem-5.1 stale-gradient attack, the contention maximizer) over a seed
ensemble, and measure in one report what previously took five one-off
experiments:

* convergence — final ``||x − x*||`` and a downsampled distance curve
  per cell;
* contention — τ_max, τ_avg and the τ histogram from
  :func:`repro.obs.paper.paper_metrics`;
* correctness — the race/staleness sanitizer over the shared-memory
  operation log, plus the paper's lemma certificates (6.1, 6.2, 6.4)
  wherever the variant declares them structurally applicable, and an
  explicit ``n/a`` where it does not (locked's spinlock and leashed's
  CAS retry loops break the bounded-iteration premise of 6.2/6.4).

Cells run through :func:`repro.experiments.ensemble.run_ensemble`, so
the grid parallelizes across processes (``--jobs``) and journals for
kill/resume with byte-identical reports either way — the properties the
CI zoo job pins.

Acceptance: every applicable lemma certificate holds in every cell and
the sanitizer is clean everywhere (convergence under the attack
schedules is reported, not gated — slowing convergence is exactly what
the adversaries are for).
"""

from __future__ import annotations

import functools
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.algorithm import (
    LEMMAS,
    algorithm_names,
    get_algorithm,
    run_algorithm,
)
from repro.errors import ConfigurationError
from repro.experiments.ensemble import run_ensemble
from repro.experiments.runner import ExperimentResult
from repro.metrics.report import Table
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.registry import build_scheduler, scheduler_names

#: The default adversary panel of the zoo grid (a subset of
#: :func:`repro.sched.registry.scheduler_names` — the interesting ones).
ZOO_ADVERSARIES: Tuple[str, ...] = (
    "round-robin",
    "random",
    "bounded-delay",
    "stale-attack",
    "contention-max",
)


@dataclass(frozen=True)
class ZooWorkload:
    """The workload every zoo cell minimizes.

    A small noisy isotropic quadratic: cheap enough to grid 7×5×seeds,
    contended enough (few coordinates, several threads) that the
    adversaries have something to bite on.
    """

    dim: int = 2
    num_threads: int = 4
    step_size: float = 0.05
    iterations: int = 200
    noise_sigma: float = 0.2
    x0_scale: float = 2.0
    #: ``||x - x*||`` at or below which a cell counts as converged.
    convergence_radius: float = 0.5
    #: Points kept of each cell's distance curve (downsampled).
    curve_points: int = 16


@dataclass(frozen=True)
class ZooConfig:
    """One zoo run: algorithms x adversaries x seeds."""

    algorithms: Tuple[str, ...]
    adversaries: Tuple[str, ...]
    seeds: Tuple[int, ...]
    workload: ZooWorkload = field(default_factory=ZooWorkload)
    #: Attach the race/staleness sanitizer to every cell (turns the
    #: shared-memory op log on; part of the journal fingerprint).
    sanitize: bool = True
    jobs: int = 1
    #: Ship each cell's full paper-metrics snapshot to the ``--metrics``
    #: file.  Like the chaos campaign's flag it never changes report
    #: bytes, but it is part of the fingerprint (workers compute more).
    collect_obs: bool = False

    def __post_init__(self) -> None:
        if not self.algorithms:
            raise ConfigurationError("zoo needs at least one algorithm")
        if not self.adversaries:
            raise ConfigurationError("zoo needs at least one adversary")
        if not self.seeds:
            raise ConfigurationError("zoo needs at least one seed")
        unknown = set(self.algorithms) - set(algorithm_names())
        if unknown:
            raise ConfigurationError(
                f"unknown algorithm(s): {', '.join(sorted(unknown))} "
                f"(choose from {', '.join(algorithm_names())})"
            )
        unknown = set(self.adversaries) - set(scheduler_names())
        if unknown:
            raise ConfigurationError(
                f"unknown adversary(s): {', '.join(sorted(unknown))} "
                f"(choose from {', '.join(scheduler_names())})"
            )


@dataclass(frozen=True)
class ZooCellOutcome:
    """One (algorithm, adversary, seed) cell — plain values only, so it
    crosses the process pool and serializes to JSON untouched."""

    algorithm: str
    adversary: str
    seed: int
    iterations: int
    steps: int
    distance: float
    converged: bool
    tau_max: int
    tau_avg: float
    #: Cumulative ``(bucket, count)`` pairs of the per-iteration delay
    #: histogram (last bucket is ``"+Inf"``).
    tau_histogram: Tuple[Tuple[Any, int], ...]
    #: ``(lemma, status)`` with status ``"holds"``/``"violated"`` for
    #: certificates the algorithm declares applicable, ``"n/a"`` else.
    certificates: Tuple[Tuple[str, str], ...]
    sanitizer_findings: Tuple[str, ...]
    #: Variant-specific counters summed over threads (``spin_steps``,
    #: ``cas_failures``, ...), name-sorted for determinism.
    extras: Tuple[Tuple[str, float], ...]
    #: Downsampled ``||x_t - x*||`` curve (first and last point exact).
    curve: Tuple[float, ...]
    #: Full paper-metrics snapshot (``collect_obs`` runs only); never
    #: serialized into the report, so bytes match either way.
    obs: Optional[Dict[str, Any]] = None


def _downsample(values: np.ndarray, points: int) -> Tuple[float, ...]:
    """At most ``points`` evenly spaced samples, endpoints included."""
    if values.size == 0:
        return ()
    if values.size <= points:
        return tuple(float(v) for v in values)
    indices = np.linspace(0, values.size - 1, points).round().astype(int)
    return tuple(float(values[i]) for i in indices)


def _zoo_worker(
    config: ZooConfig, algorithm_name: str, adversary: str, seed: int
) -> ZooCellOutcome:
    """Run one zoo cell (module-level: picklable for the pool)."""
    from repro.obs.paper import paper_metrics

    workload = config.workload
    objective = IsotropicQuadratic(
        dim=workload.dim, noise=GaussianNoise(workload.noise_sigma)
    )
    algorithm = get_algorithm(algorithm_name)
    sanitizer = None
    analyzers: Tuple[Any, ...] = ()
    if config.sanitize:
        from repro.analysis.sanitizer import RaceStalenessSanitizer

        sanitizer = RaceStalenessSanitizer()
        analyzers = (sanitizer,)
    result = run_algorithm(
        algorithm,
        objective,
        build_scheduler(adversary, seed=seed),
        num_threads=workload.num_threads,
        step_size=workload.step_size,
        iterations=workload.iterations,
        x0=np.full(workload.dim, workload.x0_scale),
        seed=seed,
        analyzers=analyzers,
    )
    metrics = paper_metrics(result.records, num_threads=workload.num_threads)
    applicable = algorithm.lemma_applicability()
    holds = {
        "6.1": int(metrics["lemma_6_1_violations"]) == 0,
        "6.2": bool(metrics["lemma_6_2_holds"]),
        "6.4": bool(metrics["lemma_6_4_holds"]),
    }
    certificates = tuple(
        (
            lemma,
            ("holds" if holds[lemma] else "violated")
            if applicable[lemma]
            else "n/a",
        )
        for lemma in LEMMAS
    )
    distance = float(objective.distance_to_opt(result.x_final))
    extras = getattr(result, "extras", {})
    return ZooCellOutcome(
        algorithm=algorithm_name,
        adversary=adversary,
        seed=seed,
        iterations=len(result.records),
        steps=result.sim_steps,
        distance=distance,
        converged=distance <= workload.convergence_radius,
        tau_max=int(metrics["tau_max"]),
        tau_avg=float(metrics["tau_avg"]),
        tau_histogram=tuple(
            (bucket, int(count)) for bucket, count in metrics["tau_histogram"]
        ),
        certificates=certificates,
        sanitizer_findings=(
            tuple(str(f) for f in sanitizer.findings) if sanitizer else ()
        ),
        extras=tuple(sorted((k, float(v)) for k, v in extras.items())),
        curve=_downsample(result.distances, workload.curve_points),
        obs=metrics if config.collect_obs else None,
    )


@dataclass(frozen=True)
class ZooCellSummary:
    """One (algorithm, adversary) grid row over its seed ensemble."""

    algorithm: str
    adversary: str
    runs: int
    convergence_rate: float
    mean_distance: float
    max_tau_max: int
    mean_tau_avg: float
    mean_steps: float
    #: ``(lemma, status)`` aggregated over seeds: ``"violated"`` if any
    #: seed violated, else the per-seed status (``"holds"``/``"n/a"``).
    certificates: Tuple[Tuple[str, str], ...]
    sanitizer_findings: int


def summarize_zoo(outcomes: List[ZooCellOutcome]) -> List[ZooCellSummary]:
    """Collapse per-seed outcomes into grid rows (grid order)."""
    by_cell: Dict[Tuple[str, str], List[ZooCellOutcome]] = {}
    for outcome in outcomes:
        by_cell.setdefault((outcome.algorithm, outcome.adversary), []).append(
            outcome
        )
    summaries = []
    for (algorithm, adversary), cell in by_cell.items():
        certificates = []
        for index, lemma in enumerate(LEMMAS):
            statuses = {o.certificates[index][1] for o in cell}
            status = "violated" if "violated" in statuses else statuses.pop()
            certificates.append((lemma, status))
        summaries.append(
            ZooCellSummary(
                algorithm=algorithm,
                adversary=adversary,
                runs=len(cell),
                convergence_rate=float(np.mean([o.converged for o in cell])),
                mean_distance=float(np.mean([o.distance for o in cell])),
                max_tau_max=max(o.tau_max for o in cell),
                mean_tau_avg=float(np.mean([o.tau_avg for o in cell])),
                mean_steps=float(np.mean([o.steps for o in cell])),
                certificates=tuple(certificates),
                sanitizer_findings=sum(
                    len(o.sanitizer_findings) for o in cell
                ),
            )
        )
    return summaries


@dataclass
class ZooReport:
    """Everything the zoo grid measured, renderable and serializable."""

    outcomes: List[ZooCellOutcome]
    summaries: List[ZooCellSummary]

    @property
    def certificates_ok(self) -> bool:
        """No applicable lemma certificate violated anywhere."""
        return all(
            status != "violated"
            for outcome in self.outcomes
            for _lemma, status in outcome.certificates
        )

    @property
    def sanitizer_clean(self) -> bool:
        """The race/staleness sanitizer flagged nothing anywhere."""
        return all(not o.sanitizer_findings for o in self.outcomes)

    @property
    def passed(self) -> bool:
        return self.certificates_ok and self.sanitizer_clean

    def render(self) -> str:
        """ASCII grid report (the CLI artifact)."""
        table = Table(
            [
                "algorithm",
                "adversary",
                "runs",
                "converged",
                "mean ||x-x*||",
                "tau_max",
                "tau_avg",
                "mean steps",
                *[f"lemma {lemma}" for lemma in LEMMAS],
                "sanitizer",
            ],
            title="Algorithm zoo: variants x adversaries",
        )
        for s in self.summaries:
            table.add_row(
                [
                    s.algorithm,
                    s.adversary,
                    s.runs,
                    f"{s.convergence_rate:.2f}",
                    f"{s.mean_distance:.4f}",
                    s.max_tau_max,
                    f"{s.mean_tau_avg:.2f}",
                    f"{s.mean_steps:.0f}",
                    *[status for _lemma, status in s.certificates],
                    s.sanitizer_findings or "clean",
                ]
            )
        parts = [table.render()]
        for outcome in self.outcomes:
            for finding in outcome.sanitizer_findings:
                parts.append(
                    f"FINDING {outcome.algorithm} x {outcome.adversary} "
                    f"seed={outcome.seed}: {finding}"
                )
            for lemma, status in outcome.certificates:
                if status == "violated":
                    parts.append(
                        f"VIOLATED lemma {lemma}: {outcome.algorithm} x "
                        f"{outcome.adversary} seed={outcome.seed}"
                    )
        parts.append(f"verdict: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(parts)

    def to_json(self) -> str:
        """Deterministic JSON (sorted keys, no timestamps): reruns with
        the same config produce identical bytes."""
        outcomes = []
        for o in self.outcomes:
            row = asdict(o)
            # Observability metrics flow to the snapshot file, never the
            # report: bytes stay identical with and without collect_obs.
            row.pop("obs", None)
            outcomes.append(row)
        payload = {
            "summaries": [asdict(s) for s in self.summaries],
            "outcomes": outcomes,
            "certificates_ok": self.certificates_ok,
            "sanitizer_clean": self.sanitizer_clean,
            "passed": self.passed,
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def write(self, path: str, fmt: str = "json") -> None:
        """Atomically persist the report (``fmt`` = ``"json"``/``"txt"``)."""
        from repro.durable.atomic_io import atomic_write

        if fmt == "json":
            text = self.to_json()
        elif fmt == "txt":
            text = self.render() + "\n"
        else:
            raise ConfigurationError(f"unknown report format: {fmt!r}")
        atomic_write(path, text.encode("utf-8"))


def zoo_fingerprint(config: ZooConfig) -> str:
    """Stable fingerprint of everything that determines zoo results.

    ``jobs`` is deliberately excluded: parallelism changes wall-clock
    time, never results, so a journal written under ``--jobs 4`` must
    resume cleanly under ``--jobs 1`` (and vice versa).
    """
    from repro.durable.journal import config_fingerprint

    payload = asdict(config)
    payload.pop("jobs", None)
    return config_fingerprint(payload)


def outcome_to_payload(outcome: ZooCellOutcome) -> Dict[str, Any]:
    """JSON-safe journal payload for one zoo cell."""
    return asdict(outcome)


def outcome_from_payload(payload: Dict[str, Any]) -> ZooCellOutcome:
    """Inverse of :func:`outcome_to_payload` — exact reconstruction, so
    journaled and freshly computed outcomes mix byte-identically."""
    data = dict(payload)
    data["tau_histogram"] = tuple(
        (bucket, int(count)) for bucket, count in data["tau_histogram"]
    )
    data["certificates"] = tuple(
        (lemma, status) for lemma, status in data["certificates"]
    )
    data["sanitizer_findings"] = tuple(data["sanitizer_findings"])
    data["extras"] = tuple((k, float(v)) for k, v in data["extras"])
    data["curve"] = tuple(float(v) for v in data["curve"])
    data.setdefault("obs", None)
    return ZooCellOutcome(**data)


def _cell_namespace(algorithm: str, adversary: str) -> str:
    return f"{algorithm}/{adversary}"


def report_from_outcomes(outcomes: List[ZooCellOutcome]) -> ZooReport:
    """Aggregate cell outcomes into a report (grid order preserved)."""
    return ZooReport(outcomes=outcomes, summaries=summarize_zoo(outcomes))


def partial_zoo_report(config: ZooConfig, journal: Any) -> ZooReport:
    """Report over only the cells the journal has — the artifact the CLI
    flushes when a zoo run is interrupted.  Grid-ordered, so the final
    resumed report extends it deterministically."""
    outcomes: List[ZooCellOutcome] = []
    for algorithm in config.algorithms:
        for adversary in config.adversaries:
            done = journal.completed(_cell_namespace(algorithm, adversary))
            for seed in config.seeds:
                if seed in done:
                    outcomes.append(outcome_from_payload(done[seed]))
    return report_from_outcomes(outcomes)


def zoo_metrics_lines(
    config: ZooConfig, outcomes: List[ZooCellOutcome]
) -> List[Dict[str, Any]]:
    """Snapshot-file lines for a ``collect_obs`` zoo run: one
    ``kind="cell"`` line per outcome carrying metrics (grid order) plus
    one ``kind="aggregate"`` roll-up.  Deterministic."""
    from repro.obs.paper import merge_paper_metrics

    lines: List[Dict[str, Any]] = []
    cells = []
    for outcome in outcomes:
        if outcome.obs is None:
            continue
        cells.append(outcome.obs)
        lines.append(
            {
                "kind": "cell",
                "algorithm": outcome.algorithm,
                "adversary": outcome.adversary,
                "seed": outcome.seed,
                "converged": outcome.converged,
                "steps": outcome.steps,
                "metrics": outcome.obs,
            }
        )
    lines.append({"kind": "aggregate", "metrics": merge_paper_metrics(cells)})
    return lines


def run_zoo(
    config: ZooConfig,
    journal: Optional[Any] = None,
    shutdown: Optional[Any] = None,
    watchdog_policy: Optional[Any] = None,
    metrics: Optional[Any] = None,
    progress: Optional[Any] = None,
) -> ZooReport:
    """Execute the full algorithm x adversary x seed grid.

    Each grid row's seed ensemble goes through :func:`run_ensemble`, so
    ``config.jobs`` parallelizes cells across processes with results
    byte-identical to a serial run.  ``journal``/``shutdown``/
    ``watchdog_policy``/``metrics``/``progress`` behave exactly as in
    :func:`repro.faults.campaign.run_campaign` — durable resume at cell
    granularity, graceful interrupts, live telemetry; none of it changes
    results or report bytes.
    """
    from repro.durable.watchdog import EnsembleWatchdog
    from repro.obs.paper import publish_paper_metrics
    from repro.obs.registry import live_registry
    from repro.obs.spans import trace_span

    registry = live_registry(metrics)

    def note_cell(seed: int, outcome: ZooCellOutcome) -> None:
        if registry is not None and outcome.obs is not None:
            publish_paper_metrics(registry, outcome.obs)
        if registry is not None:
            registry.counter(
                "repro_zoo_cells_total", "zoo cells finished"
            ).inc()
        if progress is not None:
            progress(seed, outcome)

    outcomes: List[ZooCellOutcome] = []
    for algorithm in config.algorithms:
        for adversary in config.adversaries:
            watchdog = (
                EnsembleWatchdog(watchdog_policy, metrics=metrics)
                if watchdog_policy is not None
                else None
            )
            with trace_span(
                "zoo.cell",
                algorithm=algorithm,
                adversary=adversary,
                seeds=len(config.seeds),
            ):
                outcomes.extend(
                    run_ensemble(
                        functools.partial(
                            _zoo_worker, config, algorithm, adversary
                        ),
                        config.seeds,
                        jobs=config.jobs,
                        journal=journal,
                        namespace=_cell_namespace(algorithm, adversary),
                        encode=outcome_to_payload,
                        decode=outcome_from_payload,
                        watchdog=watchdog,
                        shutdown=shutdown,
                        metrics=metrics,
                        progress=note_cell,
                    )
                )
    return report_from_outcomes(outcomes)


# ----------------------------------------------------------------------
# The E13 experiment wrapper
# ----------------------------------------------------------------------
@dataclass
class E13Config:
    """Parameters of the E13 zoo grid."""

    algorithms: List[str] = field(
        default_factory=lambda: list(algorithm_names())
    )
    adversaries: List[str] = field(default_factory=lambda: list(ZOO_ADVERSARIES))
    num_threads: int = 4
    iterations: int = 150
    step_size: float = 0.05
    num_seeds: int = 2
    base_seed: int = 7000
    jobs: int = 1

    @classmethod
    def quick(cls) -> "E13Config":
        return cls()

    @classmethod
    def full(cls) -> "E13Config":
        return cls(num_seeds=5, iterations=400)


def to_zoo_config(config: E13Config) -> ZooConfig:
    """The engine config an :class:`E13Config` denotes."""
    return ZooConfig(
        algorithms=tuple(config.algorithms),
        adversaries=tuple(config.adversaries),
        seeds=tuple(
            range(config.base_seed, config.base_seed + config.num_seeds)
        ),
        workload=ZooWorkload(
            num_threads=config.num_threads,
            iterations=config.iterations,
            step_size=config.step_size,
        ),
        jobs=config.jobs,
    )


def run(config: E13Config) -> ExperimentResult:
    """Execute E13: the full algorithm x adversary grid."""
    report = run_zoo(to_zoo_config(config))
    # The figure: per algorithm, mean convergence rate over adversaries
    # (xs index the adversary panel).
    xs = list(range(len(config.adversaries)))
    series: Dict[str, List[float]] = {}
    for summary in report.summaries:
        series.setdefault(summary.algorithm, []).append(
            summary.mean_distance
        )
    table = Table(
        ["algorithm", "adversary", "converged", "mean ||x-x*||", "tau_max"],
        title=(
            f"E13: algorithm zoo (n={config.num_threads}, "
            f"T={config.iterations}, {config.num_seeds} seeds/cell)"
        ),
    )
    for s in report.summaries:
        table.add_row(
            [
                s.algorithm,
                s.adversary,
                f"{s.convergence_rate:.2f}",
                f"{s.mean_distance:.4f}",
                s.max_tau_max,
            ]
        )
    return ExperimentResult(
        experiment_id="E13",
        title="the algorithm zoo — every variant under every adversary, "
        "certified where the lemmas apply",
        table=table,
        xs=[float(x) for x in xs],
        series=series,
        passed=report.passed,
        notes=(
            "acceptance: every applicable lemma certificate holds and the "
            "race/staleness sanitizer is clean in every cell; adversaries "
            "degrade convergence by design, so convergence is reported, "
            "not gated"
        ),
    )
