"""E2 — Theorem 5.1: the adversarial-delay slowdown is Ω(τ).

Claim: against lock-free SGD with *fixed* learning rate α, the
stale-gradient adversary with delay τ forces a convergence slowdown of
log((1−α)^τ)/log(α/2) = Ω(τ).

Method: the Section-5 setup verbatim — two threads, f(x) = ½x², noiseless
gradients (the analysis's σ = 0 simplification), the
:class:`~repro.sched.stale_attack.StaleGradientAttack` adversary.  For a
sweep of τ we measure the *sustained* convergence time (first iteration
after which the distance stays below the target — Algorithm 1 only
guarantees visiting, and the adversary exploits exactly that) and divide
by the sequential baseline's.  Acceptance: the measured slowdown grows
linearly in τ (strong positive linear fit) and brackets the predicted
factor within 2×.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.epoch_sgd import run_lock_free_sgd
from repro.core.sequential import run_sequential_sgd
from repro.experiments.runner import ExperimentResult
from repro.metrics.report import Table
from repro.metrics.trace import iterations_to_stay_below
from repro.objectives.noise import ZeroNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.stale_attack import StaleGradientAttack
from repro.theory.lower_bound import required_delay, slowdown_factor


@dataclass
class E2Config:
    """Parameters of the E2 sweep."""

    alpha: float = 0.1
    delays: List[int] = field(default_factory=lambda: [30, 60, 100, 150, 200])
    iterations: int = 3500
    x0_scale: float = 10.0
    target_relative: float = 1e-5
    seed: int = 7

    @classmethod
    def quick(cls) -> "E2Config":
        return cls(delays=[30, 60, 100, 150], iterations=2500)

    @classmethod
    def full(cls) -> "E2Config":
        return cls(delays=[30, 60, 100, 150, 200, 300], iterations=6000)


def run(config: E2Config) -> ExperimentResult:
    """Execute E2 and compare measured slowdown with Theorem 5.1."""
    objective = IsotropicQuadratic(dim=1, noise=ZeroNoise())
    x0 = np.array([config.x0_scale])
    target = config.target_relative * config.x0_scale

    baseline = run_sequential_sgd(
        objective,
        alpha=config.alpha,
        iterations=config.iterations,
        x0=x0,
        seed=config.seed,
    )
    baseline_time = iterations_to_stay_below(baseline.distances, target)

    table = Table(
        [
            "tau",
            "attacked iters",
            "baseline iters",
            "measured slowdown",
            "predicted (Thm 5.1)",
        ],
        title=(
            f"E2: fixed-alpha slowdown under stale-gradient attack "
            f"(alpha={config.alpha}, required_delay={required_delay(config.alpha)})"
        ),
    )
    measured: List[float] = []
    predicted: List[float] = []
    usable_delays: List[float] = []
    for delay in config.delays:
        attack = StaleGradientAttack(victim=1, runner=0, delay=delay)
        attacked = run_lock_free_sgd(
            objective,
            attack,
            num_threads=2,
            step_size=config.alpha,
            iterations=config.iterations,
            x0=x0,
            seed=config.seed,
        )
        attacked_time = iterations_to_stay_below(attacked.distances, target)
        prediction = slowdown_factor(config.alpha, delay)
        if attacked_time is None or baseline_time is None or baseline_time == 0:
            table.add_row([delay, "never", baseline_time, "n/a", prediction])
            continue
        ratio = attacked_time / baseline_time
        usable_delays.append(float(delay))
        measured.append(ratio)
        predicted.append(prediction)
        table.add_row([delay, attacked_time, baseline_time, ratio, prediction])

    passed = len(measured) >= 3
    if passed:
        xs = np.array(usable_delays)
        ys = np.array(measured)
        # Linearity: Pearson correlation of slowdown against tau.
        correlation = float(np.corrcoef(xs, ys)[0, 1])
        within = all(0.5 * p <= m <= 2.0 * p for m, p in zip(measured, predicted))
        passed = correlation > 0.95 and within
    return ExperimentResult(
        experiment_id="E2",
        title="Theorem 5.1 — fixed-alpha adversarial slowdown is linear in tau",
        table=table,
        xs=usable_delays,
        series={"measured slowdown": measured, "predicted Omega(tau)": predicted},
        passed=passed,
        notes=(
            "acceptance: slowdown-vs-tau correlation > 0.95 (linear shape) "
            "and measured within 2x of the predicted factor"
        ),
    )
