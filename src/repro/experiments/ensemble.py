"""Process-parallel seed ensembles — tier 2 of the execution engine.

Every quantitative claim in the reproduction is a Monte-Carlo estimate
over independent *seeded* simulator runs, and independent seeds are
embarrassingly parallel: the simulator inside each run stays
single-threaded and deterministic, so farming seeds out to worker
processes changes wall-clock time and nothing else.  This module is the
one place that owns that fan-out:

* :func:`run_ensemble` maps a picklable ``run_one(seed)`` callable over a
  seed list, chunking seeds across a
  :class:`concurrent.futures.ProcessPoolExecutor` and merging results in
  **seed order**, so parallel output is byte-identical to serial output;
* ``jobs=1`` (the default) never touches a pool — experiments remain as
  debuggable as before;
* any pool failure (fork unavailable in the sandbox, unpicklable
  closure, broken worker) degrades gracefully to the serial path rather
  than failing the experiment.

Workers must be importable module-level callables (or
``functools.partial`` of one) — the experiment drivers define theirs as
``_*_worker`` functions next to their ``run()``.
"""

from __future__ import annotations

import math
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")

#: Exceptions that mean "the pool could not be used", not "the experiment
#: is broken": pickling failures of the callable, fork/spawn failures in
#: restricted environments, and workers dying before returning.  Real
#: errors raised *inside* ``run_one`` propagate unchanged from the serial
#: fallback, which re-raises them deterministically.
POOL_FAILURES = (
    pickle.PicklingError,
    AttributeError,
    TypeError,
    OSError,
    ImportError,
    BrokenProcessPool,
)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/1 → serial, ``<= 0`` → one
    worker per available CPU, anything else taken literally."""
    if jobs is None or jobs == 1:
        return 1
    if jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def seed_chunks(seeds: Sequence[int], jobs: int) -> List[List[int]]:
    """Split ``seeds`` into contiguous chunks for ``jobs`` workers.

    Chunks are contiguous (so the seed→result order is trivially
    reconstructible) and there are up to ``4 × jobs`` of them, which
    keeps workers busy even when per-seed run times are skewed — the
    usual case, since adversarial schedules make some seeds hit early
    and others run to the horizon.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    seeds = list(seeds)
    if not seeds:
        return []
    chunk_size = max(1, math.ceil(len(seeds) / (4 * jobs)))
    return [seeds[i : i + chunk_size] for i in range(0, len(seeds), chunk_size)]


def _run_chunk(payload: Tuple[Callable[[int], T], List[int]]) -> List[T]:
    """Worker entry point: run one contiguous seed chunk serially."""
    run_one, chunk = payload
    return [run_one(seed) for seed in chunk]


def run_ensemble(
    run_one: Callable[[int], T],
    seeds: Sequence[int],
    jobs: Optional[int] = 1,
) -> List[T]:
    """Map ``run_one`` over ``seeds``, optionally across processes.

    Args:
        run_one: Maps one seed to one result.  Must be picklable (a
            module-level function or ``functools.partial`` of one) when
            ``jobs != 1``; results must be picklable too.
        seeds: The ensemble's seeds, in the order results are wanted.
        jobs: Worker processes (see :func:`resolve_jobs`).  ``1`` runs
            serially in-process.

    Returns:
        Results in seed order — identical, element for element, to
        ``[run_one(s) for s in seeds]`` regardless of ``jobs``.
    """
    seeds = list(seeds)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(seeds) <= 1:
        return [run_one(seed) for seed in seeds]
    chunks = seed_chunks(seeds, jobs)
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
            parts = list(
                pool.map(_run_chunk, [(run_one, chunk) for chunk in chunks])
            )
    except POOL_FAILURES:
        # Pool unavailable (sandboxed fork, unpicklable callable, dead
        # worker): fall back to the serial path, which either succeeds or
        # raises the real error with a clean traceback.
        return [run_one(seed) for seed in seeds]
    return [result for part in parts for result in part]
