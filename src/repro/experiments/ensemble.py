"""Process-parallel seed ensembles — tier 2 of the execution engine.

Every quantitative claim in the reproduction is a Monte-Carlo estimate
over independent *seeded* simulator runs, and independent seeds are
embarrassingly parallel: the simulator inside each run stays
single-threaded and deterministic, so farming seeds out to worker
processes changes wall-clock time and nothing else.  This module is the
one place that owns that fan-out:

* :func:`run_ensemble` maps a picklable ``run_one(seed)`` callable over a
  seed list, chunking seeds across a
  :class:`concurrent.futures.ProcessPoolExecutor` and merging results in
  **seed order**, so parallel output is byte-identical to serial output;
* ``jobs=1`` (the default) never touches a pool — experiments remain as
  debuggable as before;
* pool failures degrade gracefully — and *partially*: each chunk is a
  separate future, transient failures (broken pool, dead worker, stalls)
  are retried in the pool with exponential backoff, and only the chunks
  that never produced a result are rerun serially.  A campaign where 15
  of 16 chunks succeeded redoes one chunk, not the whole seed list;
* the run is **durable** (see DESIGN.md §12): pass a
  :class:`~repro.durable.journal.RunJournal` and every completed seed is
  recorded durably the moment its result reaches the driver, so a
  SIGKILL loses at most in-flight work and a resumed call skips finished
  seeds while returning byte-identical results; an
  :class:`~repro.durable.watchdog.EnsembleWatchdog` escalates pool
  stalls (stall → reroute → abandon) instead of hanging; a
  :class:`~repro.durable.signals.GracefulShutdown` stops the run at the
  next seed boundary with every finished cell journaled.

Workers must be importable module-level callables (or
``functools.partial`` of one) — the experiment drivers define theirs as
``_*_worker`` functions next to their ``run()``.
"""

from __future__ import annotations

import math
import os
import pickle
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.durable.watchdog import ABANDON, REROUTE, EnsembleWatchdog, WatchdogPolicy
from repro.errors import ConfigurationError

T = TypeVar("T")


def backoff_delay(
    base: float,
    attempt: int,
    chunk_index: int = 0,
    seed: Optional[int] = None,
) -> float:
    """Exponential backoff for retry ``attempt`` (1-based), optionally
    with **seeded deterministic jitter**.

    Without a ``seed`` this is the classic ``base * 2**(attempt-1)``.
    With one, the delay is scaled by a factor in ``[0.5, 1.5)`` drawn
    from an :class:`~repro.runtime.rng.RngStream` keyed on
    ``(seed, chunk_index, attempt)`` — so concurrent retries de-sync
    (no thundering herd resubmitting in lockstep) while the schedule of
    sleeps stays a pure function of the run's seed, never of the global
    ``random`` singleton or the wall clock.  Jitter only shapes *when*
    a retry happens; chunk results are pure functions of their seeds,
    so reports stay byte-identical with jitter on or off (pinned in
    ``tests/test_exp_ensemble.py``).
    """
    import numpy as np

    from repro.runtime.rng import RngStream

    delay = base * 2 ** (attempt - 1)
    if seed is None or delay <= 0:
        return delay
    stream = RngStream(
        np.random.SeedSequence(
            entropy=int(seed), spawn_key=(int(chunk_index), int(attempt))
        )
    )
    return delay * (0.5 + float(stream.uniform(0.0, 1.0)))

#: Exceptions that mean "the pool could not be used", not "the experiment
#: is broken": pickling failures of the callable, fork/spawn failures in
#: restricted environments, and workers dying before returning.  Real
#: errors raised *inside* ``run_one`` propagate unchanged from the serial
#: fallback, which re-raises them deterministically.
POOL_FAILURES = (
    pickle.PicklingError,
    AttributeError,
    TypeError,
    OSError,
    ImportError,
    BrokenProcessPool,
)

#: Pool failures not worth retrying in the pool: if the callable cannot
#: cross the process boundary once, it never will.  (Resubmitting makes
#: sense for transient faults — a worker OOM-killed, a broken pool that
#: respawned — not for serialization errors.)
_NON_RETRYABLE = (pickle.PicklingError, AttributeError, TypeError)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/1 → serial, ``<= 0`` → one
    worker per available CPU, anything else taken literally."""
    if jobs is None or jobs == 1:
        return 1
    if jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def seed_chunks(seeds: Sequence[int], jobs: int) -> List[List[int]]:
    """Split ``seeds`` into contiguous chunks for ``jobs`` workers.

    Chunks are contiguous (so the seed→result order is trivially
    reconstructible) and there are up to ``4 × jobs`` of them, which
    keeps workers busy even when per-seed run times are skewed — the
    usual case, since adversarial schedules make some seeds hit early
    and others run to the horizon.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    seeds = list(seeds)
    if not seeds:
        return []
    chunk_size = max(1, math.ceil(len(seeds) / (4 * jobs)))
    return [seeds[i : i + chunk_size] for i in range(0, len(seeds), chunk_size)]


def _run_chunk(payload: Tuple[Callable[[int], T], List[int]]) -> List[T]:
    """Worker entry point: run one contiguous seed chunk serially."""
    run_one, chunk = payload
    return [run_one(seed) for seed in chunk]


def _run_chunks_pooled(
    run_one: Callable[[int], T],
    chunks: List[List[int]],
    jobs: int,
    chunk_retries: int,
    chunk_timeout: Optional[float],
    backoff_base: float,
    watchdog: Optional[EnsembleWatchdog] = None,
    shutdown: Optional[Any] = None,
    on_chunk: Optional[Callable[[int, List[T]], None]] = None,
    backoff_seed: Optional[int] = None,
) -> List[Optional[List[T]]]:
    """Run chunks as independent pool futures; never raises pool errors.

    Returns one slot per chunk — ``None`` where the pool never produced
    that chunk's result (the caller reruns exactly those serially).
    Transient per-chunk failures are resubmitted up to ``chunk_retries``
    times with exponential backoff.  Real errors raised inside
    ``run_one`` (anything outside ``POOL_FAILURES``) leave the chunk
    unfilled too, so the serial rerun re-raises them with a clean
    traceback.

    Stall handling goes through the ``watchdog``: a wait round that
    completes nothing escalates stall → reroute (stalled chunks are
    resubmitted to fresh workers; duplicates are harmless since chunk
    results are pure functions of their seeds) → abandon (unfinished
    chunks fall back to serial).  When no watchdog is given,
    ``chunk_timeout`` builds the legacy single-strike one (first stall
    abandons).  ``on_chunk`` fires in the parent exactly once per chunk,
    as soon as its result lands — the journaling hook.  ``shutdown``
    (anything with a ``requested`` attribute) is polled between wait
    rounds; once set, pending futures are cancelled and the caller
    decides what the partial result means.
    """
    results: List[Optional[List[T]]] = [None] * len(chunks)
    filled: set = set()

    def fill(index: int, part: List[T]) -> None:
        if index in filled:
            return  # duplicate completion after a reroute
        results[index] = part
        filled.add(index)
        if on_chunk is not None:
            on_chunk(index, part)

    if watchdog is None and chunk_timeout is not None:
        watchdog = EnsembleWatchdog(
            WatchdogPolicy(heartbeat_timeout=chunk_timeout, max_reroutes=0)
        )
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
            future_to_chunk: Dict[Any, int] = {}
            attempts = [0] * len(chunks)

            def submit(index: int) -> bool:
                try:
                    future = pool.submit(_run_chunk, (run_one, chunks[index]))
                except POOL_FAILURES:
                    return False  # pool shut down / broken: serial rerun
                future_to_chunk[future] = index
                return True

            for index in range(len(chunks)):
                if not submit(index):
                    break
            pool_alive = True
            if watchdog is not None:
                watchdog.start()
            while future_to_chunk:
                if shutdown is not None and getattr(shutdown, "requested", False):
                    # Safe-point stop: abandon in-flight work (it is
                    # recomputable from seeds); everything completed so
                    # far has already been delivered via on_chunk.
                    for future in future_to_chunk:
                        future.cancel()
                    break
                timeout = watchdog.wait_timeout() if watchdog is not None else None
                done, _pending = wait(
                    tuple(future_to_chunk),
                    timeout=timeout,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    if watchdog is None:
                        continue  # pragma: no cover - None timeout blocks
                    pending_indexes = sorted(
                        set(future_to_chunk.values()) - filled
                    )
                    action = watchdog.on_wait_elapsed(len(pending_indexes))
                    if action == REROUTE and pool_alive:
                        # Resubmit the stalled chunks to fresh workers.
                        # cancel() only stops not-yet-started futures;
                        # still-running duplicates are harmless (first
                        # completion wins in fill()).
                        for future in future_to_chunk:
                            future.cancel()
                        for index in pending_indexes:
                            if not submit(index):
                                pool_alive = False
                                break
                        if pool_alive:
                            continue
                        action = ABANDON
                    if action == ABANDON or not pool_alive:
                        for future in future_to_chunk:
                            future.cancel()
                        break
                    continue  # WAIT: limits not actually hit yet
                if watchdog is not None:
                    watchdog.beat()
                for future in done:
                    index = future_to_chunk.pop(future)
                    if index in filled:
                        continue  # reroute duplicate already delivered
                    try:
                        fill(index, future.result())
                    except CancelledError:
                        continue  # cancelled during reroute/shutdown
                    except _NON_RETRYABLE:
                        continue  # hopeless in a pool; serial rerun
                    except POOL_FAILURES:
                        attempts[index] += 1
                        if not pool_alive or attempts[index] > chunk_retries:
                            continue
                        if backoff_base > 0:
                            time.sleep(
                                backoff_delay(
                                    backoff_base,
                                    attempts[index],
                                    chunk_index=index,
                                    seed=backoff_seed,
                                )
                            )
                        if not submit(index):
                            pool_alive = False
                    except Exception:
                        # A real error from run_one: leave the chunk
                        # unfilled so the serial rerun re-raises it with
                        # a clean in-process traceback.
                        continue
    except POOL_FAILURES:
        # Pool construction/teardown failed (sandboxed fork, etc.):
        # every unfilled chunk falls back to the serial path.
        pass
    return results


def run_ensemble(
    run_one: Callable[[int], T],
    seeds: Sequence[int],
    jobs: Optional[int] = 1,
    chunk_retries: int = 1,
    chunk_timeout: Optional[float] = None,
    backoff_base: float = 0.05,
    journal: Optional[Any] = None,
    namespace: str = "",
    encode: Optional[Callable[[T], Any]] = None,
    decode: Optional[Callable[[Any], T]] = None,
    watchdog: Optional[EnsembleWatchdog] = None,
    shutdown: Optional[Any] = None,
    metrics: Optional[Any] = None,
    progress: Optional[Callable[[int, T], None]] = None,
    backoff_seed: Optional[int] = None,
) -> List[T]:
    """Map ``run_one`` over ``seeds``, optionally across processes.

    Args:
        run_one: Maps one seed to one result.  Must be picklable (a
            module-level function or ``functools.partial`` of one) when
            ``jobs != 1``; results must be picklable too.
        seeds: The ensemble's seeds, in the order results are wanted.
        jobs: Worker processes (see :func:`resolve_jobs`).  ``1`` runs
            serially in-process.
        chunk_retries: In-pool resubmissions per chunk after a transient
            pool failure, before that chunk falls back to serial.
        chunk_timeout: Legacy stall budget: seconds the runner waits for
            *some* chunk to complete before abandoning the pool (used to
            build a single-strike watchdog when ``watchdog`` is not
            given); ``None`` waits forever.
        backoff_base: First retry's backoff sleep in seconds; doubles per
            subsequent retry of the same chunk (exponential backoff).
        journal: Optional :class:`~repro.durable.journal.RunJournal`.
            Seeds already recorded under ``namespace`` are *not* rerun —
            their stored payloads are decoded and returned — and every
            newly finished seed is durably journaled the moment its
            result reaches this process, making the call resumable after
            a SIGKILL with byte-identical output.
        namespace: Journal namespace isolating this ensemble from other
            grids sharing the journal (e.g. ``"0:prob-crash"``).
        encode: Result → JSON-safe payload for the journal (identity by
            default — results must then be JSON-serializable).
        decode: Inverse of ``encode`` (identity by default).  Must
            reproduce the result exactly: decoded and fresh results mix
            in one report, and the byte-identity guarantee spans both.
        watchdog: Optional :class:`~repro.durable.watchdog.
            EnsembleWatchdog` owning the stall → reroute → abandon
            escalation for pooled chunks; its ``findings`` are
            harness-level diagnostics (never part of deterministic
            reports).
        shutdown: Optional :class:`~repro.durable.signals.
            GracefulShutdown` (or anything with ``requested`` and
            ``check()``).  Polled at seed/chunk boundaries; once
            requested, the run stops at the next safe point by raising
            :class:`~repro.errors.InterruptedRunError` — with every
            completed seed already journaled.
        metrics: Optional :class:`repro.obs.registry.MetricsRegistry`.
            The pool is scheduling weather, so its counters
            (``repro_ensemble_*``) are flagged non-deterministic — they
            feed the live view and the Prometheus exposition, never
            byte-identity-checked snapshots.
        progress: Optional ``progress(seed, result)`` callback fired in
            this process exactly once per freshly computed seed, the
            moment its result lands (journal-skipped seeds do not fire).
            This is the live-view hook (``repro top``); it must not
            mutate results.
        backoff_seed: When given, chunk-retry backoff sleeps get seeded
            deterministic jitter via :func:`backoff_delay` (keyed on
            this seed, the chunk index and the attempt number) instead
            of the bare exponential.  Jitter shapes wall-clock only;
            results stay byte-identical for any value.

    Returns:
        Results in seed order — identical, element for element, to
        ``[run_one(s) for s in seeds]`` regardless of ``jobs``, retries,
        fallbacks or how many prior interrupted runs the journal
        already covers.
    """
    from repro.obs.causal import get_causal_recorder
    from repro.obs.registry import live_registry

    seeds = list(seeds)
    jobs = resolve_jobs(jobs)
    registry = live_registry(metrics)
    # Causal tracing (serve tier): per-seed records are deterministic
    # (pure functions of (namespace, seed) with content-derived ids, so
    # the logical stitch is byte-identical across --jobs values and
    # journal resumes); chunk records are harness weather, linked to
    # the enclosing span by a flow arrow.
    causal = get_causal_recorder()
    causal_anchor = causal.current_span() if causal is not None else None

    def note_causal(seed: int) -> None:
        if causal is not None:
            causal.event(
                "ensemble.seed",
                key=f"{namespace}|{seed}",
                det=True,
                namespace=namespace,
                seed=seed,
            )
    m_completed = m_skipped = None
    if registry is not None:
        m_completed = registry.counter(
            "repro_ensemble_seeds_completed_total",
            "seeds freshly computed by this process",
            deterministic=False,
        )
        m_skipped = registry.counter(
            "repro_ensemble_seeds_journal_skipped_total",
            "seeds restored from the journal instead of rerun",
            deterministic=False,
        )
    done: Dict[int, T] = {}
    if journal is not None:
        wanted = set(seeds)
        for seed, payload in journal.completed(namespace).items():
            if seed in wanted:
                done[seed] = decode(payload) if decode is not None else payload
                # Re-emit the restored seed's causal record: identical
                # id and args as the attempt that computed it, so the
                # logical stitch of a resumed job collapses to the
                # uninterrupted run's bytes.
                note_causal(seed)
                if m_skipped is not None:
                    m_skipped.inc()

    def note(seed: int, result: T) -> None:
        if seed in done:
            return
        done[seed] = result
        if journal is not None:
            journal.record(
                namespace, seed, encode(result) if encode is not None else result
            )
        note_causal(seed)
        if m_completed is not None:
            m_completed.inc()
        if progress is not None:
            progress(seed, result)

    # Duplicate seeds map to one deterministic result; compute each once.
    pending = list(dict.fromkeys(s for s in seeds if s not in done))
    if jobs == 1 or len(pending) <= 1:
        for seed in pending:
            if shutdown is not None:
                shutdown.check()
            note(seed, run_one(seed))
        if causal is not None and pending:
            causal.event(
                "ensemble.chunk",
                key=f"{namespace}|serial",
                flow=causal_anchor,
                namespace=namespace,
                seeds=len(pending),
            )
        return [done[seed] for seed in seeds]

    chunks = seed_chunks(pending, jobs)

    def on_chunk(index: int, part: List[T]) -> None:
        for seed, result in zip(chunks[index], part):
            note(seed, result)
        if causal is not None:
            causal.event(
                "ensemble.chunk",
                key=f"{namespace}|chunk-{index}",
                flow=causal_anchor,
                namespace=namespace,
                chunk=index,
                seeds=len(part),
            )

    parts = _run_chunks_pooled(
        run_one,
        chunks,
        jobs,
        chunk_retries,
        chunk_timeout,
        backoff_base,
        watchdog=watchdog,
        shutdown=shutdown,
        on_chunk=on_chunk,
        backoff_seed=backoff_seed,
    )
    if shutdown is not None:
        shutdown.check()
    # Partial-result rerun: only chunks the pool never delivered are
    # recomputed in-process.  Errors from run_one itself surface here,
    # deterministically and with a clean traceback.
    for index, part in enumerate(parts):
        if part is None:
            if registry is not None:
                registry.counter(
                    "repro_ensemble_chunks_serial_rerun_total",
                    "chunks the pool never delivered, rerun in-process",
                    deterministic=False,
                ).inc()
            for seed in chunks[index]:
                if shutdown is not None:
                    shutdown.check()
                note(seed, run_one(seed))
    return [done[seed] for seed in seeds]
