"""Process-parallel seed ensembles — tier 2 of the execution engine.

Every quantitative claim in the reproduction is a Monte-Carlo estimate
over independent *seeded* simulator runs, and independent seeds are
embarrassingly parallel: the simulator inside each run stays
single-threaded and deterministic, so farming seeds out to worker
processes changes wall-clock time and nothing else.  This module is the
one place that owns that fan-out:

* :func:`run_ensemble` maps a picklable ``run_one(seed)`` callable over a
  seed list, chunking seeds across a
  :class:`concurrent.futures.ProcessPoolExecutor` and merging results in
  **seed order**, so parallel output is byte-identical to serial output;
* ``jobs=1`` (the default) never touches a pool — experiments remain as
  debuggable as before;
* pool failures degrade gracefully — and *partially*: each chunk is a
  separate future, transient failures (broken pool, dead worker, stalls
  past ``chunk_timeout``) are retried in the pool with exponential
  backoff, and only the chunks that never produced a result are rerun
  serially.  A campaign where 15 of 16 chunks succeeded redoes one
  chunk, not the whole seed list.

Workers must be importable module-level callables (or
``functools.partial`` of one) — the experiment drivers define theirs as
``_*_worker`` functions next to their ``run()``.
"""

from __future__ import annotations

import math
import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")

#: Exceptions that mean "the pool could not be used", not "the experiment
#: is broken": pickling failures of the callable, fork/spawn failures in
#: restricted environments, and workers dying before returning.  Real
#: errors raised *inside* ``run_one`` propagate unchanged from the serial
#: fallback, which re-raises them deterministically.
POOL_FAILURES = (
    pickle.PicklingError,
    AttributeError,
    TypeError,
    OSError,
    ImportError,
    BrokenProcessPool,
)

#: Pool failures not worth retrying in the pool: if the callable cannot
#: cross the process boundary once, it never will.  (Resubmitting makes
#: sense for transient faults — a worker OOM-killed, a broken pool that
#: respawned — not for serialization errors.)
_NON_RETRYABLE = (pickle.PicklingError, AttributeError, TypeError)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/1 → serial, ``<= 0`` → one
    worker per available CPU, anything else taken literally."""
    if jobs is None or jobs == 1:
        return 1
    if jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def seed_chunks(seeds: Sequence[int], jobs: int) -> List[List[int]]:
    """Split ``seeds`` into contiguous chunks for ``jobs`` workers.

    Chunks are contiguous (so the seed→result order is trivially
    reconstructible) and there are up to ``4 × jobs`` of them, which
    keeps workers busy even when per-seed run times are skewed — the
    usual case, since adversarial schedules make some seeds hit early
    and others run to the horizon.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    seeds = list(seeds)
    if not seeds:
        return []
    chunk_size = max(1, math.ceil(len(seeds) / (4 * jobs)))
    return [seeds[i : i + chunk_size] for i in range(0, len(seeds), chunk_size)]


def _run_chunk(payload: Tuple[Callable[[int], T], List[int]]) -> List[T]:
    """Worker entry point: run one contiguous seed chunk serially."""
    run_one, chunk = payload
    return [run_one(seed) for seed in chunk]


def _run_chunks_pooled(
    run_one: Callable[[int], T],
    chunks: List[List[int]],
    jobs: int,
    chunk_retries: int,
    chunk_timeout: Optional[float],
    backoff_base: float,
) -> List[Optional[List[T]]]:
    """Run chunks as independent pool futures; never raises pool errors.

    Returns one slot per chunk — ``None`` where the pool never produced
    that chunk's result (the caller reruns exactly those serially).
    Transient per-chunk failures are resubmitted up to ``chunk_retries``
    times with exponential backoff; a wait that produces nothing for
    ``chunk_timeout`` seconds abandons the pool entirely.  Real errors
    raised inside ``run_one`` (anything outside ``POOL_FAILURES``) leave
    the chunk unfilled too, so the serial rerun re-raises them with a
    clean traceback.
    """
    results: List[Optional[List[T]]] = [None] * len(chunks)
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
            future_to_chunk = {}
            attempts = [0] * len(chunks)

            def submit(index: int) -> bool:
                try:
                    future = pool.submit(_run_chunk, (run_one, chunks[index]))
                except POOL_FAILURES:
                    return False  # pool shut down / broken: serial rerun
                future_to_chunk[future] = index
                return True

            for index in range(len(chunks)):
                if not submit(index):
                    break
            pool_alive = True
            while future_to_chunk:
                done, _pending = wait(
                    tuple(future_to_chunk),
                    timeout=chunk_timeout,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    # Nothing completed within the stall budget: the pool
                    # is wedged.  Abandon it; unfinished chunks go serial.
                    for future in future_to_chunk:
                        future.cancel()
                    break
                for future in done:
                    index = future_to_chunk.pop(future)
                    try:
                        results[index] = future.result()
                    except _NON_RETRYABLE:
                        continue  # hopeless in a pool; serial rerun
                    except POOL_FAILURES:
                        attempts[index] += 1
                        if not pool_alive or attempts[index] > chunk_retries:
                            continue
                        if backoff_base > 0:
                            time.sleep(
                                backoff_base * 2 ** (attempts[index] - 1)
                            )
                        if not submit(index):
                            pool_alive = False
                    except Exception:
                        # A real error from run_one: leave the chunk
                        # unfilled so the serial rerun re-raises it with
                        # a clean in-process traceback.
                        continue
    except POOL_FAILURES:
        # Pool construction/teardown failed (sandboxed fork, etc.):
        # every unfilled chunk falls back to the serial path.
        pass
    return results


def run_ensemble(
    run_one: Callable[[int], T],
    seeds: Sequence[int],
    jobs: Optional[int] = 1,
    chunk_retries: int = 1,
    chunk_timeout: Optional[float] = None,
    backoff_base: float = 0.05,
) -> List[T]:
    """Map ``run_one`` over ``seeds``, optionally across processes.

    Args:
        run_one: Maps one seed to one result.  Must be picklable (a
            module-level function or ``functools.partial`` of one) when
            ``jobs != 1``; results must be picklable too.
        seeds: The ensemble's seeds, in the order results are wanted.
        jobs: Worker processes (see :func:`resolve_jobs`).  ``1`` runs
            serially in-process.
        chunk_retries: In-pool resubmissions per chunk after a transient
            pool failure, before that chunk falls back to serial.
        chunk_timeout: Seconds the runner waits for *some* chunk to
            complete before declaring the pool wedged and rerunning the
            unfinished chunks serially; ``None`` waits forever.
        backoff_base: First retry's backoff sleep in seconds; doubles per
            subsequent retry of the same chunk (exponential backoff).

    Returns:
        Results in seed order — identical, element for element, to
        ``[run_one(s) for s in seeds]`` regardless of ``jobs``, retries
        or fallbacks.
    """
    seeds = list(seeds)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(seeds) <= 1:
        return [run_one(seed) for seed in seeds]
    chunks = seed_chunks(seeds, jobs)
    parts = _run_chunks_pooled(
        run_one, chunks, jobs, chunk_retries, chunk_timeout, backoff_base
    )
    # Partial-result rerun: only chunks the pool never delivered are
    # recomputed in-process.  Errors from run_one itself surface here,
    # deterministically and with a clean traceback.
    for index, part in enumerate(parts):
        if part is None:
            parts[index] = [run_one(seed) for seed in chunks[index]]
    return [result for part in parts for result in part]
