"""E11 — eliminating the single-non-zero-entry assumption.

Departure (2) of the paper from De Sa et al.: the prior martingale
analysis of asynchronous SGD *required* every stochastic gradient to
have a single non-zero entry; this paper's analysis covers dense
gradients, "significantly expanding the applicability of the framework".

We measure the expansion directly.  Two workloads:

* **sparse** — :class:`~repro.objectives.sparse.SeparableQuadratic`,
  whose oracle emits 1-sparse gradients (satisfies the old assumption);
* **dense** — :class:`~repro.objectives.least_squares.LeastSquares`,
  whose per-sample gradients a_i(a_iᵀx − y_i) touch every coordinate
  (violates it — prior analysis simply does not apply here).

Both run lock-free with the Eq. (12) step size under the same
delay-bounded adversary; for both the measured failure probability must
respect the Corollary 6.7 bound.  The dense row is the new capability;
the sparse row shows the framework subsumes the old setting.  We also
report each oracle's measured maximum gradient density as evidence the
workloads are what they claim to be.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.epoch_sgd import run_lock_free_sgd
from repro.experiments.runner import ExperimentResult
from repro.metrics.report import Table
from repro.metrics.stats import wilson_interval
from repro.objectives.datasets import make_regression
from repro.objectives.least_squares import LeastSquares
from repro.objectives.sparse import SeparableQuadratic
from repro.sched.bounded_delay import BoundedDelayScheduler
from repro.theory.bounds import corollary_6_7_failure_bound, corollary_6_7_step_size
from repro.theory.contention import tau_max as measure_tau_max


@dataclass
class E11Config:
    """Parameters of the E11 comparison."""

    dim: int = 3
    num_points: int = 40
    num_threads: int = 4
    delay_bound: int = 16
    epsilon_fraction: float = 0.05  # epsilon as a fraction of ||x0-x*||^2
    # T as a multiple of the 1/(2 alpha c) contraction scale; must exceed
    # ~2*plog(e*||x0-x*||^2/eps) for the Cor 6.7 bound to be non-vacuous.
    horizon_factor: float = 18.0
    num_runs: int = 15
    radius_slack: float = 2.0
    base_seed: int = 4200

    @classmethod
    def quick(cls) -> "E11Config":
        return cls(num_runs=10)

    @classmethod
    def full(cls) -> "E11Config":
        return cls(num_runs=50)


def _measure(config: E11Config, objective, x0, label: str, table: Table):
    """Run the ensemble for one workload; returns (P_fail, bound, ok)."""
    x0_distance = objective.distance_to_opt(x0)
    epsilon = config.epsilon_fraction * x0_distance**2
    radius = config.radius_slack * x0_distance
    second_moment = objective.second_moment_bound(radius)
    c = objective.strong_convexity
    lipschitz = objective.lipschitz_expected

    # Pilot for tau_max, then the Eq.(12) prescription.
    pilot_alpha = c * epsilon / second_moment
    pilot = run_lock_free_sgd(
        objective,
        BoundedDelayScheduler(config.delay_bound, seed=config.base_seed,
                              victims=[0]),
        num_threads=config.num_threads,
        step_size=pilot_alpha,
        iterations=200,
        x0=x0,
        seed=config.base_seed,
    )
    tau = max(1, measure_tau_max(pilot.records))
    alpha = corollary_6_7_step_size(
        c, second_moment, lipschitz, tau, config.num_threads,
        config.dim, epsilon,
    )
    horizon = int(config.horizon_factor / (2.0 * alpha * c))

    failures = 0
    densities = []
    tau_realized = tau
    for offset in range(config.num_runs):
        seed = config.base_seed + 1 + offset
        result = run_lock_free_sgd(
            objective,
            BoundedDelayScheduler(config.delay_bound, seed=seed, victims=[0]),
            num_threads=config.num_threads,
            step_size=alpha,
            iterations=horizon,
            x0=x0,
            seed=seed,
            epsilon=epsilon,
            stop_epsilon=epsilon / 4.0,
        )
        tau_realized = max(tau_realized, measure_tau_max(result.records))
        if result.hit_time is None:
            failures += 1
        densities.extend(
            int(np.count_nonzero(r.gradient)) for r in result.records[:50]
        )
    probability = failures / config.num_runs
    low, _ = wilson_interval(failures, config.num_runs)
    bound = corollary_6_7_failure_bound(
        iterations=horizon,
        epsilon=epsilon,
        strong_convexity=c,
        second_moment=second_moment,
        lipschitz=lipschitz,
        tau_max=tau_realized,
        num_threads=config.num_threads,
        dim=config.dim,
        x0_distance=x0_distance,
    )
    ok = bool(low <= bound)
    table.add_row(
        [
            label,
            int(max(densities)),
            horizon,
            f"{alpha:.5g}",
            probability,
            bound,
            ok,
        ]
    )
    return probability, bound, ok


def run(config: E11Config) -> ExperimentResult:
    """Execute E11: dense and sparse oracles under the same machinery."""
    sparse = SeparableQuadratic(
        np.linspace(0.8, 1.2, config.dim), noise_sigma=0.2
    )
    design, targets, _ = make_regression(
        config.num_points, config.dim, noise_sigma=0.1,
        seed=config.base_seed,
    )
    dense = LeastSquares(design, targets)

    table = Table(
        [
            "workload",
            "max grad density",
            "T",
            "alpha (Eq.12)",
            "measured P(F_T)",
            "Cor 6.7 bound",
            "ok",
        ],
        title=(
            f"E11: dense vs 1-sparse oracles, same Eq.(12) machinery "
            f"(n={config.num_threads}, delay bound={config.delay_bound}, "
            f"{config.num_runs} runs each)"
        ),
    )
    x0_sparse = np.full(config.dim, 2.0)
    x0_dense = dense.x_star + np.full(config.dim, 1.0)
    p_sparse, b_sparse, ok_sparse = _measure(
        config, sparse, x0_sparse, "sparse (NIPS'15 assumption holds)", table
    )
    p_dense, b_dense, ok_dense = _measure(
        config, dense, x0_dense, "dense (assumption violated)", table
    )
    passed = ok_sparse and ok_dense

    return ExperimentResult(
        experiment_id="E11",
        title="Departure (2) — the analysis covers dense gradients, not "
        "just single-non-zero-entry oracles",
        table=table,
        passed=passed,
        notes=(
            "acceptance: the measured failure probability respects the "
            "Cor 6.7 bound on BOTH workloads; the dense row (max gradient "
            "density = d) is outside prior work's assumptions entirely"
        ),
    )
