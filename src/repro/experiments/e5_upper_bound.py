"""E5 — Theorem 6.5 / Corollary 6.7: the √(τ_max·n) upper bound.

Two claims measured:

1. **The bound holds.**  Running Algorithm 1 with the Eq. (12) step size
   under a delay-bounded adversarial scheduler, the measured failure
   probability P(F_T) stays below the Corollary 6.7 bound for every
   horizon T — including horizons where the bound is non-vacuous (< 1).

2. **The slowdown scales like √(τ_max·n), not τ_max.**  The price of
   asynchrony predicted by the theory is the step-size deflation factor
   (M² + 4√ε·L·M·√(τ_max·n)·√d)/M²; we measure mean hitting time under
   increasing delay bounds and compare its growth against both the
   √-curve and a hypothetical linear-in-τ_max curve (the prior-art
   scaling) — the measured points should track the former.

The adversarial dial is :class:`~repro.sched.bounded_delay.
BoundedDelayScheduler` starving a victim thread as hard as its bound
allows; realized τ_max is *measured* from each trace (the bound inputs
use the worst measured τ_max, so the comparison is honest).
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.epoch_sgd import run_lock_free_sgd
from repro.core.sequential import run_sequential_sgd
from repro.experiments.ensemble import run_ensemble
from repro.experiments.runner import ExperimentResult
from repro.metrics.report import Table
from repro.metrics.stats import wilson_interval
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.obs.paper import merge_paper_metrics, paper_metrics
from repro.sched.bounded_delay import BoundedDelayScheduler
from repro.theory.bounds import (
    corollary_6_7_failure_bound,
    corollary_6_7_step_size,
    slowdown_versus_sequential,
    theorem_3_1_step_size,
)
from repro.theory.contention import tau_max as measure_tau_max


@dataclass
class E5Config:
    """Parameters of the E5 measurement."""

    dim: int = 2
    noise_sigma: float = 0.2
    x0_scale: float = 1.5
    epsilon: float = 0.25
    num_threads: int = 4
    delay_bound: int = 16
    horizons: List[int] = field(default_factory=lambda: [400, 1200, 3000])
    num_runs: int = 25
    slowdown_delay_bounds: List[int] = field(default_factory=lambda: [2, 16, 160])
    slowdown_runs: int = 6
    slowdown_iterations: int = 15000
    pilot_runs: int = 3
    radius_slack: float = 2.0
    vartheta: float = 1.0
    base_seed: int = 500
    jobs: int = 1

    @classmethod
    def quick(cls) -> "E5Config":
        return cls(
            horizons=[400, 1200, 3000],
            num_runs=20,
            slowdown_delay_bounds=[2, 32, 160],
            slowdown_runs=5,
            slowdown_iterations=12000,
        )

    @classmethod
    def full(cls) -> "E5Config":
        return cls(
            horizons=[400, 1200, 3000, 8000],
            num_runs=80,
            slowdown_delay_bounds=[2, 8, 32, 160, 512],
            slowdown_runs=15,
            slowdown_iterations=40000,
        )


def _scheduler(config: E5Config, delay_bound: int, seed: int) -> BoundedDelayScheduler:
    return BoundedDelayScheduler(
        delay_bound, seed=seed, victims=[0], bias=0.9
    )


def _objective(config: E5Config) -> IsotropicQuadratic:
    return IsotropicQuadratic(
        dim=config.dim, noise=GaussianNoise(config.noise_sigma)
    )


def _lockfree_worker(
    config: E5Config,
    delay_bound: int,
    alpha: float,
    iterations: int,
    stop_epsilon: Optional[float],
    seed: int,
) -> Tuple[float, int, bool, Dict[str, object]]:
    """One seeded lock-free run → (hitting time or inf, realized τ_max,
    lemma certificates held, paper-metric obs snapshot)."""
    objective = _objective(config)
    x0 = np.full(config.dim, config.x0_scale)
    result = run_lock_free_sgd(
        objective,
        _scheduler(config, delay_bound, seed),
        num_threads=config.num_threads,
        step_size=alpha,
        iterations=iterations,
        x0=x0,
        seed=seed,
        epsilon=config.epsilon,
        stop_epsilon=stop_epsilon,
    )
    hit = math.inf if result.hit_time is None else float(result.hit_time)
    # Every trace feeding the bound ships with its structural-lemma
    # certificates (6.1/6.2/6.4) — the theory's assumptions, checked.
    # paper_metrics reads them off the same certify_* calls, so the
    # obs snapshot and the pass/fail verdict cannot disagree.
    obs = paper_metrics(result.records, num_threads=config.num_threads)
    certs_ok = (
        int(obs["lemma_6_1_violations"]) == 0
        and bool(obs["lemma_6_2_holds"])
        and bool(obs["lemma_6_4_holds"])
    )
    return hit, measure_tau_max(result.records), certs_ok, obs


def _sequential_worker(config: E5Config, alpha: float, seed: int) -> float:
    """One seeded sequential baseline run → hitting time or inf."""
    objective = _objective(config)
    x0 = np.full(config.dim, config.x0_scale)
    result = run_sequential_sgd(
        objective,
        alpha=alpha,
        iterations=config.slowdown_iterations,
        x0=x0,
        seed=seed,
        epsilon=config.epsilon,
        stop_on_hit=True,
    )
    return math.inf if result.hit_time is None else float(result.hit_time)


def _pilot_tau_max(
    config: E5Config, objective, x0, delay_bound: int, alpha: float
) -> int:
    """Measure the realized τ_max the scheduler produces (worst of a few
    pilot runs) so the step size and bound use an honest input."""
    worst = 1
    for offset in range(config.pilot_runs):
        seed = config.base_seed + 9000 + offset
        result = run_lock_free_sgd(
            objective,
            _scheduler(config, delay_bound, seed),
            num_threads=config.num_threads,
            step_size=alpha,
            iterations=300,
            x0=x0,
            seed=seed,
        )
        worst = max(worst, measure_tau_max(result.records))
    return worst


def run(config: E5Config) -> ExperimentResult:
    """Execute E5 (bound check + slowdown-shape check)."""
    objective = IsotropicQuadratic(
        dim=config.dim, noise=GaussianNoise(config.noise_sigma)
    )
    x0 = np.full(config.dim, config.x0_scale)
    x0_distance = objective.distance_to_opt(x0)
    radius = config.radius_slack * x0_distance
    second_moment = objective.second_moment_bound(radius)
    lipschitz = objective.lipschitz_expected
    c = objective.strong_convexity

    # ------------------------------------------------------------------
    # Part 1: measured P(F_T) vs the Corollary 6.7 bound.
    # ------------------------------------------------------------------
    pilot_alpha = theorem_3_1_step_size(c, second_moment, config.epsilon)
    assumed_tau_max = _pilot_tau_max(
        config, objective, x0, config.delay_bound, pilot_alpha
    )
    alpha = corollary_6_7_step_size(
        c,
        second_moment,
        lipschitz,
        assumed_tau_max,
        config.num_threads,
        config.dim,
        config.epsilon,
        config.vartheta,
    )

    max_horizon = max(config.horizons)
    bound_runs = run_ensemble(
        functools.partial(
            _lockfree_worker, config, config.delay_bound, alpha, max_horizon, None
        ),
        range(config.base_seed, config.base_seed + config.num_runs),
        jobs=config.jobs,
    )
    hits = np.array([hit for hit, _tau, _ok, _obs in bound_runs])
    realized_tau_max = max(
        (tau for _hit, tau, _ok, _obs in bound_runs), default=assumed_tau_max
    )
    realized_tau_max = max(realized_tau_max, assumed_tau_max)
    certified_runs = sum(1 for _hit, _tau, ok, _obs in bound_runs if ok)
    certificates_ok = certified_runs == len(bound_runs)
    obs_cells: List[Dict[str, object]] = [
        {"part": "bound", "delay_bound": config.delay_bound, "metrics": obs}
        for _hit, _tau, _ok, obs in bound_runs
    ]

    bound_table = Table(
        ["T", "measured P(F_T)", "wilson low", "Cor 6.7 bound", "ok"],
        title=(
            f"E5a: lock-free failure probability (n={config.num_threads}, "
            f"delay bound={config.delay_bound}, tau_max={realized_tau_max}, "
            f"alpha={alpha:.5g}, {config.num_runs} runs)"
        ),
    )
    passed = True
    xs: List[float] = []
    measured_series: List[float] = []
    bound_series: List[float] = []
    for horizon in config.horizons:
        failures = int(np.count_nonzero(hits > horizon))
        probability = failures / config.num_runs
        low, _high = wilson_interval(failures, config.num_runs)
        bound = corollary_6_7_failure_bound(
            iterations=horizon,
            epsilon=config.epsilon,
            strong_convexity=c,
            second_moment=second_moment,
            lipschitz=lipschitz,
            tau_max=realized_tau_max,
            num_threads=config.num_threads,
            dim=config.dim,
            x0_distance=x0_distance,
            vartheta=config.vartheta,
        )
        ok = low <= bound
        passed = passed and ok
        xs.append(float(horizon))
        measured_series.append(probability)
        bound_series.append(bound)
        bound_table.add_row([horizon, probability, low, bound, ok])

    # ------------------------------------------------------------------
    # Part 2: hitting-time slowdown vs the sqrt(tau_max*n) prediction.
    # ------------------------------------------------------------------
    seq_alpha = theorem_3_1_step_size(c, second_moment, config.epsilon)
    seq_hits: List[float] = [
        hit
        for hit in run_ensemble(
            functools.partial(_sequential_worker, config, seq_alpha),
            range(
                config.base_seed + 7000,
                config.base_seed + 7000 + config.slowdown_runs,
            ),
            jobs=config.jobs,
        )
        if math.isfinite(hit)
    ]
    seq_mean = float(np.mean(seq_hits)) if seq_hits else float("nan")

    slowdown_table = Table(
        [
            "delay bound",
            "tau_max",
            "alpha (Eq.12)",
            "mean hit",
            "measured slowdown",
            "predicted sqrt",
            "linear-in-tau (prior art)",
        ],
        title=f"E5b: slowdown vs sequential (seq mean hit = {seq_mean:.0f})",
    )
    sweep_tau: List[float] = []
    measured_slowdown: List[float] = []
    predicted_sqrt: List[float] = []
    predicted_linear: List[float] = []
    for delay_bound in config.slowdown_delay_bounds:
        tau_pilot = _pilot_tau_max(config, objective, x0, delay_bound, pilot_alpha)
        alpha_d = corollary_6_7_step_size(
            c,
            second_moment,
            lipschitz,
            tau_pilot,
            config.num_threads,
            config.dim,
            config.epsilon,
        )
        first_seed = config.base_seed + 8000 + 37 * delay_bound
        slowdown_results = run_ensemble(
            functools.partial(
                _lockfree_worker,
                config,
                delay_bound,
                alpha_d,
                config.slowdown_iterations,
                config.epsilon,
            ),
            range(first_seed, first_seed + config.slowdown_runs),
            jobs=config.jobs,
        )
        run_hits = [
            hit
            for hit, _tau, _ok, _obs in slowdown_results
            if math.isfinite(hit)
        ]
        certificates_ok = certificates_ok and all(
            ok for _hit, _tau, ok, _obs in slowdown_results
        )
        tau_realized = max(
            (tau for _hit, tau, _ok, _obs in slowdown_results),
            default=tau_pilot,
        )
        obs_cells.extend(
            {"part": "slowdown", "delay_bound": delay_bound, "metrics": obs}
            for _hit, _tau, _ok, obs in slowdown_results
        )
        tau_realized = max(tau_realized, tau_pilot)
        mean_hit = float(np.mean(run_hits)) if run_hits else float("nan")
        slowdown = mean_hit / seq_mean if seq_hits and run_hits else float("nan")
        sqrt_prediction = slowdown_versus_sequential(
            config.epsilon,
            second_moment,
            lipschitz,
            tau_realized,
            config.num_threads,
            config.dim,
        )
        gradient_bound = math.sqrt(second_moment)
        linear_prediction = (
            second_moment
            + 2.0
            * lipschitz
            * gradient_bound
            * tau_realized
            * math.sqrt(config.epsilon)
        ) / second_moment
        slowdown_table.add_row(
            [
                delay_bound,
                tau_realized,
                alpha_d,
                mean_hit,
                slowdown,
                sqrt_prediction,
                linear_prediction,
            ]
        )
        if math.isfinite(slowdown):
            sweep_tau.append(float(tau_realized))
            measured_slowdown.append(slowdown)
            predicted_sqrt.append(sqrt_prediction)
            predicted_linear.append(linear_prediction)

    # Shape acceptance: measured slowdown closer to the sqrt curve than
    # to the linear curve at the largest tau (where they separate).
    if len(measured_slowdown) >= 2:
        gap_sqrt = abs(measured_slowdown[-1] - predicted_sqrt[-1])
        gap_linear = abs(measured_slowdown[-1] - predicted_linear[-1])
        passed = passed and gap_sqrt <= gap_linear

    combined = Table(["section"], title="")
    combined.add_row(["(see E5a / E5b tables in notes)"])
    passed = passed and certificates_ok
    notes = (
        bound_table.render()
        + "\n\n"
        + slowdown_table.render()
        + "\n\nlemma certificates (6.1 total order, 6.2 window contention, "
        "6.4 indicator sums): "
        + ("held on every trace" if certificates_ok else "VIOLATED on some trace")
        + "\n\nacceptance: (a) Wilson lower limit of measured P(F_T) below "
        "the Cor 6.7 bound at every horizon; (b) at the largest tau_max the "
        "measured slowdown is closer to the sqrt(tau_max*n) prediction than "
        "to the linear-in-tau prior-art curve; (c) structural-lemma "
        "certificates hold on every measured trace"
    )
    return ExperimentResult(
        experiment_id="E5",
        title="Thm 6.5 / Cor 6.7 — lock-free SGD converges; price of "
        "asynchrony is sqrt(tau_max*n)",
        table=bound_table,
        xs=sweep_tau if len(sweep_tau) >= 2 else xs,
        series=(
            {
                "measured slowdown": measured_slowdown,
                "sqrt prediction": predicted_sqrt,
                "linear prior art": predicted_linear,
            }
            if len(sweep_tau) >= 2
            else {"measured P(F_T)": measured_series, "Cor 6.7 bound": bound_series}
        ),
        passed=passed,
        notes=notes,
        obs={
            "traces": obs_cells,
            "aggregate": merge_paper_metrics(
                [cell["metrics"] for cell in obs_cells]
            ),
        },
    )
