"""Shared experiment plumbing.

An experiment maps a parameter sweep to (measured, predicted) series and
renders them as a table plus an ASCII figure.  :class:`ExperimentResult`
is the uniform container every ``e*_.run()`` returns; benchmarks print
it, tests assert on its ``series``, and EXPERIMENTS.md quotes its table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.metrics.ascii_plot import ascii_plot
from repro.metrics.report import Table


@dataclass
class ExperimentResult:
    """Uniform result of one experiment driver.

    Attributes:
        experiment_id: "E1" .. "E8", "F1", "A1".
        title: Human-readable claim description.
        table: The rendered rows (what EXPERIMENTS.md quotes).
        xs: Sweep values (x axis of the figure), possibly empty.
        series: Name -> y values over ``xs`` (measured and predicted
            curves, for shape assertions and the ASCII figure).
        passed: Whether the claim's acceptance criterion held (the
            measured quantity respected the bound / matched the shape).
        notes: Free-form commentary (acceptance criterion, caveats).
        obs: Optional observability export — the experiment's
            paper-aligned metric snapshots (per-trace cells plus an
            ``aggregate``), JSON-safe and deterministic.  ``repro run
            --metrics`` writes these; :meth:`render` never includes
            them, so printed artifacts are unchanged.
    """

    experiment_id: str
    title: str
    table: Table
    xs: List[float] = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)
    passed: bool = True
    notes: str = ""
    obs: Optional[Dict[str, object]] = None

    def render(self, plot: bool = True, logy: bool = False) -> str:
        """Table + optional ASCII figure + verdict, as printable text."""
        parts = [f"== {self.experiment_id}: {self.title} ==", self.table.render()]
        if plot and self.series and len(self.xs) >= 2:
            parts.append(
                ascii_plot(
                    self.xs,
                    self.series,
                    title=f"{self.experiment_id} ({'log-y' if logy else 'linear'})",
                    logy=logy,
                )
            )
        if self.notes:
            parts.append(self.notes)
        parts.append(f"verdict: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(parts)


def seed_range(base_seed: int, count: int) -> List[int]:
    """The seeds an ensemble uses: ``base_seed .. base_seed+count-1``."""
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    return list(range(base_seed, base_seed + count))


def sweep(
    values: Sequence,
    run_one: Callable,
) -> List:
    """Map ``run_one`` over sweep values, collecting results in order.

    Trivial on purpose: experiments stay deterministic and debuggable
    (no hidden parallelism — the simulator inside is single-threaded
    anyway, and seeds pin everything).
    """
    return [run_one(value) for value in values]
