"""A1 — Ablations of the design choices the paper argues for.

Three decisions the paper motivates, each measured by turning it off:

1. **fetch&add vs write.**  Section 1: updates must be fetch&adds,
   "since otherwise a delayed thread could completely obliterate all
   progress made up to some point, by overwriting the entire model".
   We run the stale-gradient adversary against both update primitives;
   the write variant's stale ``X[j] ← view[j] − α·g̃[j]`` resets the
   model toward the stale view, while fetch&add merely perturbs it.

2. **Decreasing vs fixed step size.**  The Theorem 5.1 / Section 8
   point: a fixed-α algorithm can be kept out of any small success
   region forever by stale updates, while Algorithm 2's halving schedule
   shrinks the damage each epoch.  We run both under the same adversary
   and compare final distances.

3. **Epoch isolation on vs off.**  Algorithm 2 requires updates to land
   only in their own epoch (the DCAS guard).  Disabling the guard lets
   gradients generated under a large early-epoch α crash into late
   epochs; we measure the damage under a delay adversary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.epoch_sgd import EpochSGDProgram, run_lock_free_sgd
from repro.core.full_sgd import FullSGD
from repro.experiments.runner import ExperimentResult
from repro.metrics.report import Table
from repro.objectives.noise import GaussianNoise, ZeroNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.priority_delay import PriorityDelayScheduler
from repro.sched.stale_attack import StaleGradientAttack


@dataclass
class A1Config:
    """Parameters of the ablation runs."""

    step_size: float = 0.1
    attack_delay: int = 60
    iterations: int = 800
    x0_scale: float = 5.0
    epsilon: float = 0.01
    full_sgd_epochs_iterations: int = 300
    num_runs: int = 5
    base_seed: int = 3000

    @classmethod
    def quick(cls) -> "A1Config":
        return cls(num_runs=3, iterations=600)

    @classmethod
    def full(cls) -> "A1Config":
        return cls(num_runs=12, iterations=2000, full_sgd_epochs_iterations=600)


def _mean_final_distance_lockfree(
    config: A1Config, use_write: bool, objective, x0
) -> float:
    distances = []
    for offset in range(config.num_runs):
        seed = config.base_seed + offset

        def factory(model, counter, thread_index):
            return EpochSGDProgram(
                model=model,
                counter=counter,
                objective=objective,
                step_size=config.step_size,
                max_iterations=config.iterations,
                use_write=use_write,
            )

        result = run_lock_free_sgd(
            objective,
            StaleGradientAttack(victim=1, runner=0, delay=config.attack_delay),
            num_threads=2,
            step_size=config.step_size,
            iterations=config.iterations,
            x0=x0,
            seed=seed,
            program_factory=factory,
        )
        distances.append(objective.distance_to_opt(result.x_final))
    return float(np.mean(distances))


def run(config: A1Config) -> ExperimentResult:
    """Execute all three ablations."""
    table = Table(
        ["ablation", "design (paper)", "ablated", "factor", "design wins"],
        title="A1: design-choice ablations (mean final ||x - x*||, "
        f"{config.num_runs} runs each)",
    )
    passed = True

    # ------------------------------------------------------------------
    # 1. fetch&add vs write under the stale-gradient adversary.
    # ------------------------------------------------------------------
    objective = IsotropicQuadratic(dim=2, noise=ZeroNoise())
    x0 = np.full(2, config.x0_scale)
    faa_distance = _mean_final_distance_lockfree(config, False, objective, x0)
    write_distance = _mean_final_distance_lockfree(config, True, objective, x0)
    factor = write_distance / max(faa_distance, 1e-12)
    ok = write_distance > faa_distance
    passed = passed and ok
    table.add_row(
        ["update primitive (FAA vs write)", faa_distance, write_distance, factor, ok]
    )

    # ------------------------------------------------------------------
    # 2. decreasing (Algorithm 2) vs fixed step size under a delay
    #    adversary, matched iteration budgets.
    # ------------------------------------------------------------------
    noisy = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))
    x0_noisy = np.full(2, 2.0)
    driver = FullSGD(
        noisy,
        num_threads=2,
        epsilon=config.epsilon,
        alpha0=config.step_size,
        iterations_per_epoch=config.full_sgd_epochs_iterations,
        x0=x0_noisy,
    )
    budget = driver.num_epochs * config.full_sgd_epochs_iterations
    full_distances = []
    fixed_distances = []
    for offset in range(config.num_runs):
        seed = config.base_seed + 50 + offset
        adversary = PriorityDelayScheduler(victims=[0], delay=config.attack_delay,
                                           seed=seed)
        out = driver.run(adversary, seed=seed)
        full_distances.append(out.distance)
        fixed = run_lock_free_sgd(
            noisy,
            PriorityDelayScheduler(victims=[0], delay=config.attack_delay, seed=seed),
            num_threads=2,
            step_size=config.step_size,
            iterations=budget,
            x0=x0_noisy,
            seed=seed,
        )
        fixed_distances.append(noisy.distance_to_opt(fixed.x_final))
    full_mean = float(np.mean(full_distances))
    fixed_mean = float(np.mean(fixed_distances))
    factor2 = fixed_mean / max(full_mean, 1e-12)
    ok2 = full_mean < fixed_mean
    passed = passed and ok2
    table.add_row(
        ["step size (halving vs fixed)", full_mean, fixed_mean, factor2, ok2]
    )

    # ------------------------------------------------------------------
    # 3. epoch isolation (guarded vs unguarded updates).
    # ------------------------------------------------------------------
    guarded_distances = []
    unguarded_distances = []
    for offset in range(config.num_runs):
        seed = config.base_seed + 100 + offset
        for use_guard, sink in (
            (True, guarded_distances),
            (False, unguarded_distances),
        ):
            driver3 = FullSGD(
                noisy,
                num_threads=2,
                epsilon=config.epsilon,
                alpha0=config.step_size,
                iterations_per_epoch=config.full_sgd_epochs_iterations,
                x0=x0_noisy,
                use_guard=use_guard,
            )
            out = driver3.run(
                StaleGradientAttack(victim=1, runner=0, delay=config.attack_delay),
                seed=seed,
            )
            sink.append(out.distance)
    guarded_mean = float(np.mean(guarded_distances))
    unguarded_mean = float(np.mean(unguarded_distances))
    factor3 = unguarded_mean / max(guarded_mean, 1e-12)
    # Guard removal lets stale large-alpha updates land; its damage is
    # adversary-dependent, so gate only on the guarded variant reaching
    # the target and report the comparison.
    ok3 = guarded_mean <= math.sqrt(config.epsilon)
    passed = passed and ok3
    table.add_row(
        ["epoch isolation (guard vs none)", guarded_mean, unguarded_mean, factor3, ok3]
    )

    return ExperimentResult(
        experiment_id="A1",
        title="Ablations — FAA updates, decreasing step size, epoch isolation",
        table=table,
        passed=passed,
        notes=(
            "acceptance: (1) write-updates end farther from x* than "
            "fetch&add under the stale adversary; (2) Algorithm 2's halving "
            "schedule beats the fixed-alpha run at equal budget; (3) the "
            "guarded FullSGD still reaches sqrt(eps) under attack"
        ),
    )
