"""F1 — Figure 1: the applied/pending update picture of a live execution.

The paper's only figure is a schematic of the Section-6.1 bookkeeping:
rows of updates per iteration, the ones already applied to shared memory
drawn in red, the pending ones in black, a dot marking where each thread
has stopped updating; summing the applied values column-wise yields the
view v_t.  We regenerate it from a *real* trace: run Algorithm 1 with a
few threads, freeze the clock mid-execution, and render each
iteration's per-component update status from the recorded fetch&add
times.  Acceptance: at the chosen observation time the matrix exhibits
both applied and pending updates (i.e. the inconsistency the figure
illustrates actually occurs), and every update with time ≤ t_obs is
marked applied.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.epoch_sgd import run_lock_free_sgd
from repro.experiments.runner import ExperimentResult
from repro.metrics.report import Table, render_update_matrix
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.random_sched import RandomScheduler


@dataclass
class F1Config:
    """Parameters of the F1 rendering."""

    dim: int = 6
    num_threads: int = 3
    iterations: int = 14
    step_size: float = 0.05
    seed: int = 42

    @classmethod
    def quick(cls) -> "F1Config":
        return cls()

    @classmethod
    def full(cls) -> "F1Config":
        return cls(iterations=30)


def run(config: F1Config) -> ExperimentResult:
    """Execute F1: produce the update matrix of a real interleaving."""
    objective = IsotropicQuadratic(
        dim=config.dim, noise=GaussianNoise(1.0)
    )
    x0 = np.linspace(1.0, 2.0, config.dim)
    result = run_lock_free_sgd(
        objective,
        RandomScheduler(seed=config.seed),
        num_threads=config.num_threads,
        step_size=config.step_size,
        iterations=config.iterations,
        x0=x0,
        seed=config.seed,
    )
    # Observe mid-execution so both applied and pending updates exist.
    observation_time = result.sim_steps * 2 // 3
    matrix = render_update_matrix(result.records, config.dim, at_time=observation_time)

    # Census from the records themselves (the rendered string also
    # contains prose, so counting characters there would be wrong).
    visible_rows = [
        r
        for r in sorted(result.records, key=lambda r: r.order_time)
        if r.start_time <= observation_time
    ]
    applied = 0
    pending = 0
    for record in visible_rows:
        if record.gradient is None or record.update_times is None:
            continue
        for j in range(config.dim):
            if record.gradient[j] == 0.0:
                continue
            update_time = record.update_times[j]
            if update_time is not None and update_time <= observation_time:
                applied += 1
            else:
                pending += 1
    # Cross-check the renderer against the census: the matrix body must
    # contain exactly `applied` '#' cells between its '|' delimiters.
    rendered_applied = sum(
        line.split("|")[1].count("#")
        for line in matrix.splitlines()
        if line.count("|") == 2
    )
    passed = (
        applied > 0
        and pending > 0
        and rendered_applied == applied
        and len(visible_rows) > 0
    )

    table = Table(
        ["quantity", "value"],
        title=f"F1: update-matrix census at t={observation_time}",
    )
    table.add_row(["iterations in trace", len(result.records)])
    table.add_row(["iterations visible at t_obs", len(visible_rows)])
    table.add_row(["applied cells (#, paper's red)", applied])
    table.add_row(["pending cells (o, paper's black)", pending])

    return ExperimentResult(
        experiment_id="F1",
        title="Figure 1 — applied vs pending updates of a live execution",
        table=table,
        passed=passed,
        notes=matrix
        + "\n\nacceptance: the frozen-clock matrix shows both applied and "
        "pending updates, and the applied count matches the recorded "
        "fetch&add times exactly",
    )
