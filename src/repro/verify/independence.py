"""The independence relation the partial-order reduction prunes with.

Two pending operations *commute* — executing them in either order
produces the same memory state, the same per-thread results and the same
happens-before relation — unless they touch a common memory component
with at least one writer.  The enumerator only needs a *sound*
under-approximation of independence: calling two dependent operations
independent would merge distinct Mazurkiewicz traces (unsound pruning),
while calling two independent operations dependent merely explores a few
redundant interleavings.  Unknown opcodes therefore conflict with
everything.

Footprints are computed from the concrete operation descriptors
(:mod:`repro.shm.ops`), not from static program text, so an address
computed at runtime is handled exactly.  A successful and a failed CAS
behave differently, but whether a CAS succeeds depends on the order
being decided — so CAS is conservatively treated as a writer.
Fetch&add results also depend on order (the returned pre-values swap),
which the shared-address rule already captures: two fetch&adds on the
same cell are write/write conflicts.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from repro.shm.ops import (
    OP_COMPARE_AND_SWAP,
    OP_DCSS,
    OP_FETCH_ADD,
    OP_GUARDED_FETCH_ADD,
    OP_NOOP,
    OP_READ,
    OP_WRITE,
)

#: ``(reads, writes)`` address sets; ``None`` marks the universal
#: footprint of an unknown opcode (conflicts with everything).
Footprint = Optional[Tuple[FrozenSet[int], FrozenSet[int]]]

_EMPTY: FrozenSet[int] = frozenset()


def op_footprint(op: object) -> Footprint:
    """``(reads, writes)`` for a pending operation descriptor.

    Returns ``None`` for opcodes this module does not know, which
    :func:`ops_conflict` treats as conflicting with everything —
    soundness over precision.
    """
    opcode = getattr(op, "opcode", -1)
    if opcode == OP_READ:
        return (frozenset((op.address,)), _EMPTY)
    if opcode == OP_WRITE:
        return (_EMPTY, frozenset((op.address,)))
    if opcode in (OP_FETCH_ADD, OP_COMPARE_AND_SWAP):
        cell = frozenset((op.address,))
        return (cell, cell)
    if opcode in (OP_DCSS, OP_GUARDED_FETCH_ADD):
        return (
            frozenset((op.address, op.guard_address)),
            frozenset((op.address,)),
        )
    if opcode == OP_NOOP:
        return (_EMPTY, _EMPTY)
    return None


def footprints_conflict(a: Footprint, b: Footprint) -> bool:
    """Whether two footprints share a component with at least one writer."""
    if a is None or b is None:
        return True
    reads_a, writes_a = a
    reads_b, writes_b = b
    if writes_a & (reads_b | writes_b):
        return True
    return bool(writes_b & (reads_a | writes_a))


def ops_conflict(a: object, b: object) -> bool:
    """Whether two pending operations are *dependent* (do not commute).

    This is the relation D of the Mazurkiewicz trace monoid the
    sleep-set reduction works over: schedules are trace-equivalent iff
    one can be obtained from the other by swapping adjacent steps of
    different threads whose operations are not in D.
    """
    return footprints_conflict(op_footprint(a), op_footprint(b))
