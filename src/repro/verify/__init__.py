"""Exhaustive small-scope certification (DESIGN.md §16).

Two engines share one report model:

* :mod:`repro.verify.enumerator` — a depth-first driver over the
  Simulator that visits every Mazurkiewicz-trace-distinct schedule at
  small scope (sleep-set partial-order reduction over concrete pending
  operations), running the race/staleness sanitizer and the Lemma
  6.1/6.2/6.4 certifiers on each complete schedule.
* :mod:`repro.verify.smt` — quantifier-free queries for the Lemma 6.4
  combinatorial inequality and the Theorem 5.1 fixed-α adversary,
  solved with z3 when the optional ``[verify]`` extra is installed and
  by exact finite-domain engines otherwise.

:mod:`repro.verify.engine` grids both over registered algorithm
variants plus seeded sanitizer mutants (:mod:`repro.verify.mutants`),
producing either a universal certificate or concrete counterexample
schedules that replay deterministically through
:class:`repro.sched.replay.PrefixReplayScheduler`.
"""

from repro.verify.enumerator import (
    EnumerationResult,
    EnumerationStats,
    enumerate_schedules,
)
from repro.verify.engine import (
    VerifyConfig,
    VerifyScope,
    run_verify,
    verify_fingerprint,
    verify_variant_names,
)
from repro.verify.independence import op_footprint, ops_conflict
from repro.verify.mutants import mutant_names
from repro.verify.report import VerifyCellOutcome, VerifyReport
from repro.verify.smt import (
    SmtConfig,
    SmtResult,
    check_lemma_6_4,
    check_theorem_5_1,
    run_smt_queries,
    solver_available,
)

__all__ = [
    "EnumerationResult",
    "EnumerationStats",
    "SmtConfig",
    "SmtResult",
    "VerifyCellOutcome",
    "VerifyConfig",
    "VerifyReport",
    "VerifyScope",
    "check_lemma_6_4",
    "check_theorem_5_1",
    "enumerate_schedules",
    "mutant_names",
    "op_footprint",
    "ops_conflict",
    "run_smt_queries",
    "run_verify",
    "solver_available",
    "verify_fingerprint",
    "verify_variant_names",
]
