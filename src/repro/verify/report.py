"""The verify tier's report model — one shape for both engines.

Mirrors the E13/E14 report discipline: frozen plain-value outcome rows
that cross the process pool untouched, exact payload codecs so
journaled and freshly computed cells mix byte-identically, grid-ordered
aggregation, and deterministic JSON (sorted keys, no timestamps) so
``--jobs 1`` and ``--jobs N`` runs compare with ``cmp``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Tuple

from repro.core.algorithm import LEMMAS
from repro.errors import ConfigurationError
from repro.metrics.report import Table
from repro.verify.smt import SmtResult


@dataclass(frozen=True)
class Counterexample:
    """A concrete schedule violating a certificate or sanitizer rule.

    ``schedule`` replays deterministically through
    :class:`repro.sched.replay.PrefixReplayScheduler`; ``replay_ok``
    records that the engine *did* replay it and reproduced the same
    findings and final state digest.
    """

    schedule: Tuple[int, ...]
    findings: Tuple[str, ...]
    replay_ok: bool


@dataclass(frozen=True)
class VerifyCellOutcome:
    """One (variant, seed) enumeration cell — plain values only."""

    variant: str
    seed: int
    #: ``"clean"`` (a registered algorithm: every schedule must certify)
    #: or ``"mutant"`` (a seeded bug: some schedule must not).
    expectation: str
    threads: int
    iterations: int
    max_steps: int
    #: Mazurkiewicz-trace representatives explored (sleep-set POR on).
    schedules: int
    #: Complete schedules of the unreduced tree (0 when not measured).
    interleavings: int
    nodes: int
    sleep_skips: int
    memo_skips: int
    #: Schedules truncated by ``max_steps`` — any non-zero value voids
    #: exhaustiveness and fails the cell.
    budget_hits: int
    #: ``interleavings / schedules`` (0.0 when the full tree was not
    #: measured).
    reduction_factor: float
    #: Schedules with at least one violation (kept or not).
    counterexample_count: int
    #: First few counterexamples in DFS order, replay-verified.
    counterexamples: Tuple[Counterexample, ...]
    #: Whether some kept counterexample carries a *sanitizer* finding —
    #: the oracle-agreement bit for mutants (the enumerator found the
    #: bug AND the dynamic analysis flags that same schedule).
    sanitizer_agreement: bool
    #: ``(lemma, status)`` per paper lemma aggregated over every
    #: explored schedule: ``"holds"``, ``"violated:<k>"`` (k schedules)
    #: or ``"n/a"`` (variant declares it structurally inapplicable).
    certificates: Tuple[Tuple[str, str], ...]


def cell_passed(outcome: VerifyCellOutcome) -> bool:
    """The cell-level verdict.

    A clean variant passes when enumeration was exhaustive (no budget
    hits) and **no** schedule produced a violation; a mutant passes when
    at least one counterexample exists, every kept one replayed
    deterministically, and the sanitizer flagged it (oracle agreement).
    """
    if outcome.budget_hits > 0:
        return False
    if outcome.expectation == "clean":
        return outcome.counterexample_count == 0 and all(
            not status.startswith("violated")
            for _lemma, status in outcome.certificates
        )
    return (
        outcome.counterexample_count >= 1
        and len(outcome.counterexamples) >= 1
        and all(c.replay_ok for c in outcome.counterexamples)
        and outcome.sanitizer_agreement
    )


def outcome_to_payload(outcome: VerifyCellOutcome) -> Dict[str, Any]:
    """JSON-safe journal payload for one verify cell."""
    return asdict(outcome)


def outcome_from_payload(payload: Dict[str, Any]) -> VerifyCellOutcome:
    """Inverse of :func:`outcome_to_payload` — exact reconstruction."""
    data = dict(payload)
    data["counterexamples"] = tuple(
        Counterexample(
            schedule=tuple(int(s) for s in row["schedule"]),
            findings=tuple(str(f) for f in row["findings"]),
            replay_ok=bool(row["replay_ok"]),
        )
        for row in data["counterexamples"]
    )
    data["certificates"] = tuple(
        (lemma, status) for lemma, status in data["certificates"]
    )
    return VerifyCellOutcome(**data)


def smt_to_payload(result: SmtResult) -> Dict[str, Any]:
    return asdict(result)


@dataclass
class VerifyReport:
    """Everything both engines proved (or failed to)."""

    outcomes: List[VerifyCellOutcome]
    smt_results: List[SmtResult]

    @property
    def enumeration_ok(self) -> bool:
        """Every cell met its expectation (universal certificate on
        clean variants, replayable flagged counterexample on mutants)."""
        return all(cell_passed(o) for o in self.outcomes)

    @property
    def smt_ok(self) -> bool:
        """No lemma query refuted (skipped-for-missing-solver is not a
        failure; the finite engines still decide every default query)."""
        return all(r.status != "refuted" for r in self.smt_results)

    @property
    def passed(self) -> bool:
        return self.enumeration_ok and self.smt_ok

    def render(self) -> str:
        """ASCII report (the CLI artifact)."""
        table = Table(
            [
                "variant",
                "seed",
                "expect",
                "schedules",
                "full tree",
                "reduction",
                "counterex",
                *[f"lemma {lemma}" for lemma in LEMMAS],
                "verdict",
            ],
            title="Verification tier: exhaustive small-scope enumeration",
        )
        for o in self.outcomes:
            table.add_row(
                [
                    o.variant,
                    o.seed,
                    o.expectation,
                    o.schedules,
                    o.interleavings or "-",
                    f"{o.reduction_factor:.2f}x" if o.reduction_factor else "-",
                    o.counterexample_count or "none",
                    *[status for _lemma, status in o.certificates],
                    "pass" if cell_passed(o) else "FAIL",
                ]
            )
        parts = [table.render()]
        for o in self.outcomes:
            for cx in o.counterexamples:
                replay = "replay ok" if cx.replay_ok else "REPLAY DIVERGED"
                parts.append(
                    f"COUNTEREXAMPLE {o.variant} seed={o.seed} "
                    f"schedule={list(cx.schedule)} ({replay})"
                )
                for finding in cx.findings:
                    parts.append(f"  {finding}")
        if self.smt_results:
            parts.append("SMT lemma queries (unsat means proved):")
            for result in self.smt_results:
                parts.append(f"  {result}")
        parts.append(f"verdict: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(parts)

    def to_json(self) -> str:
        """Deterministic JSON — identical bytes across ``--jobs``."""
        payload = {
            "outcomes": [outcome_to_payload(o) for o in self.outcomes],
            "cell_verdicts": [
                {
                    "variant": o.variant,
                    "seed": o.seed,
                    "passed": cell_passed(o),
                }
                for o in self.outcomes
            ],
            "smt_results": [smt_to_payload(r) for r in self.smt_results],
            "enumeration_ok": self.enumeration_ok,
            "smt_ok": self.smt_ok,
            "passed": self.passed,
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def write(self, path: str, fmt: str = "json") -> None:
        """Atomically persist the report (``fmt`` = ``"json"``/``"txt"``)."""
        from repro.durable.atomic_io import atomic_write

        if fmt == "json":
            text = self.to_json()
        elif fmt == "txt":
            text = self.render() + "\n"
        else:
            raise ConfigurationError(f"unknown report format: {fmt!r}")
        atomic_write(path, text.encode("utf-8"))
