"""Seeded sanitizer mutants — ground truth for oracle agreement.

The enumerator proves universal statements; the sanitizer samples.  To
pin the sanitizer's *recall*, the verify grid includes deliberately
broken algorithm variants whose bug manifests only under some
interleavings: at enumerable scope the enumerator must find a concrete
counterexample schedule for each, and the sanitizer/certifiers must
flag that same schedule (they are the per-schedule checkers), otherwise
either the enumeration or the dynamic analysis lost a bug class.

The mutants live in a registry local to this module — they are *not*
:func:`repro.core.algorithm.register_algorithm`-registered, because the
zoo grid and CI treat the global registry as "every variant must
certify clean" and these exist to fail.

* ``mutant-torn-counter`` — Algorithm 1 with the counter's
  ``fetch&add`` torn into a read followed by a write.  Two threads that
  read before either writes claim the same iteration index: a duplicate
  the Lemma 6.1 certifier (and the sanitizer's iteration-order check)
  reports, plus a lost update on the counter cell itself (RS001).
* ``mutant-lost-update`` — Algorithm 1 with plain writes in place of
  the per-entry fetch&add (the paper's lost-update catastrophe; the
  existing ``use_write`` ablation).  A schedule interleaving another
  thread's write between a read and the dependent write drops an
  update: the sanitizer's vector-clock tracker reports RS001.  Both
  threads must run an iteration concurrently for the race to exist, so
  this variant asks for an iteration budget of at least 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.algorithm import Algorithm, AlgorithmSetup
from repro.core.epoch_sgd import EpochSGDProgram, sgd_iteration_body
from repro.errors import ConfigurationError
from repro.runtime.program import ThreadContext


class TornCounterProgram(EpochSGDProgram):
    """Algorithm 1 with the iteration-counter fetch&add torn in two.

    The claim step reads C and then writes C+1 as two separate shared
    memory operations.  Sequential schedules are indistinguishable from
    the correct program; any schedule that interleaves another thread's
    read between the two duplicates an iteration index.
    """

    def run(self, ctx: ThreadContext):
        accumulator = np.zeros(self.model.length)
        iterations_done = 0
        ctx.annotate("iterations_done", 0)

        while True:
            ctx.annotate("phase", "start")
            claimed = yield self.counter.read_count_op()
            if claimed >= self.max_iterations:
                break
            # The torn second half of the claim: a plain write computed
            # from the stale read above.  This is the seeded bug.
            yield self.counter.write_op(float(claimed + 1))  # repro: allow(RPL101)
            record = yield from sgd_iteration_body(
                ctx,
                self.model,
                self.objective,
                self.step_size,
                int(claimed),
                self.epoch,
                start_time=ctx.now - 2,
            )
            if self.accumulate:
                accumulator -= self.step_size * record.gradient
            iterations_done += 1
            ctx.annotate("iterations_done", iterations_done)
            if self.record_iterations:
                ctx.emit(record)

        ctx.annotate("phase", "done")
        return {"iterations": iterations_done, "accumulator": accumulator}


class TornCounterAlgorithm(Algorithm):
    """Zoo-shaped wrapper so the verify grid can build the mutant with
    :func:`repro.core.algorithm.build_zoo_simulation`."""

    name = "mutant-torn-counter"
    title = "MUTANT: Algorithm 1 with a torn (read;write) counter claim"

    def build(self, setup: AlgorithmSetup):
        return [
            TornCounterProgram(
                model=setup.model,
                counter=setup.counter,
                objective=setup.objective,
                step_size=setup.step_size,
                max_iterations=setup.iterations,
                record_iterations=setup.record_iterations,
            )
            for _ in range(setup.num_threads)
        ]


class LostUpdateAlgorithm(Algorithm):
    """Algorithm 1 with plain-write model updates (``use_write=True``)."""

    name = "mutant-lost-update"
    title = "MUTANT: Algorithm 1 with plain-write model updates"

    def build(self, setup: AlgorithmSetup):
        return [
            EpochSGDProgram(
                model=setup.model,
                counter=setup.counter,
                objective=setup.objective,
                step_size=setup.step_size,
                max_iterations=setup.iterations,
                record_iterations=setup.record_iterations,
                use_write=True,
            )
            for _ in range(setup.num_threads)
        ]


@dataclass(frozen=True)
class MutantSpec:
    """A seeded-bug variant plus the scope it needs to express the bug."""

    algorithm: Algorithm
    #: Iteration budget override — ``None`` keeps the grid's scope.  The
    #: lost-update race needs two concurrent iterations to exist at all.
    min_iterations: Optional[int] = None


_MUTANTS: Dict[str, MutantSpec] = {
    TornCounterAlgorithm.name: MutantSpec(algorithm=TornCounterAlgorithm()),
    LostUpdateAlgorithm.name: MutantSpec(
        algorithm=LostUpdateAlgorithm(), min_iterations=2
    ),
}


def mutant_names() -> Tuple[str, ...]:
    """Registered mutant variants, sorted."""
    return tuple(sorted(_MUTANTS))


def get_mutant(name: str) -> MutantSpec:
    """Look up a mutant spec by name."""
    spec = _MUTANTS.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown mutant: {name!r} (choose from {', '.join(mutant_names())})"
        )
    return spec
