"""Depth-first schedule enumeration with sleep-set partial-order reduction.

The simulator is deterministic given (programs, seeds, schedule), so the
space of behaviors at a fixed scope *is* the tree of schedules: at every
``select()`` point the driver forks over each runnable thread.  Programs
are plain Python generators — there is no way to snapshot and restore a
coroutine frame — so backtracking is implemented by **re-execution**: a
node at depth *d* is reached by building a fresh simulation from the
factory and forcing the *d*-step decision prefix through a strict
:class:`repro.sched.replay.ReplayScheduler`.  Determinism makes the
re-executed node bit-identical to the abandoned one; the cost is
O(depth) steps per node, measured by :attr:`EnumerationStats.replays`.

Pruning is the classic Flanagan–Godefroid sleep-set reduction, driven by
the *concrete* pending operations at the frontier (see
:mod:`repro.verify.independence`): after exploring thread *t* from a
node, *t* enters the sleep set of its siblings' subtrees and stays
asleep along a branch until some step dependent on *t*'s pending
operation fires.  Sleep sets guarantee at least one representative per
Mazurkiewicz trace still reaches every terminal state, so checking a
schedule-insensitive property on each complete schedule explored equals
checking it on *all* interleavings.  (Lemma certificates compare against
*measured* contention, which is itself a per-schedule quantity, so each
explored representative is certified individually — see DESIGN.md §16.)

State-digest memoization (``memoize=True``) additionally skips a
frontier whose digest was already visited under a smaller-or-equal
sleep set.  :meth:`Simulator.state_digest` does not capture
generator-local variables, so the digest here extends it with each
thread's full (op, result) history; even so, two histories can coincide
on digest while differing in ways a *checker* cares about, so
memoization is off by default for certification runs and exists to be
measured (see ``benchmarks/bench_verify.py``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.runtime.simulator import Simulator
from repro.sched.base import Scheduler
from repro.sched.replay import ReplayScheduler
from repro.verify.independence import ops_conflict

#: Builds a fresh simulation driven by the given scheduler.  Called once
#: per DFS node; must be deterministic (same scheduler decisions ⇒ same
#: execution), which holds for everything built on the runtime's
#: spawn-order-derived RNG streams.
SimulationFactory = Callable[[Scheduler], Simulator]

#: Callback invoked with the finished simulation and its complete
#: schedule (``on_schedule``) or the truncated simulation and its prefix
#: (``on_budget``).
ScheduleCallback = Callable[[Simulator, Tuple[int, ...]], None]


@dataclass(frozen=True)
class EnumerationStats:
    """Counters describing one enumeration pass."""

    #: Complete (terminal) schedules explored — with POR on, one or more
    #: representatives per Mazurkiewicz trace; with POR off, every
    #: interleaving.
    schedules: int
    #: Interior + terminal DFS nodes expanded.
    nodes: int
    #: Fresh simulations built (one per node; re-execution backtracking).
    replays: int
    #: Simulator steps executed across all replays.
    steps: int
    #: Deepest schedule reached.
    max_depth: int
    #: Branches skipped because the thread was asleep.
    sleep_skips: int
    #: Frontiers skipped by state-digest memoization.
    memo_skips: int
    #: Schedules truncated by the ``max_steps`` budget (non-terminating
    #: or too-deep programs; any non-zero value voids exhaustiveness).
    budget_hits: int


@dataclass(frozen=True)
class EnumerationResult:
    """Outcome of :func:`enumerate_schedules`."""

    stats: EnumerationStats
    #: Complete schedules in DFS order, when ``collect=True``.
    schedules: Optional[Tuple[Tuple[int, ...], ...]] = None

    @property
    def exhaustive(self) -> bool:
        """Whether every behavior at scope was covered (no budget hits)."""
        return self.stats.budget_hits == 0


class _Counters:
    """Mutable mirror of :class:`EnumerationStats` used during the DFS."""

    def __init__(self) -> None:
        self.schedules = 0
        self.nodes = 0
        self.replays = 0
        self.steps = 0
        self.max_depth = 0
        self.sleep_skips = 0
        self.memo_skips = 0
        self.budget_hits = 0

    def freeze(self) -> EnumerationStats:
        return EnumerationStats(
            schedules=self.schedules,
            nodes=self.nodes,
            replays=self.replays,
            steps=self.steps,
            max_depth=self.max_depth,
            sleep_skips=self.sleep_skips,
            memo_skips=self.memo_skips,
            budget_hits=self.budget_hits,
        )


def frontier_digest(sim: Simulator) -> str:
    """State digest extended with per-thread operation histories.

    :meth:`Simulator.state_digest` covers memory values, the clock and
    thread lifecycle states but not generator-local variables; two
    frontiers with the same digest could still be about to behave
    differently.  Appending every thread's executed (op, result)
    sequence closes that gap for programs whose local state is a
    function of their operation history — true of the SGD programs here,
    but not checkable in general, which is why memoization defaults off.
    """
    if not sim.memory.record_log:
        raise ConfigurationError(
            "frontier_digest requires the simulation's memory to record "
            "its operation log (record_log=True)"
        )
    hasher = hashlib.sha256(sim.state_digest().encode("ascii"))
    histories: Dict[int, List[str]] = {}
    for record in sim.memory.log:
        histories.setdefault(record.thread_id, []).append(
            f"{record.op!r}={record.result!r}"
        )
    # Per-thread (not global) order: two frontiers that interleaved the
    # same per-thread histories differently but reached the same memory
    # state are behaviorally identical, which is exactly the coincidence
    # memoization wants to exploit.
    for tid in sorted(histories):
        hasher.update(f"|{tid}:".encode())
        hasher.update(";".join(histories[tid]).encode())
    return hasher.hexdigest()


def enumerate_schedules(
    factory: SimulationFactory,
    max_steps: int,
    por: bool = True,
    memoize: bool = False,
    collect: bool = False,
    on_schedule: Optional[ScheduleCallback] = None,
    on_budget: Optional[ScheduleCallback] = None,
    max_nodes: int = 1_000_000,
) -> EnumerationResult:
    """Explore every schedule of the factory's simulation at scope.

    Args:
        factory: Builds a fresh, deterministic simulation for a given
            scheduler; called once per DFS node.
        max_steps: Total step budget per schedule.  A schedule that is
            not done after ``max_steps`` counts as a budget hit (and the
            result is no longer a universal certificate).
        por: Apply the sleep-set reduction.  With ``por=False`` every
            interleaving is visited — the full tree, used to measure the
            reduction factor.
        memoize: Skip frontiers already visited (by
            :func:`frontier_digest`) under a subset sleep set.  Off by
            default; see the module docstring for the soundness caveat.
        collect: Also return the complete schedules in DFS order.
        on_schedule: Called with ``(sim, schedule)`` for every complete
            schedule, on the finished simulation — this is where
            sanitizers and certifiers run.
        on_budget: Called with ``(sim, prefix)`` for every truncated
            schedule.
        max_nodes: Hard cap on DFS nodes; exceeding it raises
            :class:`ConfigurationError` (the scope is not enumerable).
    """
    if max_steps < 1:
        raise ConfigurationError(f"max_steps must be >= 1, got {max_steps}")
    if max_nodes < 1:
        raise ConfigurationError(f"max_nodes must be >= 1, got {max_nodes}")
    counters = _Counters()
    memo: Dict[str, List[FrozenSet[int]]] = {}
    collected: List[Tuple[int, ...]] = []

    def replay(prefix: List[int]) -> Simulator:
        sim = factory(ReplayScheduler(list(prefix), strict=True))
        counters.replays += 1
        for _ in range(len(prefix)):
            sim.step()
        counters.steps += len(prefix)
        return sim

    def explore(prefix: List[int], sleep: FrozenSet[int]) -> None:
        if counters.nodes >= max_nodes:
            raise ConfigurationError(
                f"schedule enumeration exceeded max_nodes={max_nodes} at "
                f"depth {len(prefix)} — the scope is not exhaustively "
                "enumerable; shrink threads/iterations or raise max_nodes"
            )
        sim = replay(prefix)
        counters.nodes += 1
        if len(prefix) > counters.max_depth:
            counters.max_depth = len(prefix)
        if sim.is_done:
            counters.schedules += 1
            if collect:
                collected.append(tuple(prefix))
            if on_schedule is not None:
                on_schedule(sim, tuple(prefix))
            return
        if len(prefix) >= max_steps:
            counters.budget_hits += 1
            if on_budget is not None:
                on_budget(sim, tuple(prefix))
            return
        enabled = list(sim.runnable_ids)
        pending = {tid: sim.threads[tid].pending_op for tid in enabled}
        if memoize:
            digest = frontier_digest(sim)
            seen = memo.setdefault(digest, [])
            if any(prev <= sleep for prev in seen):
                counters.memo_skips += 1
                return
            seen.append(sleep)
        explored: List[int] = []
        for tid in enabled:
            if por and tid in sleep:
                counters.sleep_skips += 1
                continue
            if por:
                # A sibling already explored from this node (or a thread
                # asleep on arrival) stays asleep in the child unless the
                # step just taken conflicts with its pending operation —
                # the sleeper's subtree would only permute independent
                # steps of schedules the sibling's subtree already covers.
                child_sleep = frozenset(
                    u
                    for u in sleep.union(explored)
                    if u in pending
                    and not ops_conflict(pending[u], pending[tid])
                )
            else:
                child_sleep = frozenset()
            explore(prefix + [tid], child_sleep)
            explored.append(tid)

    explore([], frozenset())
    return EnumerationResult(
        stats=counters.freeze(),
        schedules=tuple(collected) if collect else None,
    )
